//! Dense linear-algebra kernels: matrix multiply.
//!
//! [`matmul`] is the compute kernel behind the software convolution (via
//! im2col) used for training and reference inference. Large products run a
//! cache-blocked kernel — MC row blocks sharded across threads, KC-deep
//! panels of `b` packed into NR-wide strips, and an MR×NR register tile —
//! while small products use a plain triple loop whose overhead is lower.
//! Both paths are bit-deterministic in the thread count (see the
//! `parallel` module): every output element is produced by exactly one
//! worker and its accumulation order depends only on the shapes.

use crate::{parallel, Tensor};

/// Row blocks: the unit of parallel work (one worker owns MC output rows).
const MC: usize = 64;
/// Depth of a packed `b` panel; MC×KC of `a` and KC×NR strips stay cached.
const KC: usize = 256;
/// Width of a packed `b` strip and of the register tile. Together with MR
/// this is sized so the MR×NR f32 accumulator fits the vector register
/// file (8 ymm under AVX2) with room left for the strip row — larger
/// tiles spill to the stack and run scalar-speed.
const NR: usize = 16;
/// Rows of the register tile (each reuses a loaded `b` strip row).
const MR: usize = 4;

/// Products smaller than this many MACs skip blocking and packing.
const SMALL_MACS: usize = 16 * 1024;

/// Row-major matrix multiply: `a (m x k) * b (k x n) -> (m x n)`.
///
/// Runs the cache-blocked, multi-threaded kernel for large shapes (thread
/// count from `DRQ_THREADS` / [`parallel::set_max_threads`]); results are
/// bit-identical for every thread count.
///
/// # Panics
///
/// Panics if either input is not rank 2 or the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use drq_tensor::{matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
/// let b = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
/// assert_eq!(matmul(&a, &b).as_slice(), a.as_slice());
/// ```
pub fn matmul(a: &Tensor<f32>, b: &Tensor<f32>) -> Tensor<f32> {
    assert_eq!(a.rank(), 2, "matmul lhs must be rank 2");
    assert_eq!(b.rank(), 2, "matmul rhs must be rank 2");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");

    let mut out = Tensor::<f32>::zeros(&[m, n]);
    // Degenerate extents (any dimension zero) have an all-zero product; the
    // kernels below would choke on zero-length chunk iteration.
    if m == 0 || k == 0 || n == 0 {
        return out;
    }
    if m * k * n < SMALL_MACS {
        matmul_simple(a.as_slice(), b.as_slice(), out.as_mut_slice(), k, n);
    } else {
        matmul_blocked(a.as_slice(), b.as_slice(), out.as_mut_slice(), m, k, n);
    }
    out
}

/// The unblocked, single-threaded reference kernel (the seed repository's
/// dense path). Kept public as the equivalence oracle for tests and the
/// baseline for `kernel_microbench` speedup reporting.
///
/// # Panics
///
/// Panics if either input is not rank 2 or the inner dimensions disagree.
pub fn matmul_reference(a: &Tensor<f32>, b: &Tensor<f32>) -> Tensor<f32> {
    assert_eq!(a.rank(), 2, "matmul lhs must be rank 2");
    assert_eq!(b.rank(), 2, "matmul rhs must be rank 2");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
    let mut out = Tensor::<f32>::zeros(&[m, n]);
    if m == 0 || k == 0 || n == 0 {
        return out;
    }
    matmul_simple(a.as_slice(), b.as_slice(), out.as_mut_slice(), k, n);
    out
}

/// `i-k-j` triple loop; cache-friendly on `b`, no blocking.
fn matmul_simple(av: &[f32], bv: &[f32], ov: &mut [f32], k: usize, n: usize) {
    for (arow, orow) in av.chunks_exact(k).zip(ov.chunks_exact_mut(n)) {
        for (&aik, brow) in arow.iter().zip(bv.chunks_exact(n)) {
            for (o, &bb) in orow.iter_mut().zip(brow.iter()) {
                *o += aik * bb;
            }
        }
    }
}

/// Cache-blocked parallel kernel. Each worker owns MC full output rows, so
/// writes are disjoint and no reduction crosses threads.
fn matmul_blocked(av: &[f32], bv: &[f32], ov: &mut [f32], _m: usize, k: usize, n: usize) {
    let n_strips = n.div_ceil(NR);
    parallel::for_each_chunk_mut(ov, MC * n, |bi, cchunk| {
        let i0 = bi * MC;
        let rows = cchunk.len() / n;
        let full_tiles = rows / MR;
        // Packed b panel: strip-major, fixed KC×NR row stride, zero padding
        // in the tail lanes (written once here, never by `pack_panel`).
        let mut pb = vec![0.0f32; n_strips * KC * NR];
        // Packed a block: tile-major, MR rows interleaved per k step, so the
        // micro-kernel's four `a` values are one contiguous load.
        let mut pa = vec![0.0f32; full_tiles * KC * MR];
        for k0 in (0..k).step_by(KC) {
            let kc = KC.min(k - k0);
            pack_panel(bv, &mut pb, k0, kc, n);
            pack_a(av, &mut pa, i0, full_tiles, k0, kc, k);
            for sb in 0..n_strips {
                let jb = sb * NR;
                let w = NR.min(n - jb);
                let strip = &pb[sb * KC * NR..][..kc * NR];
                for t in 0..full_tiles {
                    let i_local = t * MR;
                    // MR×NR register tile accumulated over this k panel.
                    let mut acc = [[0.0f32; NR]; MR];
                    tile_full(&pa[t * KC * MR..][..kc * MR], strip, &mut acc);
                    for (r, arow) in acc.iter().enumerate() {
                        let crow = &mut cchunk[(i_local + r) * n + jb..][..w];
                        for (c, &x) in crow.iter_mut().zip(arow.iter()) {
                            *c += x;
                        }
                    }
                }
                // Row tail (<MR rows): unpacked, dynamic trip count.
                for i_local in full_tiles * MR..rows {
                    let mut arow = [0.0f32; NR];
                    let a_row = &av[(i0 + i_local) * k + k0..][..kc];
                    for (&aik, prow) in a_row.iter().zip(strip.chunks_exact(NR)) {
                        for (x, &p) in arow.iter_mut().zip(prow.iter()) {
                            *x += aik * p;
                        }
                    }
                    let crow = &mut cchunk[i_local * n + jb..][..w];
                    for (c, &x) in crow.iter_mut().zip(arow.iter()) {
                        *c += x;
                    }
                }
            }
        }
    });
}

/// Full MR×NR register tile over one packed k panel. Fixed trip counts and
/// `[f32; NR]` rows let the compiler keep `acc` in vector registers; the
/// dynamic-width tail path spills and only runs for <MR leftover rows.
#[inline(always)]
fn tile_full(apanel: &[f32], strip: &[f32], acc: &mut [[f32; NR]; MR]) {
    let [ref mut c0, ref mut c1, ref mut c2, ref mut c3] = *acc;
    for (aq, prow) in apanel.chunks_exact(MR).zip(strip.chunks_exact(NR)) {
        let aq: &[f32; MR] = aq.try_into().unwrap();
        let prow: &[f32; NR] = prow.try_into().unwrap();
        for x in 0..NR {
            c0[x] += aq[0] * prow[x];
            c1[x] += aq[1] * prow[x];
            c2[x] += aq[2] * prow[x];
            c3[x] += aq[3] * prow[x];
        }
    }
}

/// Packs MR-row tiles of `a` (rows `i0..i0+full_tiles*MR`, depth
/// `k0..k0+kc`) with the MR rows interleaved per k step.
fn pack_a(av: &[f32], pa: &mut [f32], i0: usize, full_tiles: usize, k0: usize, kc: usize, k: usize) {
    for t in 0..full_tiles {
        let dst = &mut pa[t * KC * MR..][..kc * MR];
        for r in 0..MR {
            let src = &av[(i0 + t * MR + r) * k + k0..][..kc];
            for (kl, &v) in src.iter().enumerate() {
                dst[kl * MR + r] = v;
            }
        }
    }
}

/// Packs rows `k0..k0+kc` of `b` into NR-wide contiguous strips.
fn pack_panel(bv: &[f32], pb: &mut [f32], k0: usize, kc: usize, n: usize) {
    let n_strips = n.div_ceil(NR);
    for sb in 0..n_strips {
        let jb = sb * NR;
        let w = NR.min(n - jb);
        let base = sb * KC * NR;
        for kl in 0..kc {
            let src = &bv[(k0 + kl) * n + jb..][..w];
            pb[base + kl * NR..][..w].copy_from_slice(src);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::XorShiftRng;

    fn naive(a: &Tensor<f32>, b: &Tensor<f32>) -> Tensor<f32> {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = Tensor::<f32>::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a[[i, kk]] * b[[kk, j]];
                }
                out[[i, j]] = acc;
            }
        }
        out
    }

    fn assert_close(fast: &Tensor<f32>, slow: &Tensor<f32>, tol: f32) {
        assert_eq!(fast.shape(), slow.shape());
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matches_naive_on_random_sizes() {
        let mut rng = XorShiftRng::new(42);
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (5, 7, 3), (8, 8, 8)] {
            let a = Tensor::from_fn(&[m, k], |_| rng.next_f32() - 0.5);
            let b = Tensor::from_fn(&[k, n], |_| rng.next_f32() - 0.5);
            assert_close(&matmul(&a, &b), &naive(&a, &b), 1e-5);
        }
    }

    #[test]
    fn blocked_path_matches_naive_on_odd_shapes() {
        // Shapes chosen to exceed SMALL_MACS and exercise every edge: rows
        // not a multiple of MR/MC, columns not a multiple of NR, depth not a
        // multiple of KC.
        let mut rng = XorShiftRng::new(7);
        for &(m, k, n) in &[(67, 33, 29), (130, 257, 17), (65, 300, 15), (3, 1000, 40)] {
            let a = Tensor::from_fn(&[m, k], |_| rng.next_f32() - 0.5);
            let b = Tensor::from_fn(&[k, n], |_| rng.next_f32() - 0.5);
            let tol = 1e-4 * (k as f32).sqrt();
            assert_close(&matmul(&a, &b), &naive(&a, &b), tol);
        }
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let mut rng = XorShiftRng::new(13);
        let a = Tensor::from_fn(&[70, 90], |_| rng.next_f32() - 0.5);
        let b = Tensor::from_fn(&[90, 35], |_| rng.next_f32() - 0.5);
        parallel::set_max_threads(1);
        let base = matmul(&a, &b);
        for t in [2, 3, 8] {
            parallel::set_max_threads(t);
            assert_eq!(matmul(&a, &b).as_slice(), base.as_slice(), "threads={t}");
        }
        parallel::set_max_threads(0);
    }

    #[test]
    fn identity_is_neutral() {
        let mut eye = Tensor::<f32>::zeros(&[3, 3]);
        for i in 0..3 {
            eye[[i, i]] = 1.0;
        }
        let a = Tensor::from_fn(&[3, 3], |i| i as f32);
        assert_eq!(matmul(&a, &eye).as_slice(), a.as_slice());
        assert_eq!(matmul(&eye, &a).as_slice(), a.as_slice());
    }

    #[test]
    fn zero_sized_dims_yield_empty_or_zero_products() {
        // m, k or n of zero must not panic; k == 0 gives an all-zero [m, n].
        let a = Tensor::<f32>::zeros(&[0, 3]);
        let b = Tensor::<f32>::zeros(&[3, 4]);
        assert_eq!(matmul(&a, &b).shape(), &[0, 4]);
        let a = Tensor::<f32>::full(&[2, 0], 1.0);
        let b = Tensor::<f32>::full(&[0, 4], 1.0);
        let out = matmul(&a, &b);
        assert_eq!(out.shape(), &[2, 4]);
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
        let a = Tensor::<f32>::full(&[2, 3], 1.0);
        let b = Tensor::<f32>::zeros(&[3, 0]);
        assert_eq!(matmul_reference(&a, &b).shape(), &[2, 0]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn rejects_mismatched_inner_dims() {
        let a = Tensor::<f32>::zeros(&[2, 3]);
        let b = Tensor::<f32>::zeros(&[4, 2]);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn dense_kernel_handles_zeros_exactly() {
        // The old kernel special-cased `aik == 0.0`; the dense kernel must
        // produce the same values without the branch.
        let a = Tensor::from_vec(vec![0.0, 1.0, 2.0, 0.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], &[2, 2]).unwrap();
        let out = matmul(&a, &b);
        assert_eq!(out.as_slice(), &[5.0, 6.0, 6.0, 8.0]);
    }

    #[test]
    fn reference_matches_blocked_within_tolerance() {
        let mut rng = XorShiftRng::new(99);
        let a = Tensor::from_fn(&[40, 120], |_| rng.next_f32() - 0.5);
        let b = Tensor::from_fn(&[120, 31], |_| rng.next_f32() - 0.5);
        assert_close(&matmul(&a, &b), &matmul_reference(&a, &b), 1e-3);
    }
}
