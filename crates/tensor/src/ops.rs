//! Dense linear-algebra kernels: matrix multiply.

use crate::Tensor;

/// Row-major matrix multiply: `a (m x k) * b (k x n) -> (m x n)`.
///
/// The inner loop is ordered `i-k-j` for cache-friendly access to `b`; this
/// is the compute kernel behind the software convolution (via im2col) used
/// for training and reference inference.
///
/// # Panics
///
/// Panics if either input is not rank 2 or the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use drq_tensor::{matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
/// let b = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
/// assert_eq!(matmul(&a, &b).as_slice(), a.as_slice());
/// ```
pub fn matmul(a: &Tensor<f32>, b: &Tensor<f32>) -> Tensor<f32> {
    assert_eq!(a.rank(), 2, "matmul lhs must be rank 2");
    assert_eq!(b.rank(), 2, "matmul rhs must be rank 2");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");

    let mut out = Tensor::<f32>::zeros(&[m, n]);
    let av = a.as_slice();
    let bv = b.as_slice();
    let ov = out.as_mut_slice();
    for i in 0..m {
        for kk in 0..k {
            let aik = av[i * k + kk];
            if aik == 0.0 {
                continue;
            }
            let brow = &bv[kk * n..(kk + 1) * n];
            let orow = &mut ov[i * n..(i + 1) * n];
            for (o, &bb) in orow.iter_mut().zip(brow.iter()) {
                *o += aik * bb;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor<f32>, b: &Tensor<f32>) -> Tensor<f32> {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = Tensor::<f32>::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a[[i, kk]] * b[[kk, j]];
                }
                out[[i, j]] = acc;
            }
        }
        out
    }

    #[test]
    fn matches_naive_on_random_sizes() {
        let mut rng = crate::XorShiftRng::new(42);
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (5, 7, 3), (8, 8, 8)] {
            let a = Tensor::from_fn(&[m, k], |_| rng.next_f32() - 0.5);
            let b = Tensor::from_fn(&[k, n], |_| rng.next_f32() - 0.5);
            let fast = matmul(&a, &b);
            let slow = naive(&a, &b);
            for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
                assert!((x - y).abs() < 1e-5, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn identity_is_neutral() {
        let mut eye = Tensor::<f32>::zeros(&[3, 3]);
        for i in 0..3 {
            eye[[i, i]] = 1.0;
        }
        let a = Tensor::from_fn(&[3, 3], |i| i as f32);
        assert_eq!(matmul(&a, &eye).as_slice(), a.as_slice());
        assert_eq!(matmul(&eye, &a).as_slice(), a.as_slice());
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn rejects_mismatched_inner_dims() {
        let a = Tensor::<f32>::zeros(&[2, 3]);
        let b = Tensor::<f32>::zeros(&[4, 2]);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn zero_sparsity_shortcut_is_correct() {
        // The `aik == 0` skip must not change results.
        let a = Tensor::from_vec(vec![0.0, 1.0, 2.0, 0.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], &[2, 2]).unwrap();
        let out = matmul(&a, &b);
        assert_eq!(out.as_slice(), &[5.0, 6.0, 6.0, 8.0]);
    }
}
