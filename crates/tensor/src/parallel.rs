//! Deterministic data-parallel execution over `std::thread::scope`.
//!
//! Every hot path in the workspace (the blocked GEMM, `im2col`, the batch
//! loops of the convolutions, DSE candidate sweeps, and the cycle-accurate
//! simulator's partitioned layer shards) runs its work through this
//! module. The design rule is **scheduling-independence**: a work item
//! always produces the same bits no matter which worker runs it, so results
//! are identical for any thread count — `DRQ_THREADS=1` is the reference
//! execution and every other setting must match it exactly. That is achieved
//! by partitioning outputs into disjoint slices (no shared accumulators, no
//! atomics on data) and keeping every reduction in a fixed order on the
//! calling thread.
//!
//! Thread count resolution order:
//!
//! 1. a process-wide override installed with [`set_max_threads`] (the CLI's
//!    `--threads` flag lands here);
//! 2. the `DRQ_THREADS` environment variable (read once);
//! 3. [`std::thread::available_parallelism`].
//!
//! Nested parallel sections do not oversubscribe: a worker thread that calls
//! back into this module runs its chunks inline.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// `0` means "no override installed".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `DRQ_THREADS` / `available_parallelism`, resolved once.
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

std::thread_local! {
    /// Set while the current thread is executing inside a parallel section;
    /// nested sections then run inline instead of spawning another scope.
    static IN_PARALLEL_SECTION: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn env_threads() -> usize {
    *ENV_THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("DRQ_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
            eprintln!("warning: ignoring invalid DRQ_THREADS={v:?} (want a positive integer)");
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    })
}

/// The maximum number of worker threads a parallel section may use.
///
/// # Examples
///
/// ```
/// use drq_tensor::parallel;
///
/// parallel::set_max_threads(3);
/// assert_eq!(parallel::max_threads(), 3);
/// parallel::set_max_threads(0); // back to DRQ_THREADS / auto
/// assert!(parallel::max_threads() >= 1);
/// ```
pub fn max_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        o
    } else {
        env_threads()
    }
}

/// Installs a process-wide thread-count override; `0` removes it, falling
/// back to `DRQ_THREADS` / available parallelism.
///
/// Because every parallel kernel is bit-deterministic in its thread count,
/// changing this at any point never changes numerical results — only
/// wall-clock time.
pub fn set_max_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// True while called from inside a worker of an enclosing parallel section.
pub fn in_parallel_section() -> bool {
    IN_PARALLEL_SECTION.with(|c| c.get())
}

/// Splits `data` into contiguous chunks of `chunk_len` elements (the last
/// chunk may be shorter) and runs `f(chunk_index, chunk)` for each, sharding
/// chunks across up to [`max_threads`] scoped workers.
///
/// Chunks are claimed dynamically, so callers must not rely on any
/// particular chunk-to-thread assignment — `f` must depend only on
/// `chunk_index` and the chunk contents. Runs inline (sequentially, in
/// chunk order) when only one worker is warranted or when already inside a
/// parallel section.
///
/// # Panics
///
/// Panics if `chunk_len == 0` while `data` is non-empty, or if `f` panics
/// (worker panics propagate to the caller).
///
/// # Examples
///
/// ```
/// use drq_tensor::parallel;
///
/// let mut v = vec![0usize; 10];
/// parallel::for_each_chunk_mut(&mut v, 3, |ci, chunk| {
///     for x in chunk.iter_mut() {
///         *x = ci;
///     }
/// });
/// assert_eq!(v, &[0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
/// ```
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = max_threads().min(n_chunks);
    if threads <= 1 || in_parallel_section() {
        for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(ci, chunk);
        }
        return;
    }

    // Dynamic scheduling: workers pull (index, chunk) pairs from a shared
    // queue. The mutex only guards the iterator hand-off, never the data.
    let queue = Mutex::new(data.chunks_mut(chunk_len).enumerate());
    let worker = || {
        IN_PARALLEL_SECTION.with(|c| c.set(true));
        loop {
            let item = queue.lock().expect("chunk queue poisoned").next();
            match item {
                Some((ci, chunk)) => f(ci, chunk),
                None => break,
            }
        }
        IN_PARALLEL_SECTION.with(|c| c.set(false));
    };
    std::thread::scope(|scope| {
        let handles: Vec<_> = (1..threads).map(|_| scope.spawn(worker)).collect();
        // The calling thread is worker 0.
        worker();
        for h in handles {
            if let Err(p) = h.join() {
                std::panic::resume_unwind(p);
            }
        }
    });
}

/// Evaluates `f(0..n)` across workers and returns the results in index
/// order. The per-index results are moved out, so `f` may return owned
/// buffers (per-image gradients, sweep measurements, …) that the caller
/// then reduces sequentially — the pattern that keeps reductions
/// bit-deterministic.
///
/// # Examples
///
/// ```
/// use drq_tensor::parallel;
///
/// let squares = parallel::par_map(5, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn par_map<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for_each_chunk_mut(&mut slots, 1, |i, slot| {
        slot[0] = Some(f(i));
    });
    slots.into_iter().map(|s| s.expect("par_map slot unfilled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_all_elements_exactly_once() {
        let mut v = vec![0u32; 1023];
        for_each_chunk_mut(&mut v, 64, |_, chunk| {
            for x in chunk.iter_mut() {
                *x += 1;
            }
        });
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn chunk_indices_match_offsets() {
        let mut v = vec![0usize; 100];
        for_each_chunk_mut(&mut v, 7, |ci, chunk| {
            for x in chunk.iter_mut() {
                *x = ci;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i / 7);
        }
    }

    #[test]
    fn empty_input_is_a_no_op() {
        let mut v: Vec<u8> = Vec::new();
        for_each_chunk_mut(&mut v, 4, |_, _| panic!("must not be called"));
    }

    #[test]
    fn nested_sections_run_inline() {
        let mut outer = vec![0usize; 8];
        for_each_chunk_mut(&mut outer, 1, |_, chunk| {
            // If this spawned a nested scope the flag would still make the
            // inner call inline; either way it must complete and see the
            // flag only when actually inside a spawned section.
            let mut inner = vec![0usize; 4];
            for_each_chunk_mut(&mut inner, 1, |_, c| c[0] = 1);
            chunk[0] = inner.iter().sum();
        });
        assert!(outer.iter().all(|&x| x == 4));
    }

    #[test]
    fn par_map_preserves_order() {
        let out = par_map(257, |i| i * 3);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * 3);
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let run = |threads: usize| {
            set_max_threads(threads);
            let mut v = vec![0f32; 1000];
            for_each_chunk_mut(&mut v, 13, |ci, chunk| {
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x = (ci * 13 + j) as f32 * 0.25;
                }
            });
            set_max_threads(0);
            v
        };
        let base = run(1);
        for t in [2, 3, 8] {
            assert_eq!(run(t), base);
        }
    }

    #[test]
    #[should_panic(expected = "chunk_len")]
    fn zero_chunk_len_rejected() {
        let mut v = vec![0u8; 3];
        for_each_chunk_mut(&mut v, 0, |_, _| {});
    }
}
