//! # drq-dse — resumable Pareto-frontier design-space exploration
//!
//! The paper's design-space results (Fig. 14) come from a nine-point
//! threshold grid; the real space — array geometry × precision mix (region
//! threshold drives the INT4/INT8 split) × region shape × buffer sizing —
//! is combinatorial, and a grid sweep revisits mostly-dominated corners.
//! This crate replaces the grid with a branch-and-bound Pareto search:
//!
//! * [`pareto::CandidateSpace`] — the typed, sorted candidate grid; every
//!   candidate has a stable integer index (mixed-radix over the four axes).
//! * [`pareto::ParetoFront`] — an incremental front over
//!   (accuracy ↑, latency-cycles ↓, energy-pJ ↓) with dominated-candidate
//!   eviction.
//! * [`pareto::ParetoSearch`] — the seeded, resumable driver: a
//!   deterministic stack of index hypercubes, dominated-region cutting
//!   against per-box optimistic bounds, and leaf batches evaluated on the
//!   `drq_tensor::parallel` pool under `retry_with_backoff`.
//! * [`pareto::SimSpaceEval`] — the simulator-backed evaluator: one
//!   [`drq_sim::SharedSession`] shared across all candidates and workers.
//!
//! Every search state serializes to a schema-versioned `kind:"pareto"`
//! report whose bytes are a pure function of `(space, seed, batch)` — a
//! killed search resumes from the artifact and converges to the identical
//! bytes (see `tests/pareto.rs` at the workspace root).

pub mod pareto;

pub use pareto::{
    dominates, strictly_dominates, Candidate, CandidateBox, CandidateEval, CandidateSpace,
    FrontMember, Geometry, InsertOutcome, Objectives, ParetoFront, ParetoSearch, SearchStatus,
    SimSpaceEval, PARETO_KIND,
};
