//! The typed candidate space: four sorted axes with a stable mixed-radix
//! index encoding.
//!
//! A [`CandidateSpace`] is the cross product of
//!
//! * **array geometry** — [`Geometry`] (pages × rows × cols), sorted by
//!   total PE count;
//! * **region shape** — [`RegionSize`], sorted by area (the precision-mix
//!   axis: region shape + threshold drive the INT4/INT8 split);
//! * **region threshold** — `f32`, sorted ascending;
//! * **global-buffer sizing** — bytes, sorted ascending.
//!
//! Axes are sorted and deduplicated at construction so that every
//! contiguous index hypercube ([`crate::pareto::CandidateBox`]) has its
//! extreme corners at the range endpoints — that is what makes the
//! per-box optimistic bounds in
//! [`crate::pareto::SimSpaceEval::optimistic_bound`] exact range bounds
//! rather than heuristics. A candidate's identity is its [`Candidate::index`]
//! (mixed-radix over the axes, buffer fastest), which is what checkpoints
//! persist: an artifact plus the space reconstructs every candidate.

use drq_core::{DrqError, RegionSize};
use drq_telemetry::Json;
use std::fmt;

/// A systolic-array organization: `pages × rows × cols` PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    /// PE pages (the outer tiling unit).
    pub pages: usize,
    /// Rows per page.
    pub rows: usize,
    /// Columns per page.
    pub cols: usize,
}

impl Geometry {
    /// Creates a geometry; all dimensions must be positive.
    pub fn new(pages: usize, rows: usize, cols: usize) -> Self {
        assert!(pages > 0 && rows > 0 && cols > 0, "geometry must be positive");
        Self { pages, rows, cols }
    }

    /// Total PE count.
    pub fn total_pes(&self) -> usize {
        self.pages * self.rows * self.cols
    }

    fn to_json(self) -> Json {
        Json::obj([
            ("pages", Json::U64(self.pages as u64)),
            ("rows", Json::U64(self.rows as u64)),
            ("cols", Json::U64(self.cols as u64)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, DrqError> {
        let field = |k: &str| {
            v.get(k).and_then(Json::as_u64).ok_or_else(|| DrqError::InvalidConfig {
                context: "pareto space",
                detail: format!("geometry missing positive integer {k:?}: {v}"),
            })
        };
        let (pages, rows, cols) = (field("pages")?, field("rows")?, field("cols")?);
        if pages == 0 || rows == 0 || cols == 0 {
            return Err(DrqError::InvalidConfig {
                context: "pareto space",
                detail: format!("geometry dimensions must be positive: {v}"),
            });
        }
        Ok(Self::new(pages as usize, rows as usize, cols as usize))
    }
}

impl fmt::Display for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.pages, self.rows, self.cols)
    }
}

/// One fully-specified design point, decoded from its space index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The stable mixed-radix index within the owning space.
    pub index: usize,
    /// Array organization.
    pub geometry: Geometry,
    /// DRQ region shape.
    pub region: RegionSize,
    /// DRQ sensitivity threshold.
    pub threshold: f32,
    /// Global-buffer capacity in bytes.
    pub buffer_bytes: usize,
}

/// The sorted, deduplicated candidate grid. See the [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateSpace {
    geometries: Vec<Geometry>,
    regions: Vec<RegionSize>,
    thresholds: Vec<f32>,
    buffer_bytes: Vec<usize>,
}

impl CandidateSpace {
    /// Builds a space from raw axes, sorting and deduplicating each.
    ///
    /// # Errors
    ///
    /// [`DrqError::InvalidConfig`] if any axis is empty, a threshold is
    /// non-finite or negative, or a buffer size is zero.
    pub fn try_new(
        geometries: Vec<Geometry>,
        regions: Vec<RegionSize>,
        thresholds: Vec<f32>,
        buffer_bytes: Vec<usize>,
    ) -> Result<Self, DrqError> {
        let invalid = |detail: String| DrqError::InvalidConfig { context: "pareto space", detail };
        if geometries.is_empty() || regions.is_empty() || thresholds.is_empty() || buffer_bytes.is_empty()
        {
            return Err(invalid("every axis needs at least one value".into()));
        }
        if let Some(t) = thresholds.iter().find(|t| !t.is_finite() || **t < 0.0) {
            return Err(invalid(format!("threshold must be finite and non-negative, got {t}")));
        }
        if buffer_bytes.contains(&0) {
            return Err(invalid("buffer size must be positive".into()));
        }
        let mut geometries = geometries;
        geometries.sort_by_key(|g| (g.total_pes(), g.pages, g.rows, g.cols));
        geometries.dedup();
        let mut regions = regions;
        regions.sort_by_key(|r| (r.area(), r.x, r.y));
        regions.dedup();
        let mut thresholds = thresholds;
        thresholds.sort_by(f32::total_cmp);
        thresholds.dedup();
        let mut buffer_bytes = buffer_bytes;
        buffer_bytes.sort_unstable();
        buffer_bytes.dedup();
        Ok(Self { geometries, regions, thresholds, buffer_bytes })
    }

    /// The default exploration grid around the paper's operating point:
    /// half/paper/double page counts, three region shapes, the Fig. 14
    /// threshold ladder thinned to seven rungs, and half/paper/double
    /// global buffers — 189 candidates.
    pub fn paper_grid() -> Self {
        let mb = 1024 * 1024;
        Self::try_new(
            vec![Geometry::new(8, 18, 11), Geometry::new(16, 18, 11), Geometry::new(32, 18, 11)],
            vec![RegionSize::new(4, 4), RegionSize::new(4, 16), RegionSize::new(8, 16)],
            vec![0.5, 2.0, 10.0, 21.0, 40.0, 80.0, 127.0],
            vec![5 * mb / 2, 5 * mb, 10 * mb],
        )
        .expect("paper grid is valid")
    }

    /// A degenerate space for the legacy `drq sweep` grid: the paper
    /// geometry and buffer, one region shape, and the given threshold
    /// ladder.
    pub fn sweep_grid(region: RegionSize, thresholds: &[f32]) -> Result<Self, DrqError> {
        Self::try_new(
            vec![Geometry::new(16, 18, 11)],
            vec![region],
            thresholds.to_vec(),
            vec![5 * 1024 * 1024],
        )
    }

    /// Axis lengths in index order (geometry, region, threshold, buffer).
    pub fn axis_lens(&self) -> [usize; 4] {
        [self.geometries.len(), self.regions.len(), self.thresholds.len(), self.buffer_bytes.len()]
    }

    /// Total candidate count (the product of the axis lengths).
    pub fn len(&self) -> usize {
        self.axis_lens().iter().product()
    }

    /// Whether the space is empty (it never is — construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sorted geometry axis.
    pub fn geometries(&self) -> &[Geometry] {
        &self.geometries
    }

    /// The sorted (by area) region axis.
    pub fn regions(&self) -> &[RegionSize] {
        &self.regions
    }

    /// The sorted threshold axis.
    pub fn thresholds(&self) -> &[f32] {
        &self.thresholds
    }

    /// The sorted buffer axis.
    pub fn buffer_bytes(&self) -> &[usize] {
        &self.buffer_bytes
    }

    /// Encodes per-axis positions into the stable candidate index
    /// (buffer varies fastest).
    pub fn encode(&self, g: usize, r: usize, t: usize, b: usize) -> usize {
        let [_, nr, nt, nb] = self.axis_lens();
        ((g * nr + r) * nt + t) * nb + b
    }

    /// Decodes a candidate index. Panics if `index >= self.len()`.
    pub fn candidate(&self, index: usize) -> Candidate {
        assert!(index < self.len(), "candidate index {index} out of range {}", self.len());
        let [_, nr, nt, nb] = self.axis_lens();
        let b = index % nb;
        let t = (index / nb) % nt;
        let r = (index / (nb * nt)) % nr;
        let g = index / (nb * nt * nr);
        Candidate {
            index,
            geometry: self.geometries[g],
            region: self.regions[r],
            threshold: self.thresholds[t],
            buffer_bytes: self.buffer_bytes[b],
        }
    }

    /// A stable FNV-1a fingerprint of the canonical JSON encoding, stored
    /// in checkpoints so a resume against a different space is rejected
    /// instead of silently mixing index meanings.
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.to_json().to_string().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1_0000_01b3);
        }
        hash
    }

    /// Canonical JSON encoding (axes in sorted order).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("geometries", Json::Array(self.geometries.iter().map(|g| g.to_json()).collect())),
            (
                "regions",
                Json::Array(self.regions.iter().map(|r| Json::str(r.to_string())).collect()),
            ),
            (
                "thresholds",
                Json::Array(self.thresholds.iter().map(|&t| Json::F64(f64::from(t))).collect()),
            ),
            (
                "buffer_bytes",
                Json::Array(self.buffer_bytes.iter().map(|&b| Json::U64(b as u64)).collect()),
            ),
        ])
    }

    /// Parses the canonical encoding back (see [`CandidateSpace::to_json`]).
    ///
    /// # Errors
    ///
    /// [`DrqError::InvalidConfig`] on missing keys, malformed axis values,
    /// or axes that fail [`CandidateSpace::try_new`] validation.
    pub fn from_json(v: &Json) -> Result<Self, DrqError> {
        let invalid = |detail: String| DrqError::InvalidConfig { context: "pareto space", detail };
        let axis = |k: &str| {
            v.get(k).and_then(Json::as_array).ok_or_else(|| invalid(format!("missing axis array {k:?}")))
        };
        let geometries =
            axis("geometries")?.iter().map(Geometry::from_json).collect::<Result<Vec<_>, _>>()?;
        let regions = axis("regions")?
            .iter()
            .map(|r| {
                r.as_str()
                    .and_then(parse_region)
                    .ok_or_else(|| invalid(format!("bad region {r} (want \"HxW\")")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let thresholds = axis("thresholds")?
            .iter()
            .map(|t| {
                t.as_f64()
                    .map(|t| t as f32)
                    .ok_or_else(|| invalid(format!("bad threshold {t}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let buffer_bytes = axis("buffer_bytes")?
            .iter()
            .map(|b| {
                b.as_u64()
                    .map(|b| b as usize)
                    .ok_or_else(|| invalid(format!("bad buffer size {b}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Self::try_new(geometries, regions, thresholds, buffer_bytes)
    }
}

/// Parses `"HxW"` into a region (both dimensions positive).
fn parse_region(s: &str) -> Option<RegionSize> {
    let (x, y) = s.split_once('x')?;
    let (x, y) = (x.parse::<usize>().ok()?, y.parse::<usize>().ok()?);
    if x == 0 || y == 0 {
        return None;
    }
    Some(RegionSize::new(x, y))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> CandidateSpace {
        CandidateSpace::try_new(
            vec![Geometry::new(16, 18, 11), Geometry::new(8, 18, 11)],
            vec![RegionSize::new(4, 16), RegionSize::new(4, 4)],
            vec![21.0, 0.5],
            vec![1024, 512],
        )
        .unwrap()
    }

    #[test]
    fn axes_are_sorted_and_deduped() {
        let s = space();
        assert_eq!(s.geometries()[0].pages, 8, "geometries sorted by PE count");
        assert_eq!(s.regions()[0].area(), 16, "regions sorted by area");
        assert_eq!(s.thresholds(), &[0.5, 21.0]);
        assert_eq!(s.buffer_bytes(), &[512, 1024]);
        let dup = CandidateSpace::try_new(
            vec![Geometry::new(1, 2, 3); 3],
            vec![RegionSize::new(4, 4)],
            vec![1.0, 1.0],
            vec![64, 64],
        )
        .unwrap();
        assert_eq!(dup.len(), 1);
    }

    #[test]
    fn index_encoding_round_trips() {
        let s = space();
        assert_eq!(s.len(), 16);
        for i in 0..s.len() {
            let c = s.candidate(i);
            assert_eq!(c.index, i);
            let g = s.geometries().iter().position(|g| *g == c.geometry).unwrap();
            let r = s.regions().iter().position(|r| *r == c.region).unwrap();
            let t = s.thresholds().iter().position(|t| *t == c.threshold).unwrap();
            let b = s.buffer_bytes().iter().position(|b| *b == c.buffer_bytes).unwrap();
            assert_eq!(s.encode(g, r, t, b), i);
        }
    }

    #[test]
    fn json_round_trip_preserves_fingerprint() {
        for s in [space(), CandidateSpace::paper_grid()] {
            let back = CandidateSpace::from_json(&s.to_json()).unwrap();
            assert_eq!(back, s);
            assert_eq!(back.fingerprint(), s.fingerprint());
            assert_eq!(back.to_json().to_string(), s.to_json().to_string());
        }
    }

    #[test]
    fn invalid_axes_are_rejected() {
        assert!(CandidateSpace::try_new(vec![], vec![RegionSize::new(1, 1)], vec![1.0], vec![1])
            .is_err());
        assert!(CandidateSpace::try_new(
            vec![Geometry::new(1, 1, 1)],
            vec![RegionSize::new(1, 1)],
            vec![f32::NAN],
            vec![1]
        )
        .is_err());
        assert!(CandidateSpace::try_new(
            vec![Geometry::new(1, 1, 1)],
            vec![RegionSize::new(1, 1)],
            vec![1.0],
            vec![0]
        )
        .is_err());
    }

    #[test]
    fn sweep_grid_is_degenerate() {
        let s = CandidateSpace::sweep_grid(RegionSize::new(4, 16), &[0.5, 21.0, 127.0]).unwrap();
        assert_eq!(s.axis_lens(), [1, 1, 3, 1]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.candidate(1).threshold, 21.0);
        assert_eq!(s.candidate(1).geometry.total_pes(), 3168);
    }
}
