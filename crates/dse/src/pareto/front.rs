//! Dominance and incremental Pareto-front maintenance over
//! (accuracy ↑, latency-cycles ↓, energy-pJ ↓).
//!
//! Two dominance relations, used for two different decisions:
//!
//! * [`dominates`] — weak on every axis, strict on at least one. Used for
//!   **candidate pruning**: an evaluated candidate is kept off (or evicted
//!   from) the front iff another candidate dominates it. Exact-tie
//!   duplicates dominate nothing and are dominated by nothing, so they all
//!   stay on the front — that is what makes the final front a pure
//!   function of the evaluated *set*, independent of insertion order.
//! * [`strictly_dominates`] — strict on **every** axis. Used for
//!   **region cutting**: a [`crate::pareto::CandidateBox`] may only be
//!   skipped when some front member strictly dominates the box's
//!   *optimistic* corner, because then every real point in the box (each
//!   weakly worse than the corner) is strictly dominated too. Weak
//!   dominance would not be safe here: a box member could tie the corner.
//!
//! Both relations are transitive, which is what keeps pruning sound under
//! eviction: if `m` dominated `c` and `m'` later evicts `m`, then `m'`
//! still dominates `c` — so "every pruned candidate is dominated by some
//! *final* front member" holds (property-tested in `tests/pareto.rs`).

use drq_telemetry::Json;

/// One candidate's scored objectives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Model accuracy (or a calibrated proxy), higher is better.
    pub accuracy: f64,
    /// End-to-end latency in cycles, lower is better.
    pub latency_cycles: u64,
    /// End-to-end energy in picojoules, lower is better.
    pub energy_pj: f64,
}

impl Objectives {
    /// Whether every component is finite (latency always is).
    pub fn is_finite(&self) -> bool {
        self.accuracy.is_finite() && self.energy_pj.is_finite()
    }
}

/// Weak dominance with at least one strict axis: `a` is no worse than `b`
/// everywhere and better somewhere. Exact ties dominate nothing.
pub fn dominates(a: &Objectives, b: &Objectives) -> bool {
    a.accuracy >= b.accuracy
        && a.latency_cycles <= b.latency_cycles
        && a.energy_pj <= b.energy_pj
        && (a.accuracy > b.accuracy
            || a.latency_cycles < b.latency_cycles
            || a.energy_pj < b.energy_pj)
}

/// Strict dominance on every axis. This is the only relation safe for
/// cutting a whole region against its optimistic bound (see the
/// [module docs](self)).
pub fn strictly_dominates(a: &Objectives, b: &Objectives) -> bool {
    a.accuracy > b.accuracy && a.latency_cycles < b.latency_cycles && a.energy_pj < b.energy_pj
}

/// A front entry: the candidate's stable space index plus its objectives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontMember {
    /// [`crate::pareto::Candidate::index`] within the search's space.
    pub candidate_index: u64,
    /// The evaluated objectives.
    pub objectives: Objectives,
}

/// What [`ParetoFront::insert`] did with a candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The candidate joined the front, evicting `evicted` now-dominated
    /// members.
    Added {
        /// Number of previous members the new candidate dominated.
        evicted: usize,
    },
    /// An existing member dominates the candidate; the front is unchanged.
    Dominated,
}

/// An incremental Pareto front: mutually non-dominated members, kept
/// sorted by candidate index so serialization never depends on insertion
/// order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParetoFront {
    members: Vec<FrontMember>,
}

impl ParetoFront {
    /// An empty front.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reconstructs a front from checkpointed members.
    ///
    /// Returns `None` if the members are not sorted by strictly increasing
    /// candidate index or are not mutually non-dominated — both indicate a
    /// corrupted artifact, not a state this type can ever serialize.
    pub fn from_members(members: Vec<FrontMember>) -> Option<Self> {
        let sorted = members.windows(2).all(|w| w[0].candidate_index < w[1].candidate_index);
        let non_dominated = members.iter().all(|a| {
            members.iter().all(|b| !dominates(&a.objectives, &b.objectives) || a == b)
        });
        (sorted && non_dominated).then_some(Self { members })
    }

    /// Offers a candidate to the front. See [`InsertOutcome`].
    pub fn insert(&mut self, member: FrontMember) -> InsertOutcome {
        if self.members.iter().any(|m| dominates(&m.objectives, &member.objectives)) {
            return InsertOutcome::Dominated;
        }
        let before = self.members.len();
        self.members.retain(|m| !dominates(&member.objectives, &m.objectives));
        let evicted = before - self.members.len();
        let pos = self
            .members
            .partition_point(|m| m.candidate_index < member.candidate_index);
        self.members.insert(pos, member);
        InsertOutcome::Added { evicted }
    }

    /// The members, sorted by candidate index.
    pub fn members(&self) -> &[FrontMember] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the front is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether some member dominates `point` (weakly, one strict).
    pub fn dominates_point(&self, point: &Objectives) -> bool {
        self.members.iter().any(|m| dominates(&m.objectives, point))
    }

    /// Whether some member strictly dominates `bound` on every axis — the
    /// region-cutting test.
    pub fn strictly_dominates_bound(&self, bound: &Objectives) -> bool {
        self.members.iter().any(|m| strictly_dominates(&m.objectives, bound))
    }

    /// Serializes one member under the artifact schema (objective keys
    /// only; the search layer prepends the decoded candidate fields).
    pub fn objectives_json(o: &Objectives) -> Vec<(&'static str, Json)> {
        vec![
            ("accuracy", Json::F64(o.accuracy)),
            ("latency_cycles", Json::U64(o.latency_cycles)),
            ("energy_pj", Json::F64(o.energy_pj)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(acc: f64, lat: u64, e: f64) -> Objectives {
        Objectives { accuracy: acc, latency_cycles: lat, energy_pj: e }
    }

    fn m(i: u64, obj: Objectives) -> FrontMember {
        FrontMember { candidate_index: i, objectives: obj }
    }

    #[test]
    fn dominance_relations() {
        let a = o(0.9, 100, 50.0);
        assert!(!dominates(&a, &a), "ties dominate nothing");
        assert!(dominates(&a, &o(0.9, 101, 50.0)), "one strict axis suffices");
        assert!(!dominates(&a, &o(0.95, 101, 50.0)), "trade-offs are incomparable");
        assert!(strictly_dominates(&a, &o(0.8, 101, 51.0)));
        assert!(!strictly_dominates(&a, &o(0.8, 100, 51.0)), "a tie breaks strictness");
    }

    #[test]
    fn insert_evicts_dominated_members() {
        let mut f = ParetoFront::new();
        assert_eq!(f.insert(m(3, o(0.5, 200, 9.0))), InsertOutcome::Added { evicted: 0 });
        assert_eq!(f.insert(m(1, o(0.6, 150, 8.0))), InsertOutcome::Added { evicted: 1 });
        assert_eq!(f.insert(m(2, o(0.5, 300, 9.0))), InsertOutcome::Dominated);
        assert_eq!(f.len(), 1);
        assert_eq!(f.members()[0].candidate_index, 1);
    }

    #[test]
    fn ties_coexist_and_order_is_index_sorted() {
        let mut a = ParetoFront::new();
        let mut b = ParetoFront::new();
        let dup = o(0.7, 100, 10.0);
        for (f, order) in [(&mut a, [5u64, 2]), (&mut b, [2u64, 5])] {
            for i in order {
                assert!(matches!(f.insert(m(i, dup)), InsertOutcome::Added { .. }));
            }
        }
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.members()[0].candidate_index, 2);
    }

    #[test]
    fn from_members_rejects_corruption() {
        let good = vec![m(1, o(0.5, 200, 9.0)), m(2, o(0.9, 300, 9.0))];
        assert!(ParetoFront::from_members(good.clone()).is_some());
        let unsorted = vec![good[1], good[0]];
        assert!(ParetoFront::from_members(unsorted).is_none());
        let dominated = vec![m(1, o(0.5, 200, 9.0)), m(2, o(0.5, 100, 9.0))];
        assert!(ParetoFront::from_members(dominated).is_none());
    }
}
