//! The simulator-backed candidate evaluator.
//!
//! One [`SharedSession`] carries everything candidate-invariant — the
//! network, the seed, and the cost-balanced partition plan — and each
//! candidate only pays for building its [`drq_sim::DrqAccelerator`] and
//! running the partitioned simulation. The session is `Sync`, so the same
//! instance serves every `par_map` worker of a leaf batch; reports are
//! byte-identical to per-candidate [`drq_sim::SimSession`] runs (pinned by
//! `tests/dse_session_reuse.rs`).
//!
//! **Objectives.** Latency and energy come straight from the cycle
//! simulator ([`drq_sim::NetworkSimReport::total_cycles`] /
//! [`drq_sim::NetworkSimReport::total_energy`]). Accuracy uses the
//! analytic proxy [`SimSpaceEval::accuracy_proxy`]: the repo's trainable
//! stand-ins are far smaller than the paper topologies being simulated, so
//! the proxy models the paper's Fig. 9 trend instead — quantization noise
//! grows with the sensitivity threshold (more of the map forced to INT4)
//! and with region area (coarser regions drag sensitive pixels down with
//! insensitive neighbours). The proxy is monotone in both axes, which is
//! what makes the per-box accuracy bound exact.
//!
//! **Optimistic bounds.** Region cutting needs objectives at least as good
//! as *any* candidate in a box:
//!
//! * accuracy — the proxy at the box's smallest threshold and smallest
//!   region area (axes are sorted, proxy is monotone decreasing in both);
//! * latency — `total_macs.div_ceil(max PEs in box)`: the cycle model's
//!   compute term is `(int4 + 4·int8 macs).div_ceil(PEs)` per layer, so
//!   even an all-INT4 run with zero fill/stall/load cycles cannot beat
//!   the aggregate peak rate;
//! * energy — `total_macs × mac_pj(INT4)`: every MAC costs at least the
//!   INT4 rate, and buffer/DRAM/register traffic only adds.
//!
//! These are loose (a real run pays fill and weight-load cycles), so on
//! the simulator most pruning comes from dominance; the bounds exist to
//! stay *sound* — the front is provably identical to exhaustive
//! evaluation, which the property suite checks against a naive oracle.

use super::front::Objectives;
use super::search::{CandidateBox, CandidateEval};
use super::space::{Candidate, CandidateSpace};
use drq_core::{DrqConfig, RegionSize};
use drq_models::NetworkTopology;
use drq_quant::Precision;
use drq_sim::{ArchConfig, EnergyModel, NetworkSimReport, Partitions, SharedSession};

/// Scores candidates on the cycle simulator through one shared session.
pub struct SimSpaceEval<'n> {
    session: SharedSession<'n>,
    energy: EnergyModel,
    total_macs: u64,
}

impl<'n> SimSpaceEval<'n> {
    /// Builds the evaluator: the partition plan is computed once here and
    /// reused by every candidate.
    pub fn new(net: &'n NetworkTopology, partitions: impl Into<Partitions>, seed: u64) -> Self {
        Self {
            session: SharedSession::new(net, partitions).seed(seed),
            energy: EnergyModel::tsmc45(),
            total_macs: net.total_macs(),
        }
    }

    /// The shared session driving the simulations.
    pub fn session(&self) -> &SharedSession<'n> {
        &self.session
    }

    /// Builds a candidate's accelerator and runs the shared session on it.
    pub fn simulate(&self, c: &Candidate) -> NetworkSimReport {
        let accel = ArchConfig::builder()
            .geometry(c.geometry.pages, c.geometry.rows, c.geometry.cols)
            .global_buffer_bytes(c.buffer_bytes)
            .drq(DrqConfig::new(c.region, c.threshold))
            .build();
        self.session.simulate(&accel)
    }

    /// The analytic accuracy proxy (see the [module docs](self)):
    /// `1 / (1 + noise)` with
    /// `noise = (threshold/127) · (0.25 + 0.75 · ln(area)/ln(4096))`,
    /// both factors clamped to `[0, 1]`. Monotone non-increasing in the
    /// threshold and in the region area; 1.0 at threshold 0 (everything
    /// INT8, i.e. the baseline precision).
    pub fn accuracy_proxy(threshold: f32, region: RegionSize) -> f64 {
        let t = (f64::from(threshold) / 127.0).clamp(0.0, 1.0);
        let area = (region.area() as f64).max(1.0);
        let coarseness = (area.ln() / 4096f64.ln()).clamp(0.0, 1.0);
        1.0 / (1.0 + t * (0.25 + 0.75 * coarseness))
    }
}

impl CandidateEval for SimSpaceEval<'_> {
    fn evaluate(&self, c: &Candidate) -> Result<Objectives, String> {
        let report = self.simulate(c);
        Ok(Objectives {
            accuracy: Self::accuracy_proxy(c.threshold, c.region),
            latency_cycles: report.total_cycles(),
            energy_pj: report.total_energy().total_pj(),
        })
    }

    fn optimistic_bound(&self, space: &CandidateSpace, bx: &CandidateBox) -> Option<Objectives> {
        let best_threshold = space.thresholds()[bx.lo[2]];
        let smallest_region = space.regions()[bx.lo[1]];
        let max_pes = space.geometries()[bx.hi[0] - 1].total_pes() as u64;
        Some(Objectives {
            accuracy: Self::accuracy_proxy(best_threshold, smallest_region),
            latency_cycles: self.total_macs.div_ceil(max_pes),
            energy_pj: self.total_macs as f64 * self.energy.mac_pj(Precision::Int4),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto::{CandidateBox, Geometry};
    use drq_models::zoo;

    fn space() -> CandidateSpace {
        CandidateSpace::try_new(
            vec![Geometry::new(8, 18, 11), Geometry::new(16, 18, 11)],
            vec![RegionSize::new(4, 4), RegionSize::new(4, 16)],
            vec![0.5, 21.0, 127.0],
            vec![5 * 1024 * 1024],
        )
        .unwrap()
    }

    #[test]
    fn accuracy_proxy_is_monotone() {
        let r = RegionSize::new(4, 16);
        assert!(SimSpaceEval::accuracy_proxy(0.0, r) == 1.0);
        assert!(
            SimSpaceEval::accuracy_proxy(0.5, r) > SimSpaceEval::accuracy_proxy(21.0, r),
            "higher threshold quantizes more, costing accuracy"
        );
        assert!(
            SimSpaceEval::accuracy_proxy(21.0, RegionSize::new(2, 2))
                > SimSpaceEval::accuracy_proxy(21.0, RegionSize::new(16, 16)),
            "coarser regions cost accuracy"
        );
    }

    #[test]
    fn bound_is_optimistic_for_every_candidate_in_the_box() {
        let net = zoo::lenet5();
        let eval = SimSpaceEval::new(&net, Partitions::Auto, 42);
        let s = space();
        let bx = CandidateBox::full(&s);
        let bound = eval.optimistic_bound(&s, &bx).unwrap();
        for i in bx.candidate_indices(&s) {
            let c = s.candidate(i);
            let obj = eval.evaluate(&c).unwrap();
            assert!(bound.accuracy >= obj.accuracy, "accuracy bound broken at {i}");
            assert!(bound.latency_cycles <= obj.latency_cycles, "latency bound broken at {i}");
            assert!(bound.energy_pj <= obj.energy_pj, "energy bound broken at {i}");
        }
    }

    #[test]
    fn evaluation_matches_a_dedicated_session() {
        use drq_sim::SimSession;
        let net = zoo::lenet5();
        let eval = SimSpaceEval::new(&net, Partitions::Auto, 42);
        let c = space().candidate(3);
        let via_shared = eval.simulate(&c);
        let accel = ArchConfig::builder()
            .geometry(c.geometry.pages, c.geometry.rows, c.geometry.cols)
            .global_buffer_bytes(c.buffer_bytes)
            .drq(DrqConfig::new(c.region, c.threshold))
            .build();
        let dedicated =
            SimSession::new(&accel, &net).seed(42).run().unwrap().into_report();
        assert_eq!(via_shared, dedicated);
    }
}
