//! The Pareto search engine: candidate space, incremental front, driver,
//! and the simulator-backed evaluator.
//!
//! Split by concern:
//!
//! * [`space`] — [`CandidateSpace`] / [`Candidate`] / [`Geometry`]: the
//!   typed grid and its stable index encoding.
//! * [`front`] — [`Objectives`] / [`ParetoFront`]: dominance and
//!   incremental front maintenance.
//! * [`search`] — [`ParetoSearch`] / [`CandidateBox`] /
//!   [`CandidateEval`]: the resumable branch-and-bound driver and its
//!   checkpoint artifact.
//! * [`sim_eval`] — [`SimSpaceEval`]: candidates evaluated on the cycle
//!   simulator through one shared session.

pub mod front;
pub mod search;
pub mod sim_eval;
pub mod space;

pub use front::{dominates, strictly_dominates, FrontMember, InsertOutcome, Objectives, ParetoFront};
pub use search::{CandidateBox, CandidateEval, ParetoSearch, SearchStatus, PARETO_KIND};
pub use sim_eval::SimSpaceEval;
pub use space::{Candidate, CandidateSpace, Geometry};
