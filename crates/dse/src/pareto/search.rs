//! The resumable branch-and-bound Pareto search driver.
//!
//! The search state is a LIFO stack of index hypercubes
//! ([`CandidateBox`]es) over the [`CandidateSpace`]. Each step pops a box
//! and either
//!
//! 1. **cuts** it — the evaluator's optimistic bound for the box is
//!    strictly dominated by an existing front member, so no point inside
//!    can reach the front (all `box.len()` candidates skipped unevaluated);
//! 2. **evaluates** it — the box fits the batch size, so its candidates
//!    are scored concurrently on the `drq_tensor::parallel` pool (each
//!    under [`retry_with_backoff`] with a per-candidate jitter stream) and
//!    offered to the front in index order; or
//! 3. **splits** it along its widest axis, the seed deciding which half is
//!    explored first.
//!
//! Everything is deterministic in `(space, seed, batch)`: candidate
//! scoring happens on worker threads, but front insertion and stack
//! manipulation are sequential, so the artifact bytes are identical at
//! every thread count. [`ParetoSearch::to_report`] serializes the **whole**
//! state — front, pending stack, and counters — under `kind:"pareto"`,
//! and [`ParetoSearch::from_report`] restores it exactly, which is what
//! makes a killed search resume to byte-identical convergence. The
//! evaluation **budget is deliberately not part of the state**: it limits
//! how much work one `run` call does, not where the search converges.

use super::front::{FrontMember, Objectives, ParetoFront};
use super::space::{Candidate, CandidateSpace};
use drq_core::dse::{retry_with_backoff, RetryPolicy};
use drq_core::DrqError;
use drq_telemetry::{counter_add, Json, Report};
use drq_tensor::parallel;

/// The artifact `kind` every checkpoint carries.
pub const PARETO_KIND: &str = "pareto";

/// A contiguous half-open index hypercube over the four space axes
/// (geometry, region, threshold, buffer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateBox {
    /// Inclusive lower corner, per axis.
    pub lo: [usize; 4],
    /// Exclusive upper corner, per axis.
    pub hi: [usize; 4],
}

impl CandidateBox {
    /// The full box covering `space`.
    pub fn full(space: &CandidateSpace) -> Self {
        Self { lo: [0; 4], hi: space.axis_lens() }
    }

    /// Number of candidates inside.
    pub fn len(&self) -> usize {
        (0..4).map(|a| self.hi[a] - self.lo[a]).product()
    }

    /// Whether the box is empty (never true for boxes the search creates).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The axis with the longest extent (lowest axis index on ties).
    pub fn widest_axis(&self) -> usize {
        (0..4).max_by_key(|&a| (self.hi[a] - self.lo[a], 3 - a)).expect("four axes")
    }

    /// Splits along the widest axis at its midpoint. Only valid when
    /// `len() > 1`.
    pub fn split(&self) -> (CandidateBox, CandidateBox) {
        let axis = self.widest_axis();
        debug_assert!(self.hi[axis] - self.lo[axis] > 1, "cannot split a unit box");
        let mid = self.lo[axis] + (self.hi[axis] - self.lo[axis]) / 2;
        let mut low = self.clone();
        let mut high = self.clone();
        low.hi[axis] = mid;
        high.lo[axis] = mid;
        (low, high)
    }

    /// The candidate indices inside, in ascending index order.
    pub fn candidate_indices(&self, space: &CandidateSpace) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.len());
        for g in self.lo[0]..self.hi[0] {
            for r in self.lo[1]..self.hi[1] {
                for t in self.lo[2]..self.hi[2] {
                    for b in self.lo[3]..self.hi[3] {
                        out.push(space.encode(g, r, t, b));
                    }
                }
            }
        }
        out
    }

    /// A stable fingerprint of the box corners (seeds the split-order
    /// coin).
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
        for v in self.lo.iter().chain(&self.hi) {
            h = splitmix64(h ^ (*v as u64));
        }
        h
    }

    fn to_json(&self) -> Json {
        let corner = |c: &[usize; 4]| Json::Array(c.iter().map(|&v| Json::U64(v as u64)).collect());
        Json::Array(vec![corner(&self.lo), corner(&self.hi)])
    }

    fn from_json(v: &Json, space: &CandidateSpace) -> Result<Self, DrqError> {
        let invalid = |detail: String| DrqError::InvalidConfig { context: "pareto checkpoint", detail };
        let corners = v.as_array().ok_or_else(|| invalid(format!("bad box {v}")))?;
        let corner = |i: usize| -> Result<[usize; 4], DrqError> {
            let arr = corners
                .get(i)
                .and_then(Json::as_array)
                .ok_or_else(|| invalid(format!("bad box corner in {v}")))?;
            if arr.len() != 4 {
                return Err(invalid(format!("box corner needs 4 axes: {v}")));
            }
            let mut out = [0usize; 4];
            for (o, j) in out.iter_mut().zip(arr) {
                *o = j.as_u64().ok_or_else(|| invalid(format!("bad box coordinate in {v}")))?
                    as usize;
            }
            Ok(out)
        };
        let bx = Self { lo: corner(0)?, hi: corner(1)? };
        let lens = space.axis_lens();
        for a in 0..4 {
            if bx.lo[a] >= bx.hi[a] || bx.hi[a] > lens[a] {
                return Err(invalid(format!("box {v} out of range for space axes {lens:?}")));
            }
        }
        Ok(bx)
    }
}

/// How a candidate is scored, plus (optionally) how tightly a whole box
/// can be bounded.
///
/// Implementations must be [`Sync`]: one evaluator instance is shared by
/// every pool worker of a leaf batch.
pub trait CandidateEval: Sync {
    /// Scores one candidate. Failures are retried under the search's
    /// [`RetryPolicy`] before aborting the run with
    /// [`DrqError::RetriesExhausted`].
    fn evaluate(&self, candidate: &Candidate) -> Result<Objectives, String>;

    /// An **optimistic** bound for `bx`: objectives at least as good, on
    /// every axis, as any candidate inside the box. Returning `None`
    /// (the default) disables region cutting, which is always sound.
    ///
    /// Soundness contract: if any candidate in the box could beat the
    /// bound on some axis, cutting may discard Pareto-optimal points and
    /// the oracle-equality property in `tests/pareto.rs` will fail.
    fn optimistic_bound(&self, space: &CandidateSpace, bx: &CandidateBox) -> Option<Objectives> {
        let _ = (space, bx);
        None
    }
}

/// What a bounded [`ParetoSearch::run`] call ended with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStatus {
    /// The stack is empty: the front is final.
    Complete,
    /// The evaluation budget ran out with boxes still pending; checkpoint
    /// with [`ParetoSearch::to_report`] and resume later.
    Paused,
}

/// The resumable search state. See the [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoSearch {
    space: CandidateSpace,
    seed: u64,
    batch: usize,
    retry: RetryPolicy,
    meta: Json,
    front: ParetoFront,
    /// Pending boxes, bottom → top (top is explored next).
    stack: Vec<CandidateBox>,
    evaluated: u64,
    region_pruned: u64,
}

impl ParetoSearch {
    /// Starts a fresh search over `space`. `batch` is the largest box
    /// evaluated as one parallel leaf (clamped to ≥ 1); `seed` feeds the
    /// evaluator and the split-order coin.
    pub fn new(space: CandidateSpace, seed: u64, batch: usize) -> Self {
        let stack = vec![CandidateBox::full(&space)];
        Self {
            space,
            seed,
            batch: batch.max(1),
            retry: RetryPolicy::default_sweep(),
            meta: Json::Null,
            front: ParetoFront::new(),
            stack,
            evaluated: 0,
            region_pruned: 0,
        }
    }

    /// Sets the per-candidate retry policy (default:
    /// [`RetryPolicy::default_sweep`]). Not serialized — retries change
    /// wall-clock behaviour, never results.
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Attaches evaluator metadata (e.g. which network/partitioning the
    /// objectives were scored on). Stored verbatim under the artifact's
    /// `evaluator` key so a resuming process can rebuild the evaluator.
    pub fn meta(mut self, meta: Json) -> Self {
        self.meta = meta;
        self
    }

    /// The evaluator metadata attached via [`ParetoSearch::meta`]
    /// ([`Json::Null`] when absent).
    pub fn evaluator_meta(&self) -> &Json {
        &self.meta
    }

    /// The candidate space.
    pub fn space(&self) -> &CandidateSpace {
        &self.space
    }

    /// The search seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The leaf batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The current front.
    pub fn front(&self) -> &ParetoFront {
        &self.front
    }

    /// Candidates evaluated so far.
    pub fn evaluated(&self) -> u64 {
        self.evaluated
    }

    /// Evaluated candidates currently kept off the front by dominance.
    pub fn dominated_pruned(&self) -> u64 {
        self.evaluated - self.front.len() as u64
    }

    /// Candidates skipped unevaluated by region cutting.
    pub fn region_pruned(&self) -> u64 {
        self.region_pruned
    }

    /// Whether the search has converged (no pending boxes).
    pub fn is_complete(&self) -> bool {
        self.stack.is_empty()
    }

    /// Drives the search until convergence or until `budget` candidate
    /// evaluations have happened **in this call** (the budget bounds one
    /// call's work; it is not checkpointed, so a budgeted-then-resumed
    /// search converges to the same bytes as an unbudgeted one). Each call
    /// makes progress: at least one leaf is evaluated before a budget
    /// pause.
    ///
    /// # Errors
    ///
    /// Propagates [`DrqError::RetriesExhausted`] once a candidate fails
    /// all retry attempts; the already-merged state stays checkpointable.
    pub fn run(
        &mut self,
        eval: &(impl CandidateEval + ?Sized),
        budget: Option<u64>,
    ) -> Result<SearchStatus, DrqError> {
        let mut spent: u64 = 0;
        loop {
            if self.stack.is_empty() {
                return Ok(SearchStatus::Complete);
            }
            if let Some(b) = budget {
                if spent >= b {
                    return Ok(SearchStatus::Paused);
                }
            }
            let bx = self.stack.pop().expect("checked non-empty");
            if let Some(bound) = eval.optimistic_bound(&self.space, &bx) {
                if self.front.strictly_dominates_bound(&bound) {
                    self.region_pruned += bx.len() as u64;
                    counter_add!("dse/pareto/region_pruned", bx.len() as u64);
                    continue;
                }
            }
            if bx.len() > self.batch {
                let (low, high) = bx.split();
                // The seed flips a deterministic coin per box: which half
                // is explored first changes the insertion order but (by
                // the order-invariance of the front) never the result.
                if splitmix64(self.seed ^ bx.fingerprint()) & 1 == 0 {
                    self.stack.push(high);
                    self.stack.push(low);
                } else {
                    self.stack.push(low);
                    self.stack.push(high);
                }
                continue;
            }
            spent += self.evaluate_leaf(eval, &bx)?;
        }
    }

    /// Evaluates every candidate of a leaf box concurrently and merges the
    /// scores into the front sequentially, in index order.
    fn evaluate_leaf(
        &mut self,
        eval: &(impl CandidateEval + ?Sized),
        bx: &CandidateBox,
    ) -> Result<u64, DrqError> {
        let indices = bx.candidate_indices(&self.space);
        let (space, retry, seed) = (&self.space, self.retry, self.seed);
        let scores: Vec<Result<Objectives, DrqError>> = parallel::par_map(indices.len(), |i| {
            let candidate = space.candidate(indices[i]);
            // Decorrelate retry schedules: each candidate retries on its
            // own jitter stream (the `sweep_thresholds_retrying` idiom),
            // so simultaneous failures do not re-fire in lockstep.
            let policy = match retry.jitter_seed {
                Some(js) => retry.with_jitter_seed(js ^ splitmix64(seed ^ indices[i] as u64)),
                None => retry,
            };
            retry_with_backoff(policy, "pareto candidate", |_| eval.evaluate(&candidate))
        });
        // Propagate the first failure (in index order) without merging any
        // of the leaf — the checkpoint then re-evaluates the whole box.
        let mut merged = Vec::with_capacity(indices.len());
        for score in scores {
            merged.push(score?);
        }
        for (&index, objectives) in indices.iter().zip(merged) {
            self.front.insert(FrontMember { candidate_index: index as u64, objectives });
            self.evaluated += 1;
        }
        counter_add!("dse/pareto/evaluated", indices.len() as u64);
        Ok(indices.len() as u64)
    }

    /// Serializes the full state under the schema-versioned `kind:"pareto"`
    /// artifact. Byte-stable: a pure function of the search state.
    pub fn to_report(&self) -> Report {
        let mut r = Report::new(PARETO_KIND);
        r.push("status", if self.is_complete() { "complete" } else { "paused" })
            .push("seed", self.seed)
            .push("batch", self.batch as u64)
            .push("space_fingerprint", self.space.fingerprint())
            .push("evaluated", self.evaluated)
            .push("front_size", self.front.len() as u64)
            .push("dominated_pruned", self.dominated_pruned())
            .push("region_pruned", self.region_pruned)
            .push("pruned", self.dominated_pruned() + self.region_pruned);
        if self.meta != Json::Null {
            r.push("evaluator", self.meta.clone());
        }
        r.push("space", self.space.to_json());
        let front = self
            .front
            .members()
            .iter()
            .map(|m| {
                let c = self.space.candidate(m.candidate_index as usize);
                let mut fields = vec![
                    ("index", Json::U64(m.candidate_index)),
                    ("geometry", Json::str(c.geometry.to_string())),
                    ("region", Json::str(c.region.to_string())),
                    ("threshold", Json::F64(f64::from(c.threshold))),
                    ("buffer_bytes", Json::U64(c.buffer_bytes as u64)),
                ];
                fields.extend(ParetoFront::objectives_json(&m.objectives));
                Json::obj(fields)
            })
            .collect();
        r.push("front", Json::Array(front));
        r.push("pending", Json::Array(self.stack.iter().map(CandidateBox::to_json).collect()));
        r
    }

    /// Restores a search from a checkpoint artifact (the exact inverse of
    /// [`ParetoSearch::to_report`] — resumed state re-serializes to the
    /// same bytes).
    ///
    /// # Errors
    ///
    /// [`DrqError::InvalidConfig`] if the artifact has the wrong kind, a
    /// space that fails validation or does not match its recorded
    /// fingerprint, an inconsistent front, or out-of-range pending boxes.
    pub fn from_report(report: &Report) -> Result<Self, DrqError> {
        let invalid = |detail: String| DrqError::InvalidConfig { context: "pareto checkpoint", detail };
        if report.kind() != PARETO_KIND {
            return Err(invalid(format!("expected kind {PARETO_KIND:?}, got {:?}", report.kind())));
        }
        let u64_key = |k: &str| {
            report
                .get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| invalid(format!("missing integer key {k:?}")))
        };
        let space = CandidateSpace::from_json(
            report.get("space").ok_or_else(|| invalid("missing space".into()))?,
        )?;
        if space.fingerprint() != u64_key("space_fingerprint")? {
            return Err(invalid("space fingerprint mismatch — artifact edited or stale".into()));
        }
        let members = report
            .get("front")
            .and_then(Json::as_array)
            .ok_or_else(|| invalid("missing front array".into()))?
            .iter()
            .map(|m| {
                let num = |k: &str| {
                    m.get(k)
                        .and_then(Json::as_f64)
                        .filter(|v| v.is_finite())
                        .ok_or_else(|| invalid(format!("front member missing finite {k:?}: {m}")))
                };
                let index = m
                    .get("index")
                    .and_then(Json::as_u64)
                    .filter(|&i| (i as usize) < space.len())
                    .ok_or_else(|| invalid(format!("front member index out of range: {m}")))?;
                let latency = m
                    .get("latency_cycles")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| invalid(format!("front member missing latency_cycles: {m}")))?;
                Ok(FrontMember {
                    candidate_index: index,
                    objectives: Objectives {
                        accuracy: num("accuracy")?,
                        latency_cycles: latency,
                        energy_pj: num("energy_pj")?,
                    },
                })
            })
            .collect::<Result<Vec<_>, DrqError>>()?;
        let front_len = members.len() as u64;
        let front = ParetoFront::from_members(members)
            .ok_or_else(|| invalid("front members unsorted or mutually dominated".into()))?;
        let stack = report
            .get("pending")
            .and_then(Json::as_array)
            .ok_or_else(|| invalid("missing pending array".into()))?
            .iter()
            .map(|b| CandidateBox::from_json(b, &space))
            .collect::<Result<Vec<_>, DrqError>>()?;
        let evaluated = u64_key("evaluated")?;
        if evaluated < front_len {
            return Err(invalid(format!(
                "evaluated count {evaluated} below front size {front_len}"
            )));
        }
        Ok(Self {
            space,
            seed: u64_key("seed")?,
            batch: u64_key("batch")?.max(1) as usize,
            retry: RetryPolicy::default_sweep(),
            meta: report.get("evaluator").cloned().unwrap_or(Json::Null),
            front,
            stack,
            evaluated,
            region_pruned: u64_key("region_pruned")?,
        })
    }
}

/// SplitMix64 finalizer — the same mixing the partition seed streams use.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drq_core::RegionSize;
    use crate::pareto::Geometry;

    /// A toy evaluator with genuine trade-offs: a higher threshold costs
    /// accuracy and energy but buys latency; a bigger array buys latency
    /// but costs energy. Exact per-box corner bounds (axes are sorted,
    /// every term is monotone).
    struct TableEval;

    impl TableEval {
        fn score(c: &Candidate) -> Objectives {
            Self::compose(
                f64::from(c.threshold),
                c.geometry.total_pes(),
                c.region.area(),
                c.buffer_bytes,
            )
        }

        fn compose(t: f64, pes: usize, area: usize, buffer: usize) -> Objectives {
            Objectives {
                accuracy: 1.0 / (1.0 + t),
                latency_cycles: ((1_000_000.0 * (128.0 - t)) / (128.0 * pes as f64)) as u64
                    + area as u64,
                energy_pj: pes as f64 * 0.01 + buffer as f64 + t,
            }
        }
    }

    impl CandidateEval for TableEval {
        fn evaluate(&self, c: &Candidate) -> Result<Objectives, String> {
            Ok(Self::score(c))
        }

        fn optimistic_bound(
            &self,
            space: &CandidateSpace,
            bx: &CandidateBox,
        ) -> Option<Objectives> {
            let t_min = f64::from(space.thresholds()[bx.lo[2]]);
            let t_max = f64::from(space.thresholds()[bx.hi[2] - 1]);
            let pes_min = space.geometries()[bx.lo[0]].total_pes();
            let pes_max = space.geometries()[bx.hi[0] - 1].total_pes();
            let area_min = space.regions()[bx.lo[1]].area();
            let buf_min = space.buffer_bytes()[bx.lo[3]];
            let best_acc = Self::compose(t_min, pes_max, area_min, buf_min).accuracy;
            let best_lat = Self::compose(t_max, pes_max, area_min, buf_min).latency_cycles;
            let best_energy = Self::compose(t_min, pes_min, area_min, buf_min).energy_pj;
            Some(Objectives {
                accuracy: best_acc,
                latency_cycles: best_lat,
                energy_pj: best_energy,
            })
        }
    }

    fn space() -> CandidateSpace {
        CandidateSpace::try_new(
            vec![Geometry::new(1, 4, 4), Geometry::new(2, 4, 4), Geometry::new(4, 4, 4)],
            vec![RegionSize::new(2, 2), RegionSize::new(4, 4)],
            vec![0.5, 2.0, 8.0, 32.0],
            vec![100, 200],
        )
        .unwrap()
    }

    #[test]
    fn box_split_covers_and_partitions() {
        let s = space();
        let full = CandidateBox::full(&s);
        assert_eq!(full.len(), s.len());
        let (a, b) = full.split();
        assert_eq!(a.len() + b.len(), full.len());
        let mut all: Vec<usize> = a
            .candidate_indices(&s)
            .into_iter()
            .chain(b.candidate_indices(&s))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..s.len()).collect::<Vec<_>>());
    }

    #[test]
    fn search_finds_the_exact_front_and_prunes() {
        let s = space();
        let mut search = ParetoSearch::new(s.clone(), 7, 4);
        assert_eq!(search.run(&TableEval, None).unwrap(), SearchStatus::Complete);
        assert!(search.front().len() > 1);
        assert!(search.dominated_pruned() > 0, "grid corners must be dominated");
        assert_eq!(search.evaluated() + search.region_pruned(), s.len() as u64);
        // Differential: brute force over the whole space.
        let mut brute = ParetoFront::new();
        for i in 0..s.len() {
            brute.insert(FrontMember {
                candidate_index: i as u64,
                objectives: TableEval::score(&s.candidate(i)),
            });
        }
        assert_eq!(search.front(), &brute);
    }

    #[test]
    fn budget_pauses_and_resume_converges_identically() {
        let s = space();
        let mut full = ParetoSearch::new(s.clone(), 7, 4);
        full.run(&TableEval, None).unwrap();
        let reference = full.to_report().to_json_string();

        let mut paused = ParetoSearch::new(s, 7, 4);
        let mut pauses = 0;
        loop {
            match paused.run(&TableEval, Some(5)).unwrap() {
                SearchStatus::Complete => break,
                SearchStatus::Paused => {
                    pauses += 1;
                    // Round-trip through the artifact at every pause.
                    let bytes = paused.to_report();
                    let restored = ParetoSearch::from_report(&bytes).unwrap();
                    assert_eq!(restored.to_report().to_json_string(), bytes.to_json_string());
                    paused = restored;
                }
            }
        }
        assert!(pauses > 0, "budget of 5 must pause a {}-candidate search", full.evaluated());
        assert_eq!(paused.to_report().to_json_string(), reference);
    }

    #[test]
    fn region_cutting_skips_strictly_dominated_boxes() {
        // One axis is purely bad: every extra threshold rung costs
        // accuracy, latency, and energy. Once the best-threshold leaf is
        // on the front, the remaining high-threshold boxes are strictly
        // dominated at their optimistic corner and must be cut unevaluated.
        struct Monotone;
        impl CandidateEval for Monotone {
            fn evaluate(&self, c: &Candidate) -> Result<Objectives, String> {
                let t = f64::from(c.threshold);
                Ok(Objectives {
                    accuracy: 200.0 - t,
                    latency_cycles: 1_000 + (t * 10.0) as u64,
                    energy_pj: t,
                })
            }
            fn optimistic_bound(
                &self,
                space: &CandidateSpace,
                bx: &CandidateBox,
            ) -> Option<Objectives> {
                let t_min = f64::from(space.thresholds()[bx.lo[2]]);
                Some(Objectives {
                    accuracy: 200.0 - t_min,
                    latency_cycles: 1_000 + (t_min * 10.0) as u64,
                    energy_pj: t_min,
                })
            }
        }
        let s = CandidateSpace::try_new(
            vec![Geometry::new(1, 1, 1)],
            vec![RegionSize::new(1, 1)],
            (1..=16).map(|t| t as f32).collect(),
            vec![64],
        )
        .unwrap();
        let mut search = ParetoSearch::new(s.clone(), 0, 2);
        search.run(&Monotone, None).unwrap();
        assert_eq!(search.front().len(), 1, "a single threshold wins every axis");
        assert!(search.region_pruned() > 0, "dominated boxes must be cut unevaluated");
        assert_eq!(search.evaluated() + search.region_pruned(), s.len() as u64);
        assert_eq!(search.front().members()[0].candidate_index, 0);
    }

    #[test]
    fn seeds_change_traversal_but_not_the_front() {
        let s = space();
        let mut a = ParetoSearch::new(s.clone(), 1, 2);
        let mut b = ParetoSearch::new(s, 0xDEAD_BEEF, 2);
        a.run(&TableEval, None).unwrap();
        b.run(&TableEval, None).unwrap();
        assert_eq!(a.front(), b.front());
    }

    #[test]
    fn from_report_rejects_foreign_and_corrupt_artifacts() {
        let other = Report::new("network_sim");
        assert!(ParetoSearch::from_report(&other).is_err());
        let mut search = ParetoSearch::new(space(), 7, 4);
        search.run(&TableEval, Some(4)).unwrap();
        let good = search.to_report();
        let text = good.to_json_string();
        let tampered = text.replace("\"seed\":7", "\"seed\":7,\"x\":1"); // still parses
        let report = Report::from_json_str(&tampered).unwrap();
        assert!(ParetoSearch::from_report(&report).is_ok(), "unknown keys are ignored");
        let wrong_space = text.replace("\"regions\":[\"2x2\",\"4x4\"]", "\"regions\":[\"2x2\"]");
        let report = Report::from_json_str(&wrong_space).unwrap();
        assert!(ParetoSearch::from_report(&report).is_err(), "fingerprint must catch edits");
    }

    #[test]
    fn failing_evaluator_propagates_typed_error() {
        struct Flaky;
        impl CandidateEval for Flaky {
            fn evaluate(&self, c: &Candidate) -> Result<Objectives, String> {
                Err(format!("candidate {} is cursed", c.index))
            }
        }
        let mut search = ParetoSearch::new(space(), 7, 4)
            .retry_policy(RetryPolicy::fast_test());
        let err = search.run(&Flaky, None).unwrap_err();
        assert!(matches!(err, DrqError::RetriesExhausted { attempts: 3, .. }), "{err}");
    }
}
