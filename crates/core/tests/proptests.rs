//! Property-based tests for the DRQ algorithm invariants.

use drq_core::{
    uniform_masks, DrqConfig, MaskMap, MixedPrecisionConv, RegionGrid, RegionSize,
    SensitivityPredictor,
};
use drq_nn::Conv2d;
use drq_tensor::{Shape4, Tensor, XorShiftRng};
use proptest::prelude::*;

proptest! {
    #[test]
    fn every_pixel_belongs_to_exactly_one_region(
        h in 1usize..40, w in 1usize..40, rx in 1usize..10, ry in 1usize..10
    ) {
        let grid = RegionGrid::new(h, w, RegionSize::new(rx, ry));
        let mut counts = vec![0usize; grid.region_count()];
        for y in 0..h {
            for x in 0..w {
                counts[grid.region_index_of(y, x)] += 1;
            }
        }
        prop_assert_eq!(counts.iter().sum::<usize>(), h * w);
        prop_assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn predictor_sensitivity_is_monotone_in_threshold(
        seed in 0u64..300, c in 1usize..4, h in 4usize..20, w in 4usize..20
    ) {
        let mut rng = XorShiftRng::new(seed + 1);
        let x = Tensor::from_fn(&[1, c, h, w], |_| rng.next_f32());
        let mut last = f64::INFINITY;
        for t in [0.0f32, 5.0, 20.0, 60.0, 127.0] {
            let p = SensitivityPredictor::new(RegionSize::new(2, 2), t);
            let frac = p.sensitive_fraction(&x, 0);
            prop_assert!(frac <= last + 1e-12, "not monotone at {}", t);
            last = frac;
        }
    }

    #[test]
    fn predictor_is_scale_invariant(
        seed in 0u64..300, scale in 0.01f32..100.0
    ) {
        // Max-abs INT8 calibration makes the predictor invariant to global
        // input scaling — the property that lets one threshold serve
        // differently scaled images.
        let mut rng = XorShiftRng::new(seed + 2);
        let x = Tensor::from_fn(&[1, 2, 12, 12], |_| rng.next_f32());
        let xs = x.map(|v| v * scale);
        let p = SensitivityPredictor::new(RegionSize::new(4, 4), 20.0);
        let a: Vec<_> = p.predict(&x).iter().map(|m| m.bits().to_vec()).collect();
        let b: Vec<_> = p.predict(&xs).iter().map(|m| m.bits().to_vec()).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn mixed_conv_mac_count_matches_geometry(
        seed in 0u64..200, in_c in 1usize..4, out_c in 1usize..5,
        hw in 4usize..10, k in 1usize..4
    ) {
        prop_assume!(k <= hw);
        let conv = Conv2d::new(in_c, out_c, k, 1, 0, seed);
        let mut rng = XorShiftRng::new(seed + 3);
        let x = Tensor::from_fn(&[1, in_c, hw, hw], |_| rng.next_f32());
        let p = SensitivityPredictor::new(RegionSize::new(2, 2), 40.0);
        let masks = vec![p.predict(&x)];
        let (_, counts) = MixedPrecisionConv::forward(&conv, &x, &masks);
        prop_assert_eq!(counts.total(), conv.mac_count(Shape4::new(1, in_c, hw, hw)));
    }

    #[test]
    fn mixed_conv_error_ordering(seed in 0u64..100) {
        // For any random conv/input, quantization error is ordered:
        // all-INT8 <= dynamic-mixed <= all-INT4 (measured against FP32).
        let conv = Conv2d::new(2, 3, 3, 1, 1, seed + 11);
        let mut fp = conv.clone();
        let mut rng = XorShiftRng::new(seed + 4);
        let x = Tensor::from_fn(&[1, 2, 8, 8], |_| {
            let v = rng.next_normal();
            if v > 1.2 { v } else { (v * 0.05).max(0.0) }
        });
        let y_ref = fp.forward(&x, false);
        let err = |y: &Tensor<f32>| -> f32 {
            y.as_slice().iter().zip(y_ref.as_slice()).map(|(a, b)| (a - b).powi(2)).sum()
        };
        let shape = x.shape4().unwrap();
        let (y8, _) = MixedPrecisionConv::forward(&conv, &x, &uniform_masks(shape, true));
        let p = SensitivityPredictor::new(RegionSize::new(4, 4), 10.0);
        let (ym, _) = MixedPrecisionConv::forward(&conv, &x, &[p.predict(&x)]);
        let (y4, _) = MixedPrecisionConv::forward(&conv, &x, &uniform_masks(shape, false));
        prop_assert!(err(&y8) <= err(&ym) + 1e-3);
        prop_assert!(err(&ym) <= err(&y4) + 1e-3);
    }

    #[test]
    fn mask_fractions_are_consistent(
        h in 2usize..30, w in 2usize..30, rx in 1usize..6, ry in 1usize..6, seed in 0u64..200
    ) {
        let grid = RegionGrid::new(h, w, RegionSize::new(rx, ry));
        let mut rng = XorShiftRng::new(seed + 5);
        let bits: Vec<bool> = (0..grid.region_count()).map(|_| rng.next_f64() < 0.3).collect();
        let m = MaskMap::from_bits(grid, bits);
        prop_assert!(m.sensitive_fraction() >= 0.0 && m.sensitive_fraction() <= 1.0);
        prop_assert!(m.sensitive_pixel_fraction() >= 0.0 && m.sensitive_pixel_fraction() <= 1.0);
        // Pixel census agrees with pixel_sensitive lookups.
        let mut sens_px = 0usize;
        for y in 0..h {
            for x in 0..w {
                if m.pixel_sensitive(y, x) {
                    sens_px += 1;
                }
            }
        }
        prop_assert!((m.sensitive_pixel_fraction() - sens_px as f64 / (h * w) as f64).abs() < 1e-12);
    }

    #[test]
    fn config_layer_resolution_is_always_valid(
        h in 1usize..64, w in 1usize..64, t in 0.0f32..127.0, depth in 0.0f64..1.0
    ) {
        let cfg = DrqConfig::new(RegionSize::new(4, 16), t);
        let layer = cfg.for_layer(h, w, depth);
        prop_assert!(layer.region.x <= h.max(1));
        prop_assert!(layer.region.y <= w.max(1));
        prop_assert!(layer.threshold >= 0.0);
        prop_assert!(layer.threshold <= t + 1e-6);
    }
}
