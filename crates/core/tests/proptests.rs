//! Property-style tests for the DRQ algorithm invariants, driven by the
//! in-tree seeded generator so the suite builds offline. Sweeps are
//! deterministic, so failures reproduce exactly.

use drq_core::{
    uniform_masks, DrqConfig, MaskMap, MixedPrecisionConv, RegionGrid, RegionSize,
    SensitivityPredictor,
};
use drq_nn::Conv2d;
use drq_tensor::{Shape4, Tensor, XorShiftRng};

/// Draws a value in `[lo, hi)`.
fn range(rng: &mut XorShiftRng, lo: usize, hi: usize) -> usize {
    lo + rng.next_below(hi - lo)
}

#[test]
fn every_pixel_belongs_to_exactly_one_region() {
    let mut rng = XorShiftRng::new(3001);
    for _ in 0..64 {
        let h = range(&mut rng, 1, 40);
        let w = range(&mut rng, 1, 40);
        let rx = range(&mut rng, 1, 10);
        let ry = range(&mut rng, 1, 10);
        let grid = RegionGrid::new(h, w, RegionSize::new(rx, ry));
        let mut counts = vec![0usize; grid.region_count()];
        for y in 0..h {
            for x in 0..w {
                counts[grid.region_index_of(y, x)] += 1;
            }
        }
        assert_eq!(counts.iter().sum::<usize>(), h * w);
        assert!(counts.iter().all(|&c| c > 0), "({h},{w},{rx},{ry})");
    }
}

#[test]
fn predictor_sensitivity_is_monotone_in_threshold() {
    let mut rng = XorShiftRng::new(3002);
    for _ in 0..32 {
        let seed = rng.next_below(300) as u64;
        let c = range(&mut rng, 1, 4);
        let h = range(&mut rng, 4, 20);
        let w = range(&mut rng, 4, 20);
        let mut xrng = XorShiftRng::new(seed + 1);
        let x = Tensor::from_fn(&[1, c, h, w], |_| xrng.next_f32());
        let mut last = f64::INFINITY;
        for t in [0.0f32, 5.0, 20.0, 60.0, 127.0] {
            let p = SensitivityPredictor::new(RegionSize::new(2, 2), t);
            let frac = p.sensitive_fraction(&x, 0);
            assert!(frac <= last + 1e-12, "not monotone at {t}");
            last = frac;
        }
    }
}

#[test]
fn predictor_is_scale_invariant() {
    // Max-abs INT8 calibration makes the predictor invariant to global
    // input scaling — the property that lets one threshold serve
    // differently scaled images.
    let mut rng = XorShiftRng::new(3003);
    for _ in 0..32 {
        let seed = rng.next_below(300) as u64;
        let scale = 0.01 + rng.next_f32() * 99.99;
        let mut xrng = XorShiftRng::new(seed + 2);
        let x = Tensor::from_fn(&[1, 2, 12, 12], |_| xrng.next_f32());
        let xs = x.map(|v| v * scale);
        let p = SensitivityPredictor::new(RegionSize::new(4, 4), 20.0);
        let a: Vec<_> = p.predict(&x).iter().map(|m| m.bits().to_vec()).collect();
        let b: Vec<_> = p.predict(&xs).iter().map(|m| m.bits().to_vec()).collect();
        assert_eq!(a, b, "scale {scale}");
    }
}

#[test]
fn mixed_conv_mac_count_matches_geometry() {
    let mut rng = XorShiftRng::new(3004);
    let mut cases = 0;
    while cases < 24 {
        let seed = rng.next_below(200) as u64;
        let in_c = range(&mut rng, 1, 4);
        let out_c = range(&mut rng, 1, 5);
        let hw = range(&mut rng, 4, 10);
        let k = range(&mut rng, 1, 4);
        if k > hw {
            continue;
        }
        cases += 1;
        let conv = Conv2d::new(in_c, out_c, k, 1, 0, seed);
        let mut xrng = XorShiftRng::new(seed + 3);
        let x = Tensor::from_fn(&[1, in_c, hw, hw], |_| xrng.next_f32());
        let p = SensitivityPredictor::new(RegionSize::new(2, 2), 40.0);
        let masks = vec![p.predict(&x)];
        let (_, counts) = MixedPrecisionConv::forward(&conv, &x, &masks);
        assert_eq!(counts.total(), conv.mac_count(Shape4::new(1, in_c, hw, hw)));
    }
}

#[test]
fn mixed_conv_error_ordering() {
    // For any random conv/input, quantization error is ordered:
    // all-INT8 <= dynamic-mixed <= all-INT4 (measured against FP32).
    let mut rng = XorShiftRng::new(3005);
    for _ in 0..16 {
        let seed = rng.next_below(100) as u64;
        let conv = Conv2d::new(2, 3, 3, 1, 1, seed + 11);
        let mut fp = conv.clone();
        let mut xrng = XorShiftRng::new(seed + 4);
        let x = Tensor::from_fn(&[1, 2, 8, 8], |_| {
            let v = xrng.next_normal();
            if v > 1.2 {
                v
            } else {
                (v * 0.05).max(0.0)
            }
        });
        let y_ref = fp.forward(&x, false);
        let err = |y: &Tensor<f32>| -> f32 {
            y.as_slice().iter().zip(y_ref.as_slice()).map(|(a, b)| (a - b).powi(2)).sum()
        };
        let shape = x.shape4().unwrap();
        let (y8, _) = MixedPrecisionConv::forward(&conv, &x, &uniform_masks(shape, true));
        let p = SensitivityPredictor::new(RegionSize::new(4, 4), 10.0);
        let (ym, _) = MixedPrecisionConv::forward(&conv, &x, &[p.predict(&x)]);
        let (y4, _) = MixedPrecisionConv::forward(&conv, &x, &uniform_masks(shape, false));
        assert!(err(&y8) <= err(&ym) + 1e-3);
        assert!(err(&ym) <= err(&y4) + 1e-3);
    }
}

#[test]
fn mask_fractions_are_consistent() {
    let mut rng = XorShiftRng::new(3006);
    for _ in 0..64 {
        let h = range(&mut rng, 2, 30);
        let w = range(&mut rng, 2, 30);
        let rx = range(&mut rng, 1, 6);
        let ry = range(&mut rng, 1, 6);
        let seed = rng.next_below(200) as u64;
        let grid = RegionGrid::new(h, w, RegionSize::new(rx, ry));
        let mut brng = XorShiftRng::new(seed + 5);
        let bits: Vec<bool> = (0..grid.region_count()).map(|_| brng.next_f64() < 0.3).collect();
        let m = MaskMap::from_bits(grid, bits);
        assert!(m.sensitive_fraction() >= 0.0 && m.sensitive_fraction() <= 1.0);
        assert!(m.sensitive_pixel_fraction() >= 0.0 && m.sensitive_pixel_fraction() <= 1.0);
        // Pixel census agrees with pixel_sensitive lookups.
        let mut sens_px = 0usize;
        for y in 0..h {
            for x in 0..w {
                if m.pixel_sensitive(y, x) {
                    sens_px += 1;
                }
            }
        }
        assert!((m.sensitive_pixel_fraction() - sens_px as f64 / (h * w) as f64).abs() < 1e-12);
    }
}

#[test]
fn config_layer_resolution_is_always_valid() {
    let mut rng = XorShiftRng::new(3007);
    for _ in 0..64 {
        let h = range(&mut rng, 1, 64);
        let w = range(&mut rng, 1, 64);
        let t = rng.next_f32() * 127.0;
        let depth = rng.next_f64();
        let cfg = DrqConfig::new(RegionSize::new(4, 16), t);
        let layer = cfg.for_layer(h, w, depth);
        assert!(layer.region.x <= h.max(1));
        assert!(layer.region.y <= w.max(1));
        assert!(layer.threshold >= 0.0);
        assert!(layer.threshold <= t + 1e-6);
    }
}
