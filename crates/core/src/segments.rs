//! Segment maps and sensitive-region visualization (Fig. 3 of the paper).
//!
//! The paper visualizes LeNet-5 feature maps with values colour-coded into
//! three magnitude segments, showing that large (sensitive) values aggregate
//! spatially. These helpers compute the per-pixel segment map of a feature
//! map channel and render it as ASCII art or a PGM image for inspection.

use drq_quant::SegmentSplit;
use drq_tensor::Tensor;

/// Per-pixel segment indices of one channel of an NCHW tensor
/// (`0` = largest values = most sensitive).
///
/// # Panics
///
/// Panics if `x` is not rank 4 or indices are out of range.
///
/// # Examples
///
/// ```
/// use drq_core::segments::segment_map;
/// use drq_quant::SegmentSplit;
/// use drq_tensor::Tensor;
///
/// let x = Tensor::from_fn(&[1, 1, 2, 2], |i| i as f32);
/// let split = SegmentSplit::from_values(x.as_slice(), &[0.5]);
/// let map = segment_map(&x, 0, 0, &split);
/// assert_eq!(map[0][0], 1); // smallest value -> lowest segment
/// assert_eq!(map[1][1], 0); // largest value -> segment 0
/// ```
pub fn segment_map(
    x: &Tensor<f32>,
    image: usize,
    channel: usize,
    split: &SegmentSplit,
) -> Vec<Vec<usize>> {
    let s = x.shape4().expect("segment_map input must be rank 4");
    assert!(image < s.n && channel < s.c, "index out of range");
    let xs = x.as_slice();
    (0..s.h)
        .map(|h| {
            (0..s.w)
                .map(|w| split.segment_of(xs[s.offset(image, channel, h, w)]))
                .collect()
        })
        .collect()
}

/// Renders a segment map as ASCII art: `#` for segment 0 (sensitive), `+`
/// for segment 1, `.` for segment 2, then digits for deeper segments.
///
/// # Examples
///
/// ```
/// use drq_core::segments::render_ascii;
///
/// let art = render_ascii(&[vec![0, 1], vec![2, 0]]);
/// assert_eq!(art, "#+\n.#\n");
/// ```
pub fn render_ascii(map: &[Vec<usize>]) -> String {
    let glyph = |seg: usize| match seg {
        0 => '#',
        1 => '+',
        2 => '.',
        other => char::from_digit((other % 10) as u32, 10).unwrap_or('?'),
    };
    let mut out = String::new();
    for row in map {
        for &seg in row {
            out.push(glyph(seg));
        }
        out.push('\n');
    }
    out
}

/// Renders a segment map as a binary-ish PGM (P2) image string, segment 0
/// brightest — convenient for dumping Fig. 3-style visuals to files.
pub fn render_pgm(map: &[Vec<usize>], segments: usize) -> String {
    let h = map.len();
    let w = map.first().map(Vec::len).unwrap_or(0);
    let mut out = format!("P2\n{w} {h}\n255\n");
    for row in map {
        let line: Vec<String> = row
            .iter()
            .map(|&seg| {
                let level = if segments <= 1 {
                    255
                } else {
                    255 - (seg.min(segments - 1) * 255 / (segments - 1))
                };
                level.to_string()
            })
            .collect();
        out.push_str(&line.join(" "));
        out.push('\n');
    }
    out
}

/// Measures spatial aggregation of segment-0 pixels: the fraction of
/// segment-0 pixels having at least one segment-0 4-neighbour. Random
/// scatter scores low; blobs score near 1. This quantifies the paper's
/// claim that sensitive values "tend to aggregate in space".
#[allow(clippy::needless_range_loop)] // neighbour indexing reads clearer with y/x
pub fn aggregation_score(map: &[Vec<usize>]) -> f64 {
    let h = map.len();
    if h == 0 {
        return 0.0;
    }
    let w = map[0].len();
    let mut total = 0usize;
    let mut adjacent = 0usize;
    for y in 0..h {
        for x in 0..w {
            if map[y][x] != 0 {
                continue;
            }
            total += 1;
            let neighbours = [
                (y.wrapping_sub(1), x),
                (y + 1, x),
                (y, x.wrapping_sub(1)),
                (y, x + 1),
            ];
            if neighbours
                .iter()
                .any(|&(ny, nx)| ny < h && nx < w && map[ny][nx] == 0)
            {
                adjacent += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        adjacent as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drq_tensor::XorShiftRng;

    #[test]
    fn blob_has_high_aggregation_scatter_low() {
        let mut rng = XorShiftRng::new(1);
        // Blob map: 6x6 block of segment 0 in a 20x20 map.
        let mut blob = vec![vec![2usize; 20]; 20];
        for row in blob.iter_mut().take(11).skip(5) {
            for cell in row.iter_mut().take(11).skip(5) {
                *cell = 0;
            }
        }
        // Scatter map: same count of segment-0 pixels placed randomly.
        let mut scatter = vec![vec![2usize; 20]; 20];
        let mut placed = 0;
        while placed < 36 {
            let y = rng.next_below(20);
            let x = rng.next_below(20);
            if scatter[y][x] != 0 {
                scatter[y][x] = 0;
                placed += 1;
            }
        }
        assert!(aggregation_score(&blob) > 0.99);
        assert!(aggregation_score(&blob) > aggregation_score(&scatter));
    }

    #[test]
    fn ascii_render_shape() {
        let map = vec![vec![0, 1, 2], vec![2, 1, 0]];
        let art = render_ascii(&map);
        assert_eq!(art.lines().count(), 2);
        assert_eq!(art, "#+.\n.+#\n");
    }

    #[test]
    fn pgm_has_valid_header_and_levels() {
        let map = vec![vec![0, 1], vec![2, 1]];
        let pgm = render_pgm(&map, 3);
        let mut lines = pgm.lines();
        assert_eq!(lines.next(), Some("P2"));
        assert_eq!(lines.next(), Some("2 2"));
        assert_eq!(lines.next(), Some("255"));
        assert_eq!(lines.next(), Some("255 128"));
        assert_eq!(lines.next(), Some("0 128"));
    }

    #[test]
    fn segment_map_matches_split() {
        let x = Tensor::from_fn(&[1, 2, 3, 3], |i| i as f32);
        let split = drq_quant::SegmentSplit::from_values(x.as_slice(), &[0.8, 0.2]);
        let map = segment_map(&x, 0, 1, &split);
        assert_eq!(map.len(), 3);
        // Channel 1 holds the largest values (9..18): its bottom row is all
        // segment 0.
        assert!(map[2].iter().all(|&s| s == 0));
    }

    #[test]
    fn empty_map_scores_zero() {
        assert_eq!(aggregation_score(&[]), 0.0);
        assert_eq!(aggregation_score(&[vec![1, 1], vec![2, 2]]), 0.0);
    }
}
