//! Running a whole network under dynamic region-based quantization.

use crate::{ConvOpCounts, DrqConfig, LayerThresholds, MixedPrecisionConv, SensitivityPredictor};
use drq_nn::Network;
use drq_tensor::Tensor;

/// Per-convolution-layer statistics of one DRQ inference pass.
#[derive(Debug, Clone, PartialEq)]
pub struct DrqLayerStats {
    /// Convolution index in execution order.
    pub conv_index: usize,
    /// Input feature-map shape `[n, c, h, w]`.
    pub input_shape: Vec<usize>,
    /// INT4/INT8 MAC split.
    pub counts: ConvOpCounts,
    /// Mean fraction of regions flagged sensitive across channels/images.
    pub sensitive_fraction: f64,
    /// Effective threshold used at this layer (after deep-layer scaling).
    pub threshold: f32,
    /// Effective region used (after clamping), as `(x, y)`.
    pub region: (usize, usize),
    /// Mask-buffer footprint in bits for one image.
    pub mask_storage_bits: usize,
}

/// Aggregated statistics of one DRQ inference pass.
///
/// # Examples
///
/// ```
/// use drq_core::{ConvOpCounts, DrqRunStats, DrqLayerStats};
///
/// let stats = DrqRunStats {
///     layers: vec![DrqLayerStats {
///         conv_index: 0,
///         input_shape: vec![1, 1, 8, 8],
///         counts: ConvOpCounts { int4_macs: 90, int8_macs: 10 },
///         sensitive_fraction: 0.1,
///         threshold: 20.0,
///         region: (4, 4),
///         mask_storage_bits: 4,
///     }],
/// };
/// assert!((stats.int4_fraction() - 0.9).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DrqRunStats {
    /// Per-layer breakdown in execution order.
    pub layers: Vec<DrqLayerStats>,
}

impl DrqRunStats {
    /// Total MAC counts across all convolutions.
    pub fn totals(&self) -> ConvOpCounts {
        let mut acc = ConvOpCounts::default();
        for l in &self.layers {
            acc.merge(l.counts);
        }
        acc
    }

    /// Overall 4-bit computation percentage (the paper's Fig. 11 metric).
    pub fn int4_fraction(&self) -> f64 {
        self.totals().int4_fraction()
    }

    /// Mean sensitive-region fraction across layers (unweighted).
    pub fn mean_sensitive_fraction(&self) -> f64 {
        if self.layers.is_empty() {
            return 0.0;
        }
        self.layers.iter().map(|l| l.sensitive_fraction).sum::<f64>() / self.layers.len() as f64
    }

    /// Merges another run's statistics layer-by-layer (for dataset-level
    /// aggregation).
    ///
    /// # Panics
    ///
    /// Panics if layer counts differ.
    pub fn merge(&mut self, other: &DrqRunStats) {
        if self.layers.is_empty() {
            self.layers = other.layers.clone();
            return;
        }
        assert_eq!(self.layers.len(), other.layers.len(), "layer count mismatch");
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            a.counts.merge(b.counts);
            a.sensitive_fraction = (a.sensitive_fraction + b.sensitive_fraction) / 2.0;
        }
    }
}

/// A network wrapper that executes every convolution under dynamic
/// region-based quantization.
///
/// For each convolution, the wrapper (1) resolves the layer's effective
/// region/threshold from the [`DrqConfig`] (deep-layer rules included),
/// (2) runs the [`SensitivityPredictor`] on the layer's input feature map —
/// the dynamic, per-image step no static scheme has — and (3) executes the
/// [`MixedPrecisionConv`] under the resulting masks.
///
/// # Examples
///
/// ```
/// use drq_core::{DrqConfig, DrqNetwork, RegionSize};
/// use drq_nn::{Conv2d, Layer, Network, ReLU};
/// use drq_tensor::Tensor;
///
/// let net = Network::new(vec![
///     Layer::from(Conv2d::new(1, 2, 3, 1, 1, 1)),
///     Layer::from(ReLU::new()),
/// ]);
/// let mut drq = DrqNetwork::new(net, DrqConfig::new(RegionSize::new(4, 4), 20.0));
/// let (y, stats) = drq.forward(&Tensor::zeros(&[1, 1, 8, 8]));
/// assert_eq!(y.shape(), &[1, 2, 8, 8]);
/// assert_eq!(stats.layers.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DrqNetwork {
    network: Network,
    config: DrqConfig,
    schedule: Option<LayerThresholds>,
}

impl DrqNetwork {
    /// Wraps a trained network with a DRQ configuration.
    pub fn new(network: Network, config: DrqConfig) -> Self {
        Self { network, config, schedule: None }
    }

    /// Wraps a trained network with a calibrated per-layer threshold
    /// schedule (from [`crate::calibrate_thresholds`]). Regions still follow
    /// the schedule's region with the usual per-map clamping; thresholds
    /// come from the schedule instead of the uniform base value.
    pub fn with_schedule(network: Network, schedule: LayerThresholds) -> Self {
        let config = schedule.to_uniform_config();
        Self { network, config, schedule: Some(schedule) }
    }

    /// The per-layer schedule, if one is installed.
    pub fn schedule(&self) -> Option<&LayerThresholds> {
        self.schedule.as_ref()
    }

    /// The wrapped network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable access to the wrapped network (e.g. for fine-tuning).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// The DRQ configuration.
    pub fn config(&self) -> DrqConfig {
        self.config
    }

    /// Replaces the configuration (used by the DSE sweeps).
    pub fn set_config(&mut self, config: DrqConfig) {
        self.config = config;
    }

    /// Runs DRQ inference, returning the output and per-layer statistics.
    pub fn forward(&mut self, x: &Tensor<f32>) -> (Tensor<f32>, DrqRunStats) {
        let config = self.config;
        let total_convs = self.network.conv_count().max(1);
        let mut stats = DrqRunStats::default();
        let schedule = self.schedule.clone();
        let out = self.network.forward_conv_override(x, &mut |idx, conv, input| {
            let s = input.shape4().expect("conv input rank");
            let depth = idx as f64 / total_convs as f64;
            let mut layer_cfg = config.for_layer(s.h, s.w, depth);
            if let Some(sched) = &schedule {
                // Calibrated per-layer thresholds replace both the uniform
                // base and the deep-layer divisor (calibration already saw
                // the deep layers' statistics directly).
                layer_cfg.threshold = sched.threshold_for(idx);
            }
            let predictor = SensitivityPredictor::new(layer_cfg.region, layer_cfg.threshold);
            let masks: Vec<_> = (0..s.n).map(|n| predictor.predict_image(input, n)).collect();
            let sensitive_fraction = {
                let mut acc = 0.0;
                let mut cnt = 0usize;
                for per_image in &masks {
                    for m in per_image {
                        acc += m.sensitive_fraction();
                        cnt += 1;
                    }
                }
                if cnt == 0 { 0.0 } else { acc / cnt as f64 }
            };
            let mask_storage_bits = masks
                .first()
                .map(|ms| ms.iter().map(|m| m.storage_bits()).sum())
                .unwrap_or(0);
            let (y, counts) = MixedPrecisionConv::forward(conv, input, &masks);
            stats.layers.push(DrqLayerStats {
                conv_index: idx,
                input_shape: input.shape().to_vec(),
                counts,
                sensitive_fraction,
                threshold: layer_cfg.threshold,
                region: (layer_cfg.region.x, layer_cfg.region.y),
                mask_storage_bits,
            });
            y
        });
        (out, stats)
    }

    /// Classifies a batch and reports top-1 accuracy plus merged statistics.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the batch size.
    pub fn evaluate(&mut self, x: &Tensor<f32>, targets: &[usize]) -> (f64, DrqRunStats) {
        let (logits, stats) = self.forward(x);
        (drq_nn::accuracy(&logits, targets), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RegionSize;
    use drq_nn::{BatchNorm2d, Conv2d, Flatten, Layer, Linear, Pool2d, PoolKind, ReLU};
    use drq_tensor::XorShiftRng;

    fn small_net(seed: u64) -> Network {
        Network::new(vec![
            Layer::from(Conv2d::new(1, 4, 3, 1, 1, seed)),
            Layer::from(BatchNorm2d::new(4)),
            Layer::from(ReLU::new()),
            Layer::from(Conv2d::new(4, 4, 3, 1, 1, seed + 1)),
            Layer::from(ReLU::new()),
            Layer::from(Pool2d::new(PoolKind::Avg, 2, 2)),
            Layer::from(Flatten::new()),
            Layer::from(Linear::new(4 * 8 * 8, 4, seed + 2)),
        ])
    }

    fn sparse_input(seed: u64) -> Tensor<f32> {
        let mut rng = XorShiftRng::new(seed);
        Tensor::from_fn(&[1, 1, 16, 16], |i| {
            let (h, w) = ((i % 256) / 16, i % 16);
            // Bright blob top-left, tiny noise elsewhere.
            if h < 5 && w < 5 {
                1.0 + rng.next_f32()
            } else {
                0.02 * rng.next_f32()
            }
        })
    }

    #[test]
    fn stats_cover_every_conv() {
        let mut drq = DrqNetwork::new(small_net(1), DrqConfig::new(RegionSize::new(4, 4), 20.0));
        let (_, stats) = drq.forward(&sparse_input(2));
        assert_eq!(stats.layers.len(), 2);
        assert_eq!(stats.layers[0].conv_index, 0);
        assert_eq!(stats.layers[1].conv_index, 1);
        assert!(stats.totals().total() > 0);
    }

    #[test]
    fn mostly_int4_on_sparse_inputs() {
        // The defining behaviour: sparse feature maps run mostly INT4 with a
        // small INT8 share where the blob is.
        let mut drq = DrqNetwork::new(small_net(3), DrqConfig::new(RegionSize::new(4, 4), 20.0));
        let (_, stats) = drq.forward(&sparse_input(4));
        let frac = stats.int4_fraction();
        assert!(frac > 0.5, "int4 fraction {frac}");
        assert!(stats.totals().int8_macs > 0, "no sensitive regions found");
    }

    #[test]
    fn threshold_controls_bit_mix() {
        let x = sparse_input(5);
        let frac_at = |t: f32| {
            let mut drq =
                DrqNetwork::new(small_net(6), DrqConfig::new(RegionSize::new(4, 4), t));
            let (_, stats) = drq.forward(&x);
            stats.int4_fraction()
        };
        // Higher threshold ⇒ fewer sensitive regions ⇒ more INT4.
        assert!(frac_at(100.0) >= frac_at(5.0));
        assert!(frac_at(0.0) <= frac_at(5.0));
    }

    #[test]
    fn output_tracks_float_reference() {
        let mut net = small_net(7);
        let x = sparse_input(8);
        let y_ref = net.forward(&x, false);
        let mut drq = DrqNetwork::new(net, DrqConfig::new(RegionSize::new(4, 4), 10.0));
        let (y, _) = drq.forward(&x);
        // Cosine similarity of logits should be high.
        let dot: f32 = y.as_slice().iter().zip(y_ref.as_slice()).map(|(a, b)| a * b).sum();
        let na: f32 = y.as_slice().iter().map(|v| v * v).sum::<f32>().sqrt();
        let nb: f32 = y_ref.as_slice().iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!(dot / (na * nb).max(1e-9) > 0.85, "cos {}", dot / (na * nb));
    }

    #[test]
    fn evaluate_reports_accuracy() {
        let mut drq = DrqNetwork::new(small_net(9), DrqConfig::new(RegionSize::new(4, 4), 20.0));
        let x = sparse_input(10);
        let (acc, stats) = drq.evaluate(&x, &[0]);
        assert!((0.0..=1.0).contains(&acc));
        assert_eq!(stats.layers.len(), 2);
    }

    #[test]
    fn calibrated_schedule_drives_per_layer_thresholds() {
        use crate::calibrate_thresholds;
        let mut net = small_net(21);
        let x = sparse_input(22);
        let schedule = calibrate_thresholds(&mut net, &x, RegionSize::new(4, 4), 0.15);
        assert_eq!(schedule.thresholds().len(), 2);
        let mut drq = DrqNetwork::with_schedule(net, schedule.clone());
        assert_eq!(drq.schedule(), Some(&schedule));
        let (_, stats) = drq.forward(&x);
        // Each layer's reported threshold must be the calibrated one.
        for (i, layer) in stats.layers.iter().enumerate() {
            assert_eq!(layer.threshold, schedule.threshold_for(i), "layer {i}");
        }
        // And the calibration target carries through: mean sensitive
        // fraction at or under the 15% target (within quantizer wiggle).
        assert!(stats.mean_sensitive_fraction() <= 0.20, "{}", stats.mean_sensitive_fraction());
    }

    #[test]
    fn merge_accumulates_mac_counts() {
        let mut drq = DrqNetwork::new(small_net(11), DrqConfig::new(RegionSize::new(4, 4), 20.0));
        let (_, s1) = drq.forward(&sparse_input(12));
        let (_, s2) = drq.forward(&sparse_input(13));
        let mut merged = s1.clone();
        merged.merge(&s2);
        assert_eq!(
            merged.totals().total(),
            s1.totals().total() + s2.totals().total()
        );
    }
}
