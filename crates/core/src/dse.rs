//! Design-space exploration (Section III-D).
//!
//! The paper finds each network's threshold and region size by trial and
//! error: start from empirically large values, evaluate accuracy with the
//! mixed-precision forward pass, and halve the region size or threshold
//! until accuracy meets the requirement. "Although trial-and-error, the
//! above process can always find the satisfactory values within a few
//! iterations."
//!
//! Section III-D also retrains during the exploration ("we retrain the
//! model for guaranteed accuracy, during which we will apply the
//! mix-precision convolution in the forward propagation, but full-precision
//! backward propagation"). The evaluator closure is where that composes:
//! run a few [`crate::finetune_step`]s at the candidate configuration
//! before measuring accuracy —
//!
//! ```no_run
//! use drq_core::dse::explore;
//! use drq_core::{finetune_step, DrqConfig, RegionSize};
//! use drq_nn::{Network, Sgd};
//! use drq_tensor::Tensor;
//!
//! # fn accuracy_of(_: &mut Network, _: DrqConfig) -> (f64, f64) { (1.0, 0.9) }
//! # fn batch() -> (Tensor<f32>, Vec<usize>) { (Tensor::zeros(&[1,1,8,8]), vec![0]) }
//! # let mut net = Network::new(vec![]);
//! let mut opt = Sgd::new(0.01).momentum(0.9);
//! let outcome = explore(RegionSize::new(32, 32), 64.0, 0.99, 10, &mut |region, t| {
//!     let cfg = DrqConfig::new(region, t);
//!     // Retrain briefly at this operating point (STE fine-tuning)...
//!     for _ in 0..4 {
//!         let (x, y) = batch();
//!         let _ = finetune_step(&mut net, &cfg, &x, &y, &mut opt);
//!     }
//!     // ...then measure mixed-precision accuracy.
//!     accuracy_of(&mut net, cfg)
//! });
//! # let _ = outcome;
//! ```

use crate::{DrqError, RegionSize};
use drq_tensor::{parallel, XorShiftRng};
use drq_telemetry::{counter_add, observe, Json, Report};
use std::time::Duration;

/// One evaluated point of a threshold or region sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The threshold evaluated.
    pub threshold: f32,
    /// The region evaluated.
    pub region: RegionSize,
    /// Measured top-1 accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Measured 4-bit computation fraction in `[0, 1]`.
    pub int4_fraction: f64,
}

impl SweepPoint {
    /// Serializes the point for the unified metrics schema.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("threshold", Json::from(self.threshold)),
            ("region_x", Json::from(self.region.x)),
            ("region_y", Json::from(self.region.y)),
            ("accuracy", Json::from(self.accuracy)),
            ("int4_fraction", Json::from(self.int4_fraction)),
        ])
    }
}

/// Records one evaluated candidate in the global metrics registry.
fn record_candidate(region: RegionSize, threshold: f32, accuracy: f64, int4_fraction: f64) {
    counter_add!("dse/candidates", 1);
    observe!("dse/accuracy", accuracy);
    observe!("dse/int4_fraction", int4_fraction);
    observe!("dse/threshold", f64::from(threshold));
    observe!("dse/region_area", region.area() as f64);
}

/// Serializes a sweep (Fig. 14/15 data) into the unified metrics schema
/// (kind `"dse_sweep"`). `axis` names the swept knob, e.g. `"threshold"`
/// or `"region"`.
pub fn sweep_report(axis: &str, points: &[SweepPoint]) -> Report {
    let mut r = Report::new("dse_sweep");
    r.push("axis", axis)
        .push("candidates", points.len())
        .push("points", Json::Array(points.iter().map(SweepPoint::to_json).collect()));
    r
}

/// Outcome of the iterative exploration loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DseOutcome {
    /// Chosen region size.
    pub region: RegionSize,
    /// Chosen threshold.
    pub threshold: f32,
    /// Accuracy at the chosen point.
    pub accuracy: f64,
    /// 4-bit fraction at the chosen point.
    pub int4_fraction: f64,
    /// Number of evaluate-and-halve iterations performed.
    pub iterations: usize,
    /// Whether the accuracy target was met (false = budget exhausted; the
    /// best point seen is still returned).
    pub converged: bool,
}

impl DseOutcome {
    /// Serializes the exploration outcome into the unified metrics schema
    /// (kind `"dse_explore"`).
    pub fn to_report(&self) -> Report {
        let mut r = Report::new("dse_explore");
        r.push("region_x", self.region.x)
            .push("region_y", self.region.y)
            .push("threshold", self.threshold)
            .push("accuracy", self.accuracy)
            .push("int4_fraction", self.int4_fraction)
            .push("iterations", self.iterations)
            .push("converged", self.converged);
        r
    }
}

/// A measurement the exploration loop asks the caller to perform: run the
/// model at `(region, threshold)` and report `(accuracy, int4_fraction)`.
pub type Evaluator<'a> = dyn FnMut(RegionSize, f32) -> (f64, f64) + 'a;

/// Runs the Section III-D trial-and-error loop.
///
/// Starting from `(initial_region, initial_threshold)` — "empirically
/// starting from some large values" — each iteration evaluates the current
/// point; if accuracy reaches `target_accuracy` the point is accepted,
/// otherwise the threshold and the region size are alternately halved
/// (threshold first: it is the cheaper knob, affecting no hardware buffer
/// sizing).
///
/// # Panics
///
/// Panics if `max_iterations == 0`.
///
/// # Examples
///
/// ```
/// use drq_core::dse::explore;
/// use drq_core::RegionSize;
///
/// // A synthetic model whose accuracy improves as the threshold shrinks.
/// let outcome = explore(
///     RegionSize::new(32, 32),
///     1.0,
///     0.9,
///     16,
///     &mut |_region, threshold| {
///         let acc = 1.0 - threshold as f64 * 0.5;
///         (acc, 0.9)
///     },
/// );
/// assert!(outcome.converged);
/// assert!(outcome.accuracy >= 0.9);
/// ```
pub fn explore(
    initial_region: RegionSize,
    initial_threshold: f32,
    target_accuracy: f64,
    max_iterations: usize,
    eval: &mut Evaluator<'_>,
) -> DseOutcome {
    assert!(max_iterations > 0, "need at least one iteration");
    let mut region = initial_region;
    let mut threshold = initial_threshold;
    let mut best: Option<DseOutcome> = None;
    let mut halve_threshold_next = true;

    for it in 1..=max_iterations {
        let (accuracy, int4_fraction) = eval(region, threshold);
        record_candidate(region, threshold, accuracy, int4_fraction);
        let point = DseOutcome {
            region,
            threshold,
            accuracy,
            int4_fraction,
            iterations: it,
            converged: accuracy >= target_accuracy,
        };
        if best.map(|b| accuracy > b.accuracy).unwrap_or(true) {
            best = Some(point);
        }
        if accuracy >= target_accuracy {
            return point;
        }
        // Halve the threshold or the region size, alternately.
        if halve_threshold_next {
            threshold /= 2.0;
        } else {
            region = region.halved();
        }
        halve_threshold_next = !halve_threshold_next;
    }
    let mut out = best.expect("at least one iteration ran");
    out.iterations = max_iterations;
    out.converged = false;
    out
}

/// Evaluates every threshold in `thresholds` at a fixed region, producing
/// the data behind Fig. 14.
pub fn sweep_thresholds(
    region: RegionSize,
    thresholds: &[f32],
    eval: &mut Evaluator<'_>,
) -> Vec<SweepPoint> {
    thresholds
        .iter()
        .map(|&t| {
            let (accuracy, int4_fraction) = eval(region, t);
            record_candidate(region, t, accuracy, int4_fraction);
            SweepPoint { threshold: t, region, accuracy, int4_fraction }
        })
        .collect()
}

/// Evaluates every region in `regions` at a fixed threshold, producing the
/// data behind Fig. 15.
pub fn sweep_regions(
    threshold: f32,
    regions: &[RegionSize],
    eval: &mut Evaluator<'_>,
) -> Vec<SweepPoint> {
    regions
        .iter()
        .map(|&r| {
            let (accuracy, int4_fraction) = eval(r, threshold);
            record_candidate(r, threshold, accuracy, int4_fraction);
            SweepPoint { threshold, region: r, accuracy, int4_fraction }
        })
        .collect()
}

/// Like [`sweep_thresholds`], but evaluates candidates concurrently.
///
/// Sweep points are independent of each other, so when the evaluator is
/// side-effect free (`Fn + Sync` — e.g. it clones the network per
/// candidate) the sweep shards across threads. Results come back in input
/// order, identical to the sequential sweep.
pub fn sweep_thresholds_parallel<F>(
    region: RegionSize,
    thresholds: &[f32],
    eval: F,
) -> Vec<SweepPoint>
where
    F: Fn(RegionSize, f32) -> (f64, f64) + Sync,
{
    parallel::par_map(thresholds.len(), |i| {
        let t = thresholds[i];
        let (accuracy, int4_fraction) = eval(region, t);
        record_candidate(region, t, accuracy, int4_fraction);
        SweepPoint { threshold: t, region, accuracy, int4_fraction }
    })
}

/// Like [`sweep_regions`], but evaluates candidates concurrently (see
/// [`sweep_thresholds_parallel`] for the evaluator contract).
pub fn sweep_regions_parallel<F>(
    threshold: f32,
    regions: &[RegionSize],
    eval: F,
) -> Vec<SweepPoint>
where
    F: Fn(RegionSize, f32) -> (f64, f64) + Sync,
{
    parallel::par_map(regions.len(), |i| {
        let r = regions[i];
        let (accuracy, int4_fraction) = eval(r, threshold);
        record_candidate(r, threshold, accuracy, int4_fraction);
        SweepPoint { threshold, region: r, accuracy, int4_fraction }
    })
}

/// Bounded-retry policy for long sweep shards.
///
/// Long design-space sweeps can shard onto flaky substrates (a borrowed
/// GPU box, a preemptible cloud node); a transient shard failure should not
/// discard hours of finished candidates. The policy bounds attempts and
/// sleeps an exponentially growing backoff between them.
///
/// # Examples
///
/// ```
/// use drq_core::dse::{retry_with_backoff, RetryPolicy};
///
/// let mut fails = 2;
/// let v = retry_with_backoff(RetryPolicy::fast_test(), "flaky shard", |_attempt| {
///     if fails > 0 {
///         fails -= 1;
///         Err("substrate hiccup")
///     } else {
///         Ok(42)
///     }
/// })
/// .unwrap();
/// assert_eq!(v, 42);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of attempts (>= 1); the first run counts as one.
    pub max_attempts: u32,
    /// Sleep before the first retry, in milliseconds.
    pub initial_backoff_ms: u64,
    /// Multiplier applied to the backoff after each failed attempt.
    pub backoff_factor: u32,
    /// Upper bound on any single sleep, in milliseconds.
    pub max_backoff_ms: u64,
    /// Seed for deterministic backoff jitter; `None` keeps the fixed
    /// exponential schedule.
    ///
    /// Fixed exponential steps synchronize retrying shards: every shard
    /// that failed at the same moment retries at the same moment, hammering
    /// the substrate in lockstep. Equal-jitter spreads each delay over
    /// `[base/2, base]` from a seeded [`XorShiftRng`], so the schedule is
    /// decorrelated *and* reproducible run-to-run.
    pub jitter_seed: Option<u64>,
}

impl RetryPolicy {
    /// Three attempts, 100 ms initial backoff doubling to at most 2 s,
    /// with seeded jitter.
    pub fn default_sweep() -> Self {
        Self {
            max_attempts: 3,
            initial_backoff_ms: 100,
            backoff_factor: 2,
            max_backoff_ms: 2_000,
            jitter_seed: Some(0x5EED_BACC_0FF5),
        }
    }

    /// Three attempts with zero sleep — for tests and doc examples.
    pub fn fast_test() -> Self {
        Self {
            max_attempts: 3,
            initial_backoff_ms: 0,
            backoff_factor: 2,
            max_backoff_ms: 0,
            jitter_seed: None,
        }
    }

    /// Returns a copy with the given jitter seed (builder style).
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = Some(seed);
        self
    }

    /// The delay slept after failed attempt `attempt` (1-based), in
    /// milliseconds.
    ///
    /// Without a jitter seed this is the fixed exponential schedule
    /// `initial * factor^(attempt-1)` capped at `max_backoff_ms`. With a
    /// seed, equal-jitter maps the same base delay into `[base/2, base]`
    /// using a draw keyed on `(seed, attempt)` — deterministic for a given
    /// policy, decorrelated across seeds.
    pub fn backoff_delay_ms(&self, attempt: u32) -> u64 {
        let mut base = self.initial_backoff_ms;
        for _ in 1..attempt.max(1) {
            base = base
                .saturating_mul(u64::from(self.backoff_factor))
                .min(self.max_backoff_ms);
        }
        base = base.min(self.max_backoff_ms);
        match self.jitter_seed {
            Some(seed) if base > 1 => {
                // Mix the attempt number into the seed so consecutive
                // delays are independent draws, not a shared stream.
                let mixed = seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut rng = XorShiftRng::new(mixed);
                let half = base / 2;
                half + rng.next_u64() % (base - half + 1)
            }
            _ => base,
        }
    }
}

/// Runs `op` under a [`RetryPolicy`], passing the 1-based attempt number.
///
/// Each failure below the attempt cap records a `dse/retries` telemetry
/// counter and sleeps the policy's current backoff; when the cap is hit the
/// last error is wrapped in [`DrqError::RetriesExhausted`] (and
/// `dse/retries_exhausted` is recorded).
pub fn retry_with_backoff<T, E: std::fmt::Display>(
    policy: RetryPolicy,
    context: &'static str,
    mut op: impl FnMut(u32) -> Result<T, E>,
) -> Result<T, DrqError> {
    let attempts = policy.max_attempts.max(1);
    for attempt in 1..=attempts {
        match op(attempt) {
            Ok(v) => return Ok(v),
            Err(e) if attempt == attempts => {
                counter_add!("dse/retries_exhausted", 1);
                return Err(DrqError::RetriesExhausted {
                    context,
                    attempts,
                    last_error: e.to_string(),
                });
            }
            Err(_) => {
                counter_add!("dse/retries", 1);
                let delay_ms = policy.backoff_delay_ms(attempt);
                if delay_ms > 0 {
                    std::thread::sleep(Duration::from_millis(delay_ms));
                }
            }
        }
    }
    unreachable!("loop returns on success or final failure")
}

/// Like [`sweep_thresholds`], with each candidate evaluated under a
/// [`RetryPolicy`]: a fallible evaluator gets `policy.max_attempts` chances
/// per threshold before the whole sweep aborts with
/// [`DrqError::RetriesExhausted`]. Successful points are identical to the
/// plain sweep's.
pub fn sweep_thresholds_retrying<E: std::fmt::Display>(
    region: RegionSize,
    thresholds: &[f32],
    policy: RetryPolicy,
    mut eval: impl FnMut(RegionSize, f32) -> Result<(f64, f64), E>,
) -> Result<Vec<SweepPoint>, DrqError> {
    thresholds
        .iter()
        .map(|&t| {
            // Decorrelate shards: each threshold retries on its own jitter
            // stream so simultaneous failures do not re-fire in lockstep.
            let shard_policy = match policy.jitter_seed {
                Some(seed) => policy.with_jitter_seed(seed ^ u64::from(t.to_bits())),
                None => policy,
            };
            let (accuracy, int4_fraction) =
                retry_with_backoff(shard_policy, "dse threshold sweep", |_| eval(region, t))?;
            record_candidate(region, t, accuracy, int4_fraction);
            Ok(SweepPoint { threshold: t, region, accuracy, int4_fraction })
        })
        .collect()
}

/// Picks the sweep point maximizing `int4_fraction` subject to an accuracy
/// floor — the paper's "optimal point" selection in Fig. 14.
pub fn best_point(points: &[SweepPoint], accuracy_floor: f64) -> Option<SweepPoint> {
    points
        .iter()
        .filter(|p| p.accuracy >= accuracy_floor)
        .max_by(|a, b| {
            a.int4_fraction
                .partial_cmp(&b.int4_fraction)
                .expect("NaN int4 fraction")
        })
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic accuracy model: accuracy falls with threshold and with
    /// region area; int4 fraction rises with threshold.
    fn model(region: RegionSize, threshold: f32) -> (f64, f64) {
        let acc = (1.0 - threshold as f64 * 0.02 - region.area() as f64 * 1e-4).max(0.0);
        let int4 = (0.5 + threshold as f64 * 0.02).min(1.0);
        (acc, int4)
    }

    #[test]
    fn explore_converges_within_few_iterations() {
        let out = explore(RegionSize::new(32, 32), 16.0, 0.85, 20, &mut model);
        assert!(out.converged);
        assert!(out.iterations <= 10, "took {} iterations", out.iterations);
        assert!(out.accuracy >= 0.85);
    }

    #[test]
    fn explore_returns_best_when_budget_exhausted() {
        // Impossible target: loop must exhaust and return best-seen.
        let out = explore(RegionSize::new(8, 8), 10.0, 2.0, 5, &mut model);
        assert!(!out.converged);
        assert_eq!(out.iterations, 5);
        assert!(out.accuracy > 0.0);
    }

    #[test]
    fn explore_halves_alternately() {
        let mut seen = Vec::new();
        let _ = explore(
            RegionSize::new(16, 16),
            8.0,
            2.0, // never met
            4,
            &mut |r, t| {
                seen.push((r, t));
                (0.0, 0.5)
            },
        );
        assert_eq!(seen[0], (RegionSize::new(16, 16), 8.0));
        assert_eq!(seen[1], (RegionSize::new(16, 16), 4.0)); // threshold halved
        assert_eq!(seen[2], (RegionSize::new(8, 16), 4.0)); // region halved
        assert_eq!(seen[3], (RegionSize::new(8, 16), 2.0)); // threshold again
    }

    #[test]
    fn sweeps_visit_every_point_in_order() {
        let ts = [0.001f32, 0.01, 0.1, 1.0];
        let pts = sweep_thresholds(RegionSize::new(4, 16), &ts, &mut model);
        assert_eq!(pts.len(), 4);
        for (p, &t) in pts.iter().zip(&ts) {
            assert_eq!(p.threshold, t);
        }
        let rs = [RegionSize::new(4, 4), RegionSize::new(32, 32)];
        let pts = sweep_regions(5.0, &rs, &mut model);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[1].region, RegionSize::new(32, 32));
    }

    #[test]
    fn parallel_sweeps_match_sequential() {
        let ts = [0.001f32, 0.01, 0.1, 1.0, 5.0, 10.0, 20.0];
        let seq = sweep_thresholds(RegionSize::new(4, 16), &ts, &mut model);
        let par = sweep_thresholds_parallel(RegionSize::new(4, 16), &ts, model);
        assert_eq!(seq, par);

        let rs: Vec<RegionSize> =
            [1usize, 2, 4, 8, 16, 32].iter().map(|&d| RegionSize::new(d, d)).collect();
        let seq = sweep_regions(5.0, &rs, &mut model);
        let par = sweep_regions_parallel(5.0, &rs, model);
        assert_eq!(seq, par);
    }

    #[test]
    fn sweep_report_serializes_every_point() {
        let ts = [1.0f32, 5.0];
        let pts = sweep_thresholds(RegionSize::new(4, 16), &ts, &mut model);
        let r = sweep_report("threshold", &pts);
        let json = r.to_json_string();
        assert!(json.starts_with(
            r#"{"schema":"drq-metrics","schema_version":1,"kind":"dse_sweep","axis":"threshold","candidates":2"#
        ));
        assert!(json.contains(r#""region_x":4"#) && json.contains(r#""region_y":16"#));

        let outcome = explore(RegionSize::new(8, 8), 4.0, 0.5, 4, &mut model);
        let oj = outcome.to_report().to_json_string();
        assert!(oj.contains(r#""kind":"dse_explore""#));
        assert!(oj.contains(r#""converged":true"#));
    }

    #[test]
    fn retry_succeeds_after_transient_failures() {
        let mut calls = 0u32;
        let v = retry_with_backoff(RetryPolicy::fast_test(), "shard", |attempt| {
            calls += 1;
            assert_eq!(attempt, calls);
            if calls < 3 { Err("transient") } else { Ok(7) }
        })
        .unwrap();
        assert_eq!(v, 7);
        assert_eq!(calls, 3);
    }

    #[test]
    fn retry_exhaustion_reports_attempts_and_last_error() {
        let mut calls = 0u32;
        let err = retry_with_backoff(RetryPolicy::fast_test(), "shard", |_| {
            calls += 1;
            Err::<(), _>(format!("boom #{calls}"))
        })
        .unwrap_err();
        assert_eq!(calls, 3);
        match &err {
            crate::DrqError::RetriesExhausted { context, attempts, last_error } => {
                assert_eq!(*context, "shard");
                assert_eq!(*attempts, 3);
                assert_eq!(last_error, "boom #3");
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn retrying_sweep_matches_plain_sweep_on_success() {
        let ts = [0.5f32, 2.0, 8.0];
        let plain = sweep_thresholds(RegionSize::new(4, 16), &ts, &mut model);
        // Evaluator fails once per threshold, then delivers the model value.
        let mut failures_left = std::collections::HashMap::new();
        let retried = sweep_thresholds_retrying(
            RegionSize::new(4, 16),
            &ts,
            RetryPolicy::fast_test(),
            |r, t| {
                let left = failures_left.entry(t.to_bits()).or_insert(1u32);
                if *left > 0 {
                    *left -= 1;
                    Err("flake")
                } else {
                    Ok(model(r, t))
                }
            },
        )
        .unwrap();
        assert_eq!(plain, retried);
    }

    #[test]
    fn retrying_sweep_aborts_when_a_shard_never_recovers() {
        let err = sweep_thresholds_retrying(
            RegionSize::new(4, 16),
            &[1.0f32],
            RetryPolicy::fast_test(),
            |_, _| Err::<(f64, f64), _>("hard failure"),
        )
        .unwrap_err();
        assert!(matches!(err, crate::DrqError::RetriesExhausted { .. }));
        assert!(err.to_string().contains("hard failure"));
    }

    #[test]
    fn best_point_respects_accuracy_floor() {
        let ts = [1.0f32, 5.0, 10.0, 20.0];
        let pts = sweep_thresholds(RegionSize::new(4, 16), &ts, &mut model);
        let best = best_point(&pts, 0.8).unwrap();
        // Highest int4 fraction whose accuracy is still >= 0.8.
        assert!(best.accuracy >= 0.8);
        for p in &pts {
            if p.accuracy >= 0.8 {
                assert!(p.int4_fraction <= best.int4_fraction + 1e-12);
            }
        }
        assert!(best_point(&pts, 1.1).is_none());
    }

    #[test]
    fn backoff_without_jitter_is_fixed_exponential() {
        let p = RetryPolicy {
            max_attempts: 5,
            initial_backoff_ms: 100,
            backoff_factor: 2,
            max_backoff_ms: 2_000,
            jitter_seed: None,
        };
        assert_eq!(p.backoff_delay_ms(1), 100);
        assert_eq!(p.backoff_delay_ms(2), 200);
        assert_eq!(p.backoff_delay_ms(3), 400);
        assert_eq!(p.backoff_delay_ms(10), 2_000); // capped
    }

    #[test]
    fn jittered_backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::default_sweep();
        for attempt in 1..=6 {
            let a = p.backoff_delay_ms(attempt);
            let b = p.backoff_delay_ms(attempt);
            assert_eq!(a, b, "same policy + attempt must give the same delay");
            let base = RetryPolicy { jitter_seed: None, ..p }.backoff_delay_ms(attempt);
            assert!(a >= base / 2 && a <= base, "delay {a} outside [{}, {base}]", base / 2);
        }
    }

    #[test]
    fn jitter_seeds_decorrelate_schedules() {
        let base = RetryPolicy::default_sweep();
        let schedule = |p: RetryPolicy| (1..=6).map(|a| p.backoff_delay_ms(a)).collect::<Vec<_>>();
        let mut distinct = 0;
        for seed in 1..=8u64 {
            if schedule(base.with_jitter_seed(seed)) != schedule(base) {
                distinct += 1;
            }
        }
        // Near-certain for a working mix; zero for the old fixed schedule.
        assert!(distinct >= 6, "only {distinct}/8 seeds changed the schedule");
    }

    #[test]
    fn jitter_varies_across_attempts() {
        let p = RetryPolicy {
            max_attempts: 8,
            initial_backoff_ms: 1_000,
            backoff_factor: 1,
            max_backoff_ms: 1_000,
            jitter_seed: Some(7),
        };
        // Same base delay each attempt, but the (seed, attempt) mix should
        // not collapse onto one value.
        let delays: std::collections::BTreeSet<u64> =
            (1..=8).map(|a| p.backoff_delay_ms(a)).collect();
        assert!(delays.len() > 1, "attempt mixing produced a constant schedule");
    }

    #[test]
    fn zero_backoff_stays_zero_with_jitter() {
        let p = RetryPolicy::fast_test().with_jitter_seed(3);
        assert_eq!(p.backoff_delay_ms(1), 0);
        assert_eq!(p.backoff_delay_ms(2), 0);
    }
}
