//! Binary sensitivity mask maps.

use crate::RegionGrid;

/// The binary mask map one channel's sensitivity prediction produces:
/// one bit per region, `true` = sensitive (INT8), `false` = insensitive
/// (INT4). This is the `h*w / (x*y)`-sized mask of Section III-B.
///
/// # Examples
///
/// ```
/// use drq_core::{MaskMap, RegionGrid, RegionSize};
///
/// let grid = RegionGrid::new(8, 8, RegionSize::new(4, 4));
/// let mut mask = MaskMap::all_insensitive(grid);
/// mask.set(0, 1, true);
/// assert!(mask.pixel_sensitive(2, 6));
/// assert!(!mask.pixel_sensitive(2, 2));
/// assert_eq!(mask.sensitive_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskMap {
    grid: RegionGrid,
    bits: Vec<bool>,
}

impl MaskMap {
    /// Creates an all-insensitive (all-INT4) mask.
    pub fn all_insensitive(grid: RegionGrid) -> Self {
        Self { grid, bits: vec![false; grid.region_count()] }
    }

    /// Creates an all-sensitive (all-INT8) mask.
    pub fn all_sensitive(grid: RegionGrid) -> Self {
        Self { grid, bits: vec![true; grid.region_count()] }
    }

    /// Creates a mask from explicit bits in row-major region order.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` differs from the grid's region count.
    pub fn from_bits(grid: RegionGrid, bits: Vec<bool>) -> Self {
        assert_eq!(bits.len(), grid.region_count(), "mask bit count mismatch");
        Self { grid, bits }
    }

    /// The grid this mask covers.
    pub fn grid(&self) -> RegionGrid {
        self.grid
    }

    /// Whether region `(row, col)` is sensitive.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn is_sensitive(&self, row: usize, col: usize) -> bool {
        assert!(row < self.grid.rows() && col < self.grid.cols(), "region out of range");
        self.bits[row * self.grid.cols() + col]
    }

    /// Sets the sensitivity of region `(row, col)`.
    pub fn set(&mut self, row: usize, col: usize, sensitive: bool) {
        assert!(row < self.grid.rows() && col < self.grid.cols(), "region out of range");
        self.bits[row * self.grid.cols() + col] = sensitive;
    }

    /// Whether the region containing pixel `(py, px)` is sensitive.
    #[inline]
    pub fn pixel_sensitive(&self, py: usize, px: usize) -> bool {
        self.bits[self.grid.region_index_of(py, px)]
    }

    /// Number of sensitive regions.
    pub fn sensitive_count(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Fraction of regions marked sensitive.
    pub fn sensitive_fraction(&self) -> f64 {
        if self.bits.is_empty() {
            0.0
        } else {
            self.sensitive_count() as f64 / self.bits.len() as f64
        }
    }

    /// Fraction of *pixels* covered by sensitive regions (differs from the
    /// region fraction when edge regions are truncated).
    pub fn sensitive_pixel_fraction(&self) -> f64 {
        let mut sens = 0usize;
        let mut total = 0usize;
        for r in 0..self.grid.rows() {
            for c in 0..self.grid.cols() {
                let (ys, xs) = self.grid.region_bounds(r, c);
                let area = ys.len() * xs.len();
                total += area;
                if self.bits[r * self.grid.cols() + c] {
                    sens += area;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            sens as f64 / total as f64
        }
    }

    /// Raw bits in row-major region order.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Storage footprint of this mask in bits (one bit per region — what the
    /// architecture keeps in its mask buffer).
    pub fn storage_bits(&self) -> usize {
        self.bits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RegionSize;

    fn grid() -> RegionGrid {
        RegionGrid::new(8, 8, RegionSize::new(4, 4))
    }

    #[test]
    fn constructors_set_all_bits() {
        assert_eq!(MaskMap::all_insensitive(grid()).sensitive_count(), 0);
        assert_eq!(MaskMap::all_sensitive(grid()).sensitive_count(), 4);
    }

    #[test]
    fn pixel_lookup_follows_region() {
        let mut m = MaskMap::all_insensitive(grid());
        m.set(1, 0, true);
        for py in 4..8 {
            for px in 0..4 {
                assert!(m.pixel_sensitive(py, px));
            }
        }
        assert!(!m.pixel_sensitive(0, 0));
        assert!(!m.pixel_sensitive(7, 7));
    }

    #[test]
    fn fractions_are_consistent_on_divisible_grid() {
        let mut m = MaskMap::all_insensitive(grid());
        m.set(0, 0, true);
        assert!((m.sensitive_fraction() - 0.25).abs() < 1e-12);
        assert!((m.sensitive_pixel_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn pixel_fraction_accounts_for_truncated_edges() {
        // 6x6 map with 4x4 regions: corner region has 16 px, edges 8, corner 4.
        let g = RegionGrid::new(6, 6, RegionSize::new(4, 4));
        let mut m = MaskMap::all_insensitive(g);
        m.set(1, 1, true); // the truncated 2x2 corner region
        assert!((m.sensitive_fraction() - 0.25).abs() < 1e-12);
        assert!((m.sensitive_pixel_fraction() - 4.0 / 36.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mask bit count")]
    fn from_bits_validates_length() {
        let _ = MaskMap::from_bits(grid(), vec![true; 3]);
    }

    #[test]
    fn storage_is_one_bit_per_region() {
        let g = RegionGrid::new(32, 32, RegionSize::new(4, 16));
        assert_eq!(MaskMap::all_insensitive(g).storage_bits(), 16);
    }
}
