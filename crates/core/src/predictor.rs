//! The just-in-time sensitivity predictor (Section III-B).

use crate::{MaskMap, RegionGrid, RegionSize};
use drq_quant::{Precision, QuantParams};
use drq_tensor::Tensor;

/// Predicts sensitive regions of a feature map by mean filtering each
/// x×y region and comparing against a threshold (a step activation).
///
/// Following the paper, the feature map is first quantized to INT8 and the
/// threshold is expressed in integer (INT8-code) units — Table III reports
/// per-network average thresholds of 17–25 on that scale. The predictor
/// emits one binary [`MaskMap`] per input channel.
///
/// # Examples
///
/// ```
/// use drq_core::{RegionSize, SensitivityPredictor};
/// use drq_tensor::Tensor;
///
/// // Bright 4x4 blob in an otherwise-dark 8x8 map.
/// let x = Tensor::from_fn(&[1, 1, 8, 8], |i| {
///     let (h, w) = (i / 8, i % 8);
///     if h < 4 && w < 4 { 1.0 } else { 0.0 }
/// });
/// let p = SensitivityPredictor::new(RegionSize::new(4, 4), 32.0);
/// let masks = p.predict(&x);
/// assert!(masks[0].is_sensitive(0, 0));
/// assert!(!masks[0].is_sensitive(1, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensitivityPredictor {
    region: RegionSize,
    threshold: f32,
}

impl SensitivityPredictor {
    /// Creates a predictor with a region size and an integer-domain
    /// threshold (compared against the mean of INT8 codes in a region).
    ///
    /// # Panics
    ///
    /// Panics if the threshold is negative or not finite.
    pub fn new(region: RegionSize, threshold: f32) -> Self {
        assert!(threshold.is_finite() && threshold >= 0.0, "threshold must be non-negative");
        Self { region, threshold }
    }

    /// The region size.
    pub fn region(&self) -> RegionSize {
        self.region
    }

    /// The integer-domain threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Returns a predictor with the same region and a new threshold.
    pub fn with_threshold(&self, threshold: f32) -> Self {
        Self::new(self.region, threshold)
    }

    /// The INT8 activation quantization parameters used for `x` (max-abs
    /// calibration, matching Section III-B's FP32→INT8 step).
    pub fn activation_params(x: &Tensor<f32>) -> QuantParams {
        QuantParams::fit(x.as_slice(), Precision::Int8)
    }

    /// Predicts masks for every channel of image `n` of an NCHW tensor.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank 4 or `n` is out of range.
    pub fn predict_image(&self, x: &Tensor<f32>, n: usize) -> Vec<MaskMap> {
        let s = x.shape4().expect("predictor input must be rank 4");
        assert!(n < s.n, "image index out of range");
        let params = Self::activation_params(x);
        let grid = RegionGrid::new(s.h, s.w, self.region);
        let xs = x.as_slice();
        (0..s.c)
            .map(|c| {
                let mut bits = Vec::with_capacity(grid.region_count());
                for r in 0..grid.rows() {
                    for col in 0..grid.cols() {
                        let (ys, xcols) = grid.region_bounds(r, col);
                        let mut sum = 0i64;
                        let mut count = 0usize;
                        for y in ys {
                            for xx in xcols.clone() {
                                sum += params.quantize_value(xs[s.offset(n, c, y, xx)]) as i64;
                                count += 1;
                            }
                        }
                        // Mean filtering followed by the step activation.
                        let mean = sum as f32 / count.max(1) as f32;
                        bits.push(mean > self.threshold);
                    }
                }
                MaskMap::from_bits(grid, bits)
            })
            .collect()
    }

    /// Predicts masks for the first image of a batch (the common
    /// single-image inference case).
    pub fn predict(&self, x: &Tensor<f32>) -> Vec<MaskMap> {
        self.predict_image(x, 0)
    }

    /// Mean sensitive-region fraction across channels for image `n` —
    /// the quantity the threshold sweep of Fig. 14 trades against accuracy.
    pub fn sensitive_fraction(&self, x: &Tensor<f32>, n: usize) -> f64 {
        let masks = self.predict_image(x, n);
        if masks.is_empty() {
            return 0.0;
        }
        masks.iter().map(MaskMap::sensitive_fraction).sum::<f64>() / masks.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drq_tensor::XorShiftRng;

    fn blob_map() -> Tensor<f32> {
        // Two channels: channel 0 has a bright top-left blob, channel 1 is flat.
        Tensor::from_fn(&[1, 2, 8, 8], |i| {
            let c = i / 64;
            let p = i % 64;
            let (h, w) = (p / 8, p % 8);
            if c == 0 && h < 4 && w < 4 {
                2.0
            } else {
                0.01
            }
        })
    }

    #[test]
    fn per_channel_masks_are_independent() {
        let p = SensitivityPredictor::new(RegionSize::new(4, 4), 10.0);
        let masks = p.predict(&blob_map());
        assert_eq!(masks.len(), 2);
        assert!(masks[0].is_sensitive(0, 0));
        assert_eq!(masks[1].sensitive_count(), 0);
    }

    #[test]
    fn zero_threshold_marks_everything_with_positive_mean() {
        let p = SensitivityPredictor::new(RegionSize::new(4, 4), 0.0);
        let masks = p.predict(&blob_map());
        // Every region has strictly positive mean, so all are sensitive.
        assert_eq!(masks[0].sensitive_count(), 4);
    }

    #[test]
    fn huge_threshold_marks_nothing() {
        let p = SensitivityPredictor::new(RegionSize::new(4, 4), 127.0);
        let masks = p.predict(&blob_map());
        assert_eq!(masks[0].sensitive_count() + masks[1].sensitive_count(), 0);
    }

    #[test]
    fn sensitive_fraction_decreases_with_threshold() {
        // Monotonicity of the step activation in the threshold.
        let mut rng = XorShiftRng::new(5);
        let x = Tensor::from_fn(&[1, 3, 16, 16], |_| rng.next_f32().max(0.0));
        let fractions: Vec<f64> = [0.0f32, 10.0, 30.0, 60.0, 127.0]
            .iter()
            .map(|&t| {
                SensitivityPredictor::new(RegionSize::new(4, 4), t).sensitive_fraction(&x, 0)
            })
            .collect();
        for w in fractions.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "{fractions:?}");
        }
        assert_eq!(*fractions.last().unwrap(), 0.0);
    }

    #[test]
    fn mean_filter_uses_region_mean_not_sum() {
        // A large region with one bright pixel must not trip a threshold the
        // bright pixel alone would exceed if summed.
        let mut x = Tensor::<f32>::zeros(&[1, 1, 8, 8]);
        x[[0, 0, 0, 0]] = 1.0; // quantizes to 127
        let p = SensitivityPredictor::new(RegionSize::new(8, 8), 10.0);
        let masks = p.predict(&x);
        // Mean is 127/64 ≈ 2 < 10: insensitive.
        assert_eq!(masks[0].sensitive_count(), 0);
        // But a per-pixel region grid flags it.
        let p1 = SensitivityPredictor::new(RegionSize::new(1, 1), 10.0);
        assert_eq!(p1.predict(&x)[0].sensitive_count(), 1);
    }

    #[test]
    fn batch_images_predict_independently() {
        let mut x = Tensor::<f32>::zeros(&[2, 1, 4, 4]);
        for h in 0..4 {
            for w in 0..4 {
                x[[1, 0, h, w]] = 1.0;
            }
        }
        let p = SensitivityPredictor::new(RegionSize::new(4, 4), 50.0);
        assert_eq!(p.predict_image(&x, 0)[0].sensitive_count(), 0);
        assert_eq!(p.predict_image(&x, 1)[0].sensitive_count(), 1);
    }
}
