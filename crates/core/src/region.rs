//! Region geometry: the x×y rectangles that partition a feature map.

use std::fmt;

/// The size of a sensitivity region: `x` rows by `y` columns of pixels
/// (the paper's `x × y` rectangle, Section II-B). Stripe-shaped regions use
/// a large `y` — e.g. `4 × w` spans the full feature-map width, the
/// storage-friendly shape identified in Section VI-B2.
///
/// # Examples
///
/// ```
/// use drq_core::RegionSize;
///
/// let r = RegionSize::new(4, 16);
/// assert_eq!(r.area(), 64);
/// assert_eq!(r.to_string(), "4x16");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionSize {
    /// Region height in pixels.
    pub x: usize,
    /// Region width in pixels.
    pub y: usize,
}

impl RegionSize {
    /// Creates a region size.
    ///
    /// # Panics
    ///
    /// Panics if either extent is zero.
    pub fn new(x: usize, y: usize) -> Self {
        assert!(x > 0 && y > 0, "region extents must be positive");
        Self { x, y }
    }

    /// A full-width stripe region of height `x` over a feature map of
    /// width `w` (the paper's `4 × w` shape).
    pub fn stripe(x: usize, w: usize) -> Self {
        Self::new(x, w.max(1))
    }

    /// Pixels per region.
    pub fn area(&self) -> usize {
        self.x * self.y
    }

    /// Clamps the region to fit a feature map of `h × w` (regions never
    /// exceed the map itself).
    pub fn clamped_to(&self, h: usize, w: usize) -> RegionSize {
        RegionSize::new(self.x.min(h.max(1)), self.y.min(w.max(1)))
    }

    /// Halves the region area by halving the longer side (used by the DSE
    /// loop of Section III-D), bottoming out at 1×1.
    pub fn halved(&self) -> RegionSize {
        if self.x >= self.y && self.x > 1 {
            RegionSize::new(self.x / 2, self.y)
        } else if self.y > 1 {
            RegionSize::new(self.x, self.y / 2)
        } else {
            *self
        }
    }
}

impl fmt::Display for RegionSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.x, self.y)
    }
}

/// The grid a [`RegionSize`] induces over an `h × w` feature map. Edge
/// regions are truncated when the map size is not a multiple of the region
/// size.
///
/// # Examples
///
/// ```
/// use drq_core::{RegionGrid, RegionSize};
///
/// let g = RegionGrid::new(32, 32, RegionSize::new(4, 16));
/// assert_eq!(g.rows(), 8);
/// assert_eq!(g.cols(), 2);
/// assert_eq!(g.region_count(), 16);
/// assert_eq!(g.region_of(5, 20), (1, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionGrid {
    h: usize,
    w: usize,
    region: RegionSize,
    rows: usize,
    cols: usize,
}

impl RegionGrid {
    /// Creates the grid for a feature map of `h × w` pixels.
    ///
    /// The region is clamped to the map first, so oversized regions degrade
    /// gracefully to a single whole-map region.
    ///
    /// # Panics
    ///
    /// Panics if `h` or `w` is zero.
    pub fn new(h: usize, w: usize, region: RegionSize) -> Self {
        assert!(h > 0 && w > 0, "feature map must be non-empty");
        let region = region.clamped_to(h, w);
        Self {
            h,
            w,
            region,
            rows: h.div_ceil(region.x),
            cols: w.div_ceil(region.y),
        }
    }

    /// Feature-map height.
    pub fn height(&self) -> usize {
        self.h
    }

    /// Feature-map width.
    pub fn width(&self) -> usize {
        self.w
    }

    /// The (possibly clamped) region size.
    pub fn region(&self) -> RegionSize {
        self.region
    }

    /// Number of region rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of region columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of regions (the paper's `h*w / (x*y)` mask dimension).
    pub fn region_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Region coordinates `(row, col)` containing pixel `(py, px)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the pixel is out of bounds.
    #[inline]
    pub fn region_of(&self, py: usize, px: usize) -> (usize, usize) {
        debug_assert!(py < self.h && px < self.w, "pixel out of bounds");
        (py / self.region.x, px / self.region.y)
    }

    /// Linear region index of pixel `(py, px)`.
    #[inline]
    pub fn region_index_of(&self, py: usize, px: usize) -> usize {
        let (r, c) = self.region_of(py, px);
        r * self.cols + c
    }

    /// Pixel bounds `(y0..y1, x0..x1)` of region `(row, col)`, truncated at
    /// the feature-map edge.
    ///
    /// # Panics
    ///
    /// Panics if the region coordinates are out of range.
    pub fn region_bounds(
        &self,
        row: usize,
        col: usize,
    ) -> (std::ops::Range<usize>, std::ops::Range<usize>) {
        assert!(row < self.rows && col < self.cols, "region out of range");
        let y0 = row * self.region.x;
        let x0 = col * self.region.y;
        (y0..(y0 + self.region.x).min(self.h), x0..(x0 + self.region.y).min(self.w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_dimensions_follow_paper_formula() {
        // h*w / (x*y) regions when divisible.
        let g = RegionGrid::new(32, 32, RegionSize::new(4, 4));
        assert_eq!(g.region_count(), 32 * 32 / 16);
    }

    #[test]
    fn non_divisible_maps_round_up() {
        let g = RegionGrid::new(7, 7, RegionSize::new(4, 4));
        assert_eq!(g.rows(), 2);
        assert_eq!(g.cols(), 2);
        let (ys, xs) = g.region_bounds(1, 1);
        assert_eq!(ys, 4..7);
        assert_eq!(xs, 4..7);
    }

    #[test]
    fn stripe_covers_full_width() {
        let g = RegionGrid::new(32, 32, RegionSize::stripe(4, 32));
        assert_eq!(g.cols(), 1);
        assert_eq!(g.rows(), 8);
    }

    #[test]
    fn oversized_region_clamps_to_single_region() {
        let g = RegionGrid::new(8, 8, RegionSize::new(32, 32));
        assert_eq!(g.region_count(), 1);
        assert_eq!(g.region(), RegionSize::new(8, 8));
    }

    #[test]
    fn every_pixel_maps_into_grid() {
        let g = RegionGrid::new(13, 9, RegionSize::new(4, 2));
        let mut seen = vec![0usize; g.region_count()];
        for py in 0..13 {
            for px in 0..9 {
                seen[g.region_index_of(py, px)] += 1;
            }
        }
        assert_eq!(seen.iter().sum::<usize>(), 13 * 9);
        assert!(seen.iter().all(|&c| c > 0), "empty region in {seen:?}");
    }

    #[test]
    fn region_bounds_partition_the_map() {
        let g = RegionGrid::new(10, 10, RegionSize::new(3, 4));
        let mut covered = vec![vec![false; 10]; 10];
        for r in 0..g.rows() {
            for c in 0..g.cols() {
                let (ys, xs) = g.region_bounds(r, c);
                for y in ys {
                    for x in xs.clone() {
                        assert!(!covered[y][x], "overlap at ({y},{x})");
                        covered[y][x] = true;
                    }
                }
            }
        }
        assert!(covered.iter().flatten().all(|&b| b));
    }

    #[test]
    fn halving_reduces_area_until_unit() {
        let mut r = RegionSize::new(32, 32);
        let mut areas = vec![r.area()];
        for _ in 0..12 {
            r = r.halved();
            areas.push(r.area());
        }
        assert_eq!(r, RegionSize::new(1, 1));
        for w in areas.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(RegionSize::new(4, 16).to_string(), "4x16");
    }
}
