//! Sensitivity-aware fine-tuning (Section III-D).
//!
//! "We retrain the model for guaranteed accuracy, during which we will
//! apply the mix-precision convolution in the forward propagation, but
//! full-precision backward propagation for weight updating" — the standard
//! straight-through-estimator recipe. One fine-tuning step:
//!
//! 1. run the *mixed-precision* forward pass to obtain the quantized
//!    logits (what the accelerator would compute);
//! 2. evaluate the loss gradient at those logits;
//! 3. backpropagate that gradient through the *full-precision* network
//!    (whose layer caches come from an FP32 forward pass on the same
//!    batch), and update the weights.

use crate::{DrqConfig, DrqNetwork, DrqRunStats};
use drq_nn::{CrossEntropyLoss, Network, Sgd};
use drq_tensor::Tensor;

/// One quantization-aware fine-tuning step. Returns the loss measured at
/// the mixed-precision logits and the DRQ statistics of the forward pass.
///
/// # Panics
///
/// Panics if `targets.len()` differs from the batch size.
///
/// # Examples
///
/// ```no_run
/// use drq_core::{finetune_step, DrqConfig, RegionSize};
/// use drq_nn::{Conv2d, Flatten, Layer, Linear, Network, ReLU, Sgd};
/// use drq_tensor::Tensor;
///
/// let mut net = Network::new(vec![
///     Layer::from(Conv2d::new(1, 2, 3, 1, 1, 1)),
///     Layer::from(ReLU::new()),
///     Layer::from(Flatten::new()),
///     Layer::from(Linear::new(2 * 64, 4, 2)),
/// ]);
/// let mut opt = Sgd::new(0.01);
/// let cfg = DrqConfig::new(RegionSize::new(4, 4), 20.0);
/// let x = Tensor::zeros(&[2, 1, 8, 8]);
/// let (loss, _stats) = finetune_step(&mut net, &cfg, &x, &[0, 1], &mut opt);
/// assert!(loss.is_finite());
/// ```
pub fn finetune_step(
    net: &mut Network,
    config: &DrqConfig,
    x: &Tensor<f32>,
    targets: &[usize],
    opt: &mut Sgd,
) -> (f32, DrqRunStats) {
    // Mixed-precision forward: the logits the quantized hardware produces.
    let (q_logits, stats) = {
        let mut drq = DrqNetwork::new(net.clone(), *config);
        drq.forward(x)
    };
    let (loss, grad) = CrossEntropyLoss::evaluate(&q_logits, targets);
    // Full-precision forward (to populate layer caches) + backward with the
    // quantized-loss gradient: the straight-through estimator.
    let _ = net.forward(x, true);
    let _ = net.backward(&grad);
    opt.step(net);
    (loss, stats)
}

/// Runs `epochs` of fine-tuning over `(x, targets)` batches produced by
/// `batches`, returning the per-epoch mean losses.
pub fn finetune<'a, I>(
    net: &mut Network,
    config: &DrqConfig,
    epochs: usize,
    opt: &mut Sgd,
    batches: impl Fn() -> I,
) -> Vec<f32>
where
    I: Iterator<Item = (Tensor<f32>, Vec<usize>)> + 'a,
{
    let mut losses = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (x, y) in batches() {
            let (loss, _) = finetune_step(net, config, &x, &y, opt);
            sum += loss;
            n += 1;
        }
        losses.push(if n == 0 { 0.0 } else { sum / n as f32 });
    }
    losses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RegionSize;
    use drq_nn::{accuracy, BatchNorm2d, Conv2d, Flatten, Layer, Linear, Pool2d, PoolKind, ReLU};
    use drq_tensor::XorShiftRng;

    /// Tiny 3-class problem: blob position decides the class.
    fn make_batch(rng: &mut XorShiftRng, n: usize) -> (Tensor<f32>, Vec<usize>) {
        let mut x = Tensor::<f32>::zeros(&[n, 1, 12, 12]);
        let mut t = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 3;
            let (cy, cx) = match class {
                0 => (3, 3),
                1 => (3, 8),
                _ => (8, 3),
            };
            for dy in 0..3 {
                for dx in 0..3 {
                    x[[i, 0, cy + dy, cx + dx]] = 0.8 + 0.2 * rng.next_f32();
                }
            }
            t.push(class);
        }
        (x, t)
    }

    fn tiny_net(seed: u64) -> Network {
        Network::new(vec![
            Layer::from(Conv2d::new(1, 4, 3, 1, 1, seed)),
            Layer::from(BatchNorm2d::new(4)),
            Layer::from(ReLU::new()),
            Layer::from(Pool2d::new(PoolKind::Avg, 2, 2)),
            Layer::from(Flatten::new()),
            Layer::from(Linear::new(4 * 36, 3, seed + 1)),
        ])
    }

    #[test]
    fn finetuning_reduces_quantized_loss() {
        let mut net = tiny_net(5);
        let cfg = DrqConfig::new(RegionSize::new(4, 4), 35.0);
        let mut opt = Sgd::new(0.05).momentum(0.9);
        let mut rng = XorShiftRng::new(6);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..30 {
            let (x, y) = make_batch(&mut rng, 9);
            let (loss, _) = finetune_step(&mut net, &cfg, &x, &y, &mut opt);
            first.get_or_insert(loss);
            last = loss;
        }
        assert!(
            last < first.unwrap() * 0.6,
            "quantized loss did not improve: {last} vs {first:?}"
        );
    }

    #[test]
    fn finetuned_network_classifies_under_drq() {
        let mut net = tiny_net(7);
        let cfg = DrqConfig::new(RegionSize::new(4, 4), 35.0);
        let mut opt = Sgd::new(0.05).momentum(0.9);
        let mut rng = XorShiftRng::new(8);
        for _ in 0..40 {
            let (x, y) = make_batch(&mut rng, 9);
            let _ = finetune_step(&mut net, &cfg, &x, &y, &mut opt);
        }
        // Evaluate with the mixed-precision forward pass (the deployment
        // condition): it should now be accurate.
        let (x, y) = make_batch(&mut rng, 9);
        let mut drq = DrqNetwork::new(net, cfg);
        let (logits, stats) = drq.forward(&x);
        let acc = accuracy(&logits, &y);
        assert!(acc > 0.8, "quantized accuracy after fine-tuning: {acc}");
        assert!(stats.totals().total() > 0);
    }

    #[test]
    fn finetune_helper_reports_epoch_losses() {
        let mut net = tiny_net(9);
        let cfg = DrqConfig::new(RegionSize::new(4, 4), 35.0);
        let mut opt = Sgd::new(0.05).momentum(0.9);
        let losses = finetune(&mut net, &cfg, 3, &mut opt, || {
            let mut rng = XorShiftRng::new(10);
            (0..5).map(move |_| make_batch(&mut rng, 9)).collect::<Vec<_>>().into_iter()
        });
        assert_eq!(losses.len(), 3);
        assert!(losses[2] <= losses[0], "losses {losses:?}");
    }
}
