//! Per-network and per-layer DRQ configuration.

use crate::RegionSize;

/// DRQ parameters for one convolution layer: the region size and the
/// integer-domain sensitivity threshold.
///
/// # Examples
///
/// ```
/// use drq_core::{LayerDrqConfig, RegionSize};
///
/// let cfg = LayerDrqConfig::new(RegionSize::new(4, 16), 21.0);
/// assert_eq!(cfg.region, RegionSize::new(4, 16));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerDrqConfig {
    /// Sensitivity region size for this layer.
    pub region: RegionSize,
    /// Step-activation threshold in INT8-code units.
    pub threshold: f32,
}

impl LayerDrqConfig {
    /// Creates a layer configuration.
    pub fn new(region: RegionSize, threshold: f32) -> Self {
        Self { region, threshold }
    }
}

/// Network-level DRQ configuration: a base region and threshold plus the
/// deep-layer scaling rules of Section VI-B2.
///
/// The paper notes that as feature maps shrink with depth, the region must
/// scale with them: "for the last a few convolution layers, the size of the
/// sensitivity region is reduced and fixed at 2×2", and the threshold
/// "may become 5× smaller in the last few layers" because activations
/// aggregate toward zero.
///
/// # Examples
///
/// ```
/// use drq_core::{DrqConfig, RegionSize};
///
/// let cfg = DrqConfig::new(RegionSize::new(4, 16), 21.0);
/// // Early, large feature map: base parameters.
/// let early = cfg.for_feature_map(32, 32);
/// assert_eq!(early.region, RegionSize::new(4, 16));
/// // Deep, tiny feature map: 2x2 region, threshold divided by 5.
/// let deep = cfg.for_feature_map(7, 7);
/// assert_eq!(deep.region, RegionSize::new(2, 2));
/// assert!((deep.threshold - 21.0 / 5.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrqConfig {
    base_region: RegionSize,
    base_threshold: f32,
    /// Feature maps at or below this spatial extent use the deep-layer rule.
    deep_layer_extent: usize,
    /// Region side used in the deep layers.
    deep_region: RegionSize,
    /// Threshold divisor in the deep layers.
    deep_threshold_divisor: f32,
}

impl DrqConfig {
    /// Creates a configuration with the paper's deep-layer defaults
    /// (2×2 regions and 5× smaller thresholds once the map is ≤ 8×8).
    ///
    /// # Panics
    ///
    /// Panics if the threshold is negative or not finite.
    pub fn new(base_region: RegionSize, base_threshold: f32) -> Self {
        assert!(
            base_threshold.is_finite() && base_threshold >= 0.0,
            "threshold must be non-negative"
        );
        Self {
            base_region,
            base_threshold,
            deep_layer_extent: 8,
            deep_region: RegionSize::new(2, 2),
            deep_threshold_divisor: 5.0,
        }
    }

    /// Overrides the deep-layer cutoff extent (builder style).
    pub fn deep_layer_extent(mut self, extent: usize) -> Self {
        self.deep_layer_extent = extent;
        self
    }

    /// The base (front-layer) region size.
    pub fn base_region(&self) -> RegionSize {
        self.base_region
    }

    /// The base (front-layer) threshold.
    pub fn base_threshold(&self) -> f32 {
        self.base_threshold
    }

    /// Returns a copy with a different base threshold.
    pub fn with_threshold(&self, threshold: f32) -> Self {
        let mut c = *self;
        assert!(threshold.is_finite() && threshold >= 0.0);
        c.base_threshold = threshold;
        c
    }

    /// Returns a copy with a different base region.
    pub fn with_region(&self, region: RegionSize) -> Self {
        let mut c = *self;
        c.base_region = region;
        c
    }

    /// Resolves the effective per-layer configuration for a feature map of
    /// `h × w` pixels, applying the deep-layer scaling rules with no depth
    /// information (the deep rule then keys purely on map size).
    pub fn for_feature_map(&self, h: usize, w: usize) -> LayerDrqConfig {
        self.for_layer(h, w, if h.max(w) <= self.deep_layer_extent { 1.0 } else { 0.0 })
    }

    /// Resolves the effective per-layer configuration given the feature-map
    /// extent *and* the layer's depth fraction through the network.
    ///
    /// Section VI-B2 separates the two rules: the region shrinks with the
    /// feature map ("we need to scale the region size accordingly", fixed at
    /// 2×2 for small maps), while the threshold "remains similar in the
    /// front layers and may become 5X smaller in the last few layers" — a
    /// depth property, applied here when `depth >= 0.8` on a small map.
    pub fn for_layer(&self, h: usize, w: usize, depth: f64) -> LayerDrqConfig {
        let small = h.max(w) <= self.deep_layer_extent;
        let region = if small {
            self.deep_region.clamped_to(h, w)
        } else {
            self.base_region.clamped_to(h, w)
        };
        let threshold = if small && depth >= 0.8 {
            self.base_threshold / self.deep_threshold_divisor
        } else {
            self.base_threshold
        };
        LayerDrqConfig::new(region, threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deep_rule_engages_at_cutoff() {
        let cfg = DrqConfig::new(RegionSize::new(4, 16), 20.0);
        assert_eq!(cfg.for_feature_map(9, 9).region, RegionSize::new(4, 9));
        assert_eq!(cfg.for_feature_map(8, 8).region, RegionSize::new(2, 2));
        assert_eq!(cfg.for_feature_map(8, 8).threshold, 4.0);
    }

    #[test]
    fn region_clamps_to_tiny_maps() {
        let cfg = DrqConfig::new(RegionSize::new(4, 16), 20.0);
        // A 1x1 map cannot host a 2x2 region.
        assert_eq!(cfg.for_feature_map(1, 1).region, RegionSize::new(1, 1));
    }

    #[test]
    fn builder_overrides() {
        let cfg = DrqConfig::new(RegionSize::new(4, 16), 20.0).deep_layer_extent(4);
        assert_eq!(cfg.for_feature_map(8, 8).region, RegionSize::new(4, 8));
        let cfg2 = cfg.with_threshold(10.0).with_region(RegionSize::new(2, 4));
        assert_eq!(cfg2.base_threshold(), 10.0);
        assert_eq!(cfg2.base_region(), RegionSize::new(2, 4));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_threshold() {
        let _ = DrqConfig::new(RegionSize::new(4, 4), -1.0);
    }
}
