//! Mixed-precision convolution (Section III-C).

use crate::MaskMap;
use drq_nn::Conv2d;
use drq_quant::{analyze_gemm, AccumWidth, Precision, QuantParams, Quantizer};
use drq_telemetry::counter_add;
use drq_tensor::{
    int4_matmul, int8_matmul, int8_matmul_wide, parallel, Int4Packed, Shape4, Tensor,
};

/// Which compute backend executes the quantized convolution arithmetic.
///
/// Both tiers implement the *same* quantization semantics — identical
/// codes, identical exact integer accumulation, identical final
/// `acc · scale + bias` conversion — so their outputs are bit-equal; the
/// differential suite holds them to it. The difference is purely how the
/// MACs run: [`ComputeTier::F32`] is the original tap loop over i64
/// accumulators, [`ComputeTier::Int`] lowers each layer through im2col
/// onto the packed integer GEMM tier in `drq-tensor` (i8×i8 and
/// nibble-INT4 kernels with range-analysis-proven i32 accumulation).
///
/// # Examples
///
/// ```
/// use drq_core::ComputeTier;
///
/// assert_eq!("int".parse::<ComputeTier>().unwrap(), ComputeTier::Int);
/// assert_eq!(ComputeTier::default().as_str(), "f32");
/// assert!("fp16".parse::<ComputeTier>().is_err());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ComputeTier {
    /// Reference tap loop: quantized codes multiplied in scalar i64.
    #[default]
    F32,
    /// Packed-panel integer GEMM tier (SIMD i8/i4 kernels).
    Int,
}

impl ComputeTier {
    /// The flag spelling (`"f32"` or `"int"`).
    pub fn as_str(self) -> &'static str {
        match self {
            ComputeTier::F32 => "f32",
            ComputeTier::Int => "int",
        }
    }
}

impl std::str::FromStr for ComputeTier {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "f32" => Ok(ComputeTier::F32),
            "int" => Ok(ComputeTier::Int),
            other => Err(format!("unknown compute tier {other:?} (want f32|int)")),
        }
    }
}

/// MAC-operation counts of one convolution execution, split by precision.
///
/// # Examples
///
/// ```
/// use drq_core::ConvOpCounts;
///
/// let c = ConvOpCounts { int4_macs: 75, int8_macs: 25 };
/// assert_eq!(c.total(), 100);
/// assert!((c.int4_fraction() - 0.75).abs() < 1e-12);
/// // INT8 MACs cost four INT4-equivalent cycles on the DRQ PE.
/// assert_eq!(c.int4_equivalent_ops(), 75 + 4 * 25);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConvOpCounts {
    /// MACs executed in INT4 mode.
    pub int4_macs: u64,
    /// MACs executed in INT8 mode.
    pub int8_macs: u64,
}

impl ConvOpCounts {
    /// Total MAC count.
    pub fn total(&self) -> u64 {
        self.int4_macs + self.int8_macs
    }

    /// Fraction of MACs executed at 4 bits (the paper's "4-bit percentage").
    pub fn int4_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.int4_macs as f64 / t as f64
        }
    }

    /// Work expressed in INT4 sub-operations: an INT8 MAC decomposes into
    /// four 4-bit sub-MACs on the time-multiplexed PE (Section IV-C1).
    pub fn int4_equivalent_ops(&self) -> u64 {
        self.int4_macs + self.int8_macs * Precision::Int8.int4_subops() as u64
    }

    /// Accumulates another count into this one.
    pub fn merge(&mut self, other: ConvOpCounts) {
        self.int4_macs += other.int4_macs;
        self.int8_macs += other.int8_macs;
    }
}

/// Prepared, input-independent integer-tier state for one convolution:
/// the INT8 weight calibration, the packed i8 panels and nibble-packed
/// INT4 planes per channel group, and the accumulator-width proofs.
///
/// Preparing a plan is the expensive, weight-only half of
/// [`MixedPrecisionConv::forward_tiered`] on the integer tier; reusing one
/// across requests (the serving plan cache) skips the re-quantization and
/// re-packing without changing a single output bit, because the plan holds
/// exactly the values the unplanned path would recompute.
///
/// # Examples
///
/// ```
/// use drq_core::{ComputeTier, ConvPlan, MixedPrecisionConv, uniform_masks};
/// use drq_nn::Conv2d;
/// use drq_tensor::Tensor;
///
/// let conv = Conv2d::new(2, 3, 3, 1, 1, 7);
/// let x = Tensor::from_fn(&[1, 2, 8, 8], |i| (i % 5) as f32);
/// let masks = uniform_masks(x.shape4().unwrap(), true);
/// let plan = ConvPlan::prepare(&conv);
/// let (y_planned, c_planned) =
///     MixedPrecisionConv::forward_planned(&conv, &plan, &x, &masks, ComputeTier::Int);
/// let (y, c) = MixedPrecisionConv::forward_tiered(&conv, &x, &masks, ComputeTier::Int);
/// assert_eq!(y_planned, y);
/// assert_eq!(c_planned, c);
/// ```
#[derive(Debug, Clone)]
pub struct ConvPlan {
    wq8: QuantParams,
    w8_groups: Vec<Tensor<i8>>,
    w4_groups: Vec<Int4Packed>,
    wide8: bool,
    wide4: bool,
    wtaps: usize,
}

impl ConvPlan {
    /// Quantizes, packs and range-analyzes `conv`'s weights.
    ///
    /// # Panics
    ///
    /// Panics if `conv`'s channel counts are not divisible by its groups
    /// (impossible for a well-formed `Conv2d`).
    pub fn prepare(conv: &Conv2d) -> Self {
        let wq8 = QuantParams::fit(conv.weight().as_slice(), Precision::Int8);
        let w8_t = Quantizer::quantize(&wq8, conv.weight());
        let w8 = w8_t.as_slice();
        let k = conv.kernel();
        let groups = conv.groups();
        let cpg_in = conv.in_channels() / groups;
        let cpg_out = conv.out_channels() / groups;
        let wtaps = cpg_in * k * k;
        // INT8 codes are i8-range by construction; the INT4 plane is the
        // arithmetic high nibble, stored nibble-packed (the at-rest INT4
        // form the paper's PE consumes).
        let mut w8_groups = Vec::with_capacity(groups);
        let mut w4_groups = Vec::with_capacity(groups);
        for g in 0..groups {
            let codes = &w8[g * cpg_out * wtaps..(g + 1) * cpg_out * wtaps];
            let w8_g: Tensor<i8> = Tensor::from_fn(&[cpg_out, wtaps], |i| codes[i] as i8);
            let w4_g = Int4Packed::pack(&w8_g.map(|v| v >> 4));
            w8_groups.push(w8_g);
            w4_groups.push(w4_g);
        }
        // Static range analysis (SIRA-style): prove once per layer that
        // wrapping-i32 accumulation over `wtaps` MACs cannot lose bits; no
        // per-MAC saturation checks run on the proven path.
        let proof8 = analyze_gemm(Precision::Int8, Precision::Int8, wtaps);
        let proof4 = analyze_gemm(Precision::Int4, Precision::Int4, wtaps);
        Self {
            wq8,
            w8_groups,
            w4_groups,
            wide8: proof8.width == AccumWidth::I64,
            wide4: proof4.width == AccumWidth::I64,
            wtaps,
        }
    }

    /// Bytes held by the packed weight panels (plan-cache accounting).
    pub fn packed_bytes(&self) -> usize {
        let b8: usize = self.w8_groups.iter().map(|t| t.len()).sum();
        let b4: usize = self.w4_groups.iter().map(Int4Packed::packed_bytes).sum();
        b8 + b4
    }
}

/// One request's slice of a coalesced convolution call: its input feature
/// map and its per-image, per-channel sensitivity masks.
#[derive(Debug, Clone, Copy)]
pub struct CoalesceInput<'a> {
    /// Input feature map, `[n, c, h, w]`.
    pub x: &'a Tensor<f32>,
    /// `masks[n][c]` — one mask per image per channel, as in
    /// [`MixedPrecisionConv::forward`].
    pub masks: &'a [Vec<MaskMap>],
}

/// The sensitivity-aware mixed-precision convolution.
///
/// Weights are always stored INT8 (max-abs calibrated). Per input tap:
///
/// * tap over a **sensitive** region → INT8 weight × INT8 activation
///   (case 1 of Fig. 5);
/// * tap over an **insensitive** region → both operands clipped to their
///   high 4 bits and multiplied as INT4 (case 2 of Fig. 5).
///
/// Accumulation happens in one integer domain (INT4 products carry a
/// 2⁴·2⁴ = 256 weight, mirroring the shift-accumulate of the
/// multi-precision PE in Fig. 8), then is dequantized once per output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MixedPrecisionConv;

impl MixedPrecisionConv {
    /// Runs the mixed-precision convolution.
    ///
    /// `masks[n][c]` is the per-channel mask of image `n` (as produced by
    /// [`crate::SensitivityPredictor::predict_image`] on this layer's input).
    ///
    /// Returns the output feature map and the INT4/INT8 MAC split.
    /// Zero-padding taps are counted as INT4 (the line buffer packs padding
    /// as insensitive zeros).
    ///
    /// # Panics
    ///
    /// Panics on any shape inconsistency between `conv`, `x` and `masks`.
    pub fn forward(
        conv: &Conv2d,
        x: &Tensor<f32>,
        masks: &[Vec<MaskMap>],
    ) -> (Tensor<f32>, ConvOpCounts) {
        let s = Self::validate(conv, x, masks);
        let aq8 = QuantParams::fit(x.as_slice(), Precision::Int8);
        let wq8 = QuantParams::fit(conv.weight().as_slice(), Precision::Int8);
        let out_shape = conv.output_shape(s);
        let mut out = Tensor::<f32>::zeros(&out_shape.as_array());

        let k = conv.kernel();
        let stride = conv.stride();
        let pad = conv.pad_isize();
        let groups = conv.groups();
        let cpg_in = s.c / groups;
        let cpg_out = conv.out_channels() / groups;
        let bias = conv.bias().as_slice();
        let dequant = aq8.scale() * wq8.scale();

        // Pre-quantized activations at INT8 (INT4 codes derive by >> 4),
        // through the shared Quantizer interface.
        let x8_t = Quantizer::quantize(&aq8, x);
        let w8_t = Quantizer::quantize(&wq8, conv.weight());
        let (x8, w8) = (x8_t.as_slice(), w8_t.as_slice());
        let wtaps = cpg_in * k * k;
        let img_len = conv.out_channels() * out_shape.h * out_shape.w;

        // Images are independent: each worker builds its own sensitivity
        // bitmap and output slab, and the integer accumulation per output
        // pixel is fully ordered by the tap loops — so the result is
        // bit-identical for every thread count (integer MAC counts are
        // exact regardless of merge order anyway).
        let per_image = parallel::par_map(s.n, |n| {
            // Per-channel sensitivity bitmap: one byte per pixel beats a
            // region lookup (divisions) in the innermost loop.
            let mut sens = vec![0u8; s.c * s.h * s.w];
            let image_masks = &masks[n];
            for (c, mask) in image_masks.iter().enumerate() {
                let base = c * s.h * s.w;
                for iy in 0..s.h {
                    for ix in 0..s.w {
                        sens[base + iy * s.w + ix] = u8::from(mask.pixel_sensitive(iy, ix));
                    }
                }
            }
            let mut oimg = vec![0.0f32; img_len];
            let mut counts = ConvOpCounts::default();
            for g in 0..groups {
                for oc_local in 0..cpg_out {
                    let oc = g * cpg_out + oc_local;
                    for oy in 0..out_shape.h {
                        for ox in 0..out_shape.w {
                            let mut acc: i64 = 0;
                            for ic_local in 0..cpg_in {
                                let ic = g * cpg_in + ic_local;
                                let sens_c = &sens[ic * s.h * s.w..(ic + 1) * s.h * s.w];
                                for ky in 0..k {
                                    let iy = (oy * stride + ky) as isize - pad;
                                    for kx in 0..k {
                                        let ix = (ox * stride + kx) as isize - pad;
                                        let woff = oc * wtaps
                                            + (ic_local * k + ky) * k
                                            + kx;
                                        let inside = iy >= 0
                                            && (iy as usize) < s.h
                                            && ix >= 0
                                            && (ix as usize) < s.w;
                                        if !inside {
                                            // Padding: zero INT4 operand.
                                            counts.int4_macs += 1;
                                            continue;
                                        }
                                        let (iy, ix) = (iy as usize, ix as usize);
                                        let q_x = x8[s.offset(n, ic, iy, ix)];
                                        let q_w = w8[woff];
                                        if sens_c[iy * s.w + ix] == 1 {
                                            counts.int8_macs += 1;
                                            acc += (q_w as i64) * (q_x as i64);
                                        } else {
                                            counts.int4_macs += 1;
                                            // High 4 bits of each operand
                                            // (arithmetic shift), product
                                            // re-scaled by 16*16.
                                            let w4 = q_w >> 4;
                                            let x4 = q_x >> 4;
                                            acc += (w4 as i64) * (x4 as i64) * 256;
                                        }
                                    }
                                }
                            }
                            oimg[(oc * out_shape.h + oy) * out_shape.w + ox] =
                                acc as f32 * dequant + bias[oc];
                        }
                    }
                }
            }
            (oimg, counts)
        });

        let mut counts = ConvOpCounts::default();
        let ov = out.as_mut_slice();
        for (n, (oimg, c)) in per_image.into_iter().enumerate() {
            ov[n * img_len..(n + 1) * img_len].copy_from_slice(&oimg);
            counts.merge(c);
        }
        (out, counts)
    }

    /// Shape/mask validation shared by both tiers.
    fn validate(conv: &Conv2d, x: &Tensor<f32>, masks: &[Vec<MaskMap>]) -> Shape4 {
        let s = x.shape4().expect("conv input must be rank 4");
        assert_eq!(s.c, conv.in_channels(), "channel mismatch");
        assert_eq!(masks.len(), s.n, "need one mask set per image");
        for (n, per_channel) in masks.iter().enumerate() {
            assert_eq!(per_channel.len(), s.c, "image {n}: need one mask per channel");
            for m in per_channel {
                assert_eq!(
                    (m.grid().height(), m.grid().width()),
                    (s.h, s.w),
                    "mask grid does not cover the feature map"
                );
            }
        }
        s
    }

    /// Runs the mixed-precision convolution on the selected compute tier.
    ///
    /// Tier outputs are bit-equal (same quantization semantics, same
    /// exact integer sums, same final float conversion) and the op-count
    /// split is identical; [`ComputeTier::Int`] just executes the MACs on
    /// the packed integer GEMM kernels instead of the scalar tap loop.
    ///
    /// # Panics
    ///
    /// Panics on any shape inconsistency between `conv`, `x` and `masks`.
    pub fn forward_tiered(
        conv: &Conv2d,
        x: &Tensor<f32>,
        masks: &[Vec<MaskMap>],
        tier: ComputeTier,
    ) -> (Tensor<f32>, ConvOpCounts) {
        match tier {
            ComputeTier::F32 => Self::forward(conv, x, masks),
            ComputeTier::Int => Self::forward_int(conv, x, masks),
        }
    }

    /// The integer-tier execution: lowers the masked convolution onto the
    /// packed integer GEMM kernels.
    ///
    /// Per image and channel group, the input codes expand into two
    /// im2col operand matrices over the same `(ic, ky, kx) × (oy, ox)`
    /// index space:
    ///
    /// * `X8` — INT8 codes where the source pixel is sensitive, else 0;
    /// * `X4` — INT4 codes (`q >> 4`) where it is insensitive (padding
    ///   included as zero), else 0.
    ///
    /// Because each tap is sensitive XOR insensitive, the two masked
    /// products partition the reference tap loop's sum exactly:
    /// `acc = W8·X8 + 256 · (W4·X4)` with `W4 = W8 >> 4` nibble-packed.
    /// The INT8 product runs i8×i8 and the INT4 product the nibble-INT4
    /// kernel; both use wrapping-i32 accumulation when the range analysis
    /// proves the depth safe (the overwhelmingly common case — see
    /// `drq_quant::analyze_gemm`) and the scalar i64 path otherwise, so
    /// the combined i64 sum always equals the reference accumulator and
    /// the final `acc as f32 * dequant + bias` conversion is bit-exact
    /// against [`ComputeTier::F32`].
    fn forward_int(
        conv: &Conv2d,
        x: &Tensor<f32>,
        masks: &[Vec<MaskMap>],
    ) -> (Tensor<f32>, ConvOpCounts) {
        // Weight operand matrices are image-independent: pack them once.
        let plan = ConvPlan::prepare(conv);
        Self::forward_int_planned(conv, &plan, x, masks)
    }

    /// [`MixedPrecisionConv::forward_tiered`] with a prepared [`ConvPlan`]:
    /// the integer tier skips weight re-quantization/re-packing, the f32
    /// tier ignores the plan (it refits the same values inline). Outputs
    /// are bit-identical to the unplanned call either way.
    ///
    /// # Panics
    ///
    /// Panics on shape inconsistency, or if `plan` was prepared for a
    /// different convolution geometry.
    pub fn forward_planned(
        conv: &Conv2d,
        plan: &ConvPlan,
        x: &Tensor<f32>,
        masks: &[Vec<MaskMap>],
        tier: ComputeTier,
    ) -> (Tensor<f32>, ConvOpCounts) {
        match tier {
            ComputeTier::F32 => Self::forward(conv, x, masks),
            ComputeTier::Int => Self::forward_int_planned(conv, plan, x, masks),
        }
    }

    fn forward_int_planned(
        conv: &Conv2d,
        plan: &ConvPlan,
        x: &Tensor<f32>,
        masks: &[Vec<MaskMap>],
    ) -> (Tensor<f32>, ConvOpCounts) {
        let s = Self::validate(conv, x, masks);
        let aq8 = QuantParams::fit(x.as_slice(), Precision::Int8);
        let out_shape = conv.output_shape(s);
        let mut out = Tensor::<f32>::zeros(&out_shape.as_array());

        let k = conv.kernel();
        let stride = conv.stride();
        let pad = conv.pad_isize();
        let groups = conv.groups();
        let cpg_in = s.c / groups;
        let cpg_out = conv.out_channels() / groups;
        let bias = conv.bias().as_slice();
        let dequant = aq8.scale() * plan.wq8.scale();

        let x8_t = Quantizer::quantize(&aq8, x);
        let x8 = x8_t.as_slice();
        let wtaps = cpg_in * k * k;
        assert_eq!(wtaps, plan.wtaps, "plan prepared for a different conv geometry");
        let npix = out_shape.h * out_shape.w;
        let img_len = conv.out_channels() * npix;
        let (w8_groups, w4_groups) = (&plan.w8_groups, &plan.w4_groups);

        let per_image = parallel::par_map(s.n, |n| {
            let mut sens = vec![0u8; s.c * s.h * s.w];
            let image_masks = &masks[n];
            for (c, mask) in image_masks.iter().enumerate() {
                let base = c * s.h * s.w;
                for iy in 0..s.h {
                    for ix in 0..s.w {
                        sens[base + iy * s.w + ix] = u8::from(mask.pixel_sensitive(iy, ix));
                    }
                }
            }
            let mut oimg = vec![0.0f32; img_len];
            let mut counts = ConvOpCounts::default();
            let mut x8_mat = vec![0i8; wtaps * npix];
            let mut x4_mat = vec![0i8; wtaps * npix];
            for g in 0..groups {
                x8_mat.fill(0);
                x4_mat.fill(0);
                // Masked im2col: one pass over the tap index space fills
                // both operand matrices and tallies the per-tap precision
                // split (identical for every output channel of the group,
                // so the group's counts are the per-tap counts × cpg_out).
                let (mut c8, mut c4) = (0u64, 0u64);
                for ic_local in 0..cpg_in {
                    let ic = g * cpg_in + ic_local;
                    let sens_c = &sens[ic * s.h * s.w..(ic + 1) * s.h * s.w];
                    for ky in 0..k {
                        for kx in 0..k {
                            let row = (ic_local * k + ky) * k + kx;
                            let rbase = row * npix;
                            for oy in 0..out_shape.h {
                                let iy = (oy * stride + ky) as isize - pad;
                                for ox in 0..out_shape.w {
                                    let ix = (ox * stride + kx) as isize - pad;
                                    let inside = iy >= 0
                                        && (iy as usize) < s.h
                                        && ix >= 0
                                        && (ix as usize) < s.w;
                                    if !inside {
                                        // Padding: zero INT4 operand.
                                        c4 += 1;
                                        continue;
                                    }
                                    let (iy, ix) = (iy as usize, ix as usize);
                                    let q_x = x8[s.offset(n, ic, iy, ix)] as i8;
                                    let col = oy * out_shape.w + ox;
                                    if sens_c[iy * s.w + ix] == 1 {
                                        c8 += 1;
                                        x8_mat[rbase + col] = q_x;
                                    } else {
                                        c4 += 1;
                                        x4_mat[rbase + col] = q_x >> 4;
                                    }
                                }
                            }
                        }
                    }
                }
                counts.int8_macs += c8 * cpg_out as u64;
                counts.int4_macs += c4 * cpg_out as u64;

                let x8_g = Tensor::from_vec(std::mem::take(&mut x8_mat), &[wtaps, npix])
                    .expect("im2col operand shape");
                let x4_g = Tensor::from_vec(std::mem::take(&mut x4_mat), &[wtaps, npix])
                    .expect("im2col operand shape");
                counter_add!("kernel/int8_gemm_calls", 1);
                counter_add!("kernel/int8_gemm_macs", (cpg_out * wtaps * npix) as u64);
                let acc8: Vec<i64> = if plan.wide8 {
                    counter_add!("kernel/int8_gemm_wide_fallbacks", 1);
                    int8_matmul_wide(&w8_groups[g], &x8_g).into_vec()
                } else {
                    int8_matmul(&w8_groups[g], &x8_g).as_slice().iter().map(|&v| v as i64).collect()
                };
                counter_add!("kernel/int4_gemm_calls", 1);
                counter_add!("kernel/int4_gemm_macs", (cpg_out * wtaps * npix) as u64);
                let acc4: Vec<i64> = if plan.wide4 {
                    counter_add!("kernel/int4_gemm_wide_fallbacks", 1);
                    int8_matmul_wide(&w4_groups[g].unpack(), &x4_g).into_vec()
                } else {
                    int4_matmul(&w4_groups[g], &x4_g).as_slice().iter().map(|&v| v as i64).collect()
                };
                // Dequantize once per output with fused bias — the exact
                // expression the reference tap loop applies to its i64
                // accumulator.
                let obase = g * cpg_out * npix;
                for oc_local in 0..cpg_out {
                    let oc = g * cpg_out + oc_local;
                    let b = bias[oc];
                    let accs = &acc8[oc_local * npix..][..npix];
                    let acc4s = &acc4[oc_local * npix..][..npix];
                    let orow = &mut oimg[obase + oc_local * npix..][..npix];
                    for ((o, &a8), &a4) in orow.iter_mut().zip(accs).zip(acc4s) {
                        let acc = a8 + 256 * a4;
                        *o = acc as f32 * dequant + b;
                    }
                }
                x8_mat = x8_g.into_vec();
                x4_mat = x4_g.into_vec();
            }
            (oimg, counts)
        });

        let mut counts = ConvOpCounts::default();
        let ov = out.as_mut_slice();
        for (n, (oimg, c)) in per_image.into_iter().enumerate() {
            ov[n * img_len..(n + 1) * img_len].copy_from_slice(&oimg);
            counts.merge(c);
        }
        (out, counts)
    }

    /// Executes one convolution for several independent requests in a
    /// single call — the serving batcher's "one GEMM invocation between
    /// layer boundaries".
    ///
    /// Activation quantization is fit **per request**: each request keeps
    /// exactly the codes it would have alone (coalescing at the tensor
    /// level would re-fit the scale over the concatenation and change
    /// every code). The masked im2col operand matrices are then
    /// column-concatenated across all images of all requests and one INT8
    /// + one INT4 GEMM per channel group covers the whole batch, with the
    /// per-request dequant scale applied per column block. Integer
    /// accumulation is exact and per-output-ordered, so each request's
    /// output and op counts are bit-identical to a sequential
    /// [`MixedPrecisionConv::forward_tiered`] call; the differential suite
    /// holds it to that. The f32 tier has no cross-request kernel to
    /// share and simply loops per request.
    ///
    /// Returns one `(output, counts)` pair per input, in order.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty, on any per-input shape inconsistency,
    /// or if the inputs disagree on `(c, h, w)` (the batcher's
    /// compatibility rule guarantees they never do).
    pub fn forward_coalesced(
        conv: &Conv2d,
        plan: Option<&ConvPlan>,
        inputs: &[CoalesceInput<'_>],
        tier: ComputeTier,
    ) -> Vec<(Tensor<f32>, ConvOpCounts)> {
        assert!(!inputs.is_empty(), "coalesced call needs at least one input");
        match tier {
            ComputeTier::F32 => inputs
                .iter()
                .map(|i| Self::forward(conv, i.x, i.masks))
                .collect(),
            ComputeTier::Int => {
                let prepared;
                let plan = match plan {
                    Some(p) => p,
                    None => {
                        prepared = ConvPlan::prepare(conv);
                        &prepared
                    }
                };
                Self::forward_int_coalesced(conv, plan, inputs)
            }
        }
    }

    fn forward_int_coalesced(
        conv: &Conv2d,
        plan: &ConvPlan,
        inputs: &[CoalesceInput<'_>],
    ) -> Vec<(Tensor<f32>, ConvOpCounts)> {
        let shapes: Vec<Shape4> = inputs
            .iter()
            .map(|i| Self::validate(conv, i.x, i.masks))
            .collect();
        let s0 = shapes[0];
        for s in &shapes {
            assert_eq!(
                (s.c, s.h, s.w),
                (s0.c, s0.h, s0.w),
                "coalesced inputs must share (c, h, w)"
            );
        }
        // Per-request activation calibration + codes (the bit-identity
        // anchor), then a flat (request, image) work list.
        let aqs: Vec<QuantParams> = inputs
            .iter()
            .map(|i| QuantParams::fit(i.x.as_slice(), Precision::Int8))
            .collect();
        let x8s: Vec<Tensor<i32>> = inputs
            .iter()
            .zip(&aqs)
            .map(|(i, aq)| Quantizer::quantize(aq, i.x))
            .collect();
        let imgs: Vec<(usize, usize)> = shapes
            .iter()
            .enumerate()
            .flat_map(|(r, s)| (0..s.n).map(move |n| (r, n)))
            .collect();
        let m = imgs.len();

        let k = conv.kernel();
        let stride = conv.stride();
        let pad = conv.pad_isize();
        let groups = conv.groups();
        let cpg_in = s0.c / groups;
        let cpg_out = conv.out_channels() / groups;
        let bias = conv.bias().as_slice();
        let wtaps = cpg_in * k * k;
        assert_eq!(wtaps, plan.wtaps, "plan prepared for a different conv geometry");
        let out_shape = conv.output_shape(Shape4::new(1, s0.c, s0.h, s0.w));
        let npix = out_shape.h * out_shape.w;

        // Per (request, image): masked im2col column blocks for every
        // group, plus the per-tap precision split. Same fill loop as the
        // single-request path, so the codes land identically.
        let blocks = parallel::par_map(m, |j| {
            let (r, n) = imgs[j];
            let s = shapes[r];
            let x8 = x8s[r].as_slice();
            let mut sens = vec![0u8; s.c * s.h * s.w];
            for (c, mask) in inputs[r].masks[n].iter().enumerate() {
                let base = c * s.h * s.w;
                for iy in 0..s.h {
                    for ix in 0..s.w {
                        sens[base + iy * s.w + ix] = u8::from(mask.pixel_sensitive(iy, ix));
                    }
                }
            }
            let mut per_group = Vec::with_capacity(groups);
            for g in 0..groups {
                let mut x8_mat = vec![0i8; wtaps * npix];
                let mut x4_mat = vec![0i8; wtaps * npix];
                let (mut c8, mut c4) = (0u64, 0u64);
                for ic_local in 0..cpg_in {
                    let ic = g * cpg_in + ic_local;
                    let sens_c = &sens[ic * s.h * s.w..(ic + 1) * s.h * s.w];
                    for ky in 0..k {
                        for kx in 0..k {
                            let row = (ic_local * k + ky) * k + kx;
                            let rbase = row * npix;
                            for oy in 0..out_shape.h {
                                let iy = (oy * stride + ky) as isize - pad;
                                for ox in 0..out_shape.w {
                                    let ix = (ox * stride + kx) as isize - pad;
                                    let inside = iy >= 0
                                        && (iy as usize) < s.h
                                        && ix >= 0
                                        && (ix as usize) < s.w;
                                    if !inside {
                                        // Padding: zero INT4 operand.
                                        c4 += 1;
                                        continue;
                                    }
                                    let (iy, ix) = (iy as usize, ix as usize);
                                    let q_x = x8[s.offset(n, ic, iy, ix)] as i8;
                                    let col = oy * out_shape.w + ox;
                                    if sens_c[iy * s.w + ix] == 1 {
                                        c8 += 1;
                                        x8_mat[rbase + col] = q_x;
                                    } else {
                                        c4 += 1;
                                        x4_mat[rbase + col] = q_x >> 4;
                                    }
                                }
                            }
                        }
                    }
                }
                per_group.push((x8_mat, x4_mat, c8, c4));
            }
            per_group
        });

        // Per-request outputs and tap tallies.
        let mut outs: Vec<Tensor<f32>> = shapes
            .iter()
            .map(|s| Tensor::<f32>::zeros(&conv.output_shape(*s).as_array()))
            .collect();
        let mut counts = vec![ConvOpCounts::default(); inputs.len()];
        for (j, per_group) in blocks.iter().enumerate() {
            let (r, _) = imgs[j];
            for (_, _, c8, c4) in per_group {
                counts[r].int8_macs += c8 * cpg_out as u64;
                counts[r].int4_macs += c4 * cpg_out as u64;
            }
        }

        // One GEMM pair per channel group over the column-concatenated
        // operands: columns [j*npix, (j+1)*npix) belong to flat image j.
        let wide = m * npix;
        for g in 0..groups {
            let mut x8_big = vec![0i8; wtaps * wide];
            let mut x4_big = vec![0i8; wtaps * wide];
            for (j, per_group) in blocks.iter().enumerate() {
                let (x8_mat, x4_mat, _, _) = &per_group[g];
                for row in 0..wtaps {
                    let src = row * npix;
                    let dst = row * wide + j * npix;
                    x8_big[dst..dst + npix].copy_from_slice(&x8_mat[src..src + npix]);
                    x4_big[dst..dst + npix].copy_from_slice(&x4_mat[src..src + npix]);
                }
            }
            let x8_g = Tensor::from_vec(x8_big, &[wtaps, wide]).expect("im2col operand shape");
            let x4_g = Tensor::from_vec(x4_big, &[wtaps, wide]).expect("im2col operand shape");
            counter_add!("kernel/int8_gemm_calls", 1);
            counter_add!("kernel/int8_gemm_macs", (cpg_out * wtaps * wide) as u64);
            let acc8: Vec<i64> = if plan.wide8 {
                counter_add!("kernel/int8_gemm_wide_fallbacks", 1);
                int8_matmul_wide(&plan.w8_groups[g], &x8_g).into_vec()
            } else {
                int8_matmul(&plan.w8_groups[g], &x8_g)
                    .as_slice()
                    .iter()
                    .map(|&v| v as i64)
                    .collect()
            };
            counter_add!("kernel/int4_gemm_calls", 1);
            counter_add!("kernel/int4_gemm_macs", (cpg_out * wtaps * wide) as u64);
            let acc4: Vec<i64> = if plan.wide4 {
                counter_add!("kernel/int4_gemm_wide_fallbacks", 1);
                int8_matmul_wide(&plan.w4_groups[g].unpack(), &x4_g).into_vec()
            } else {
                int4_matmul(&plan.w4_groups[g], &x4_g)
                    .as_slice()
                    .iter()
                    .map(|&v| v as i64)
                    .collect()
            };
            // Dequantize per column block with the owning request's scale
            // — the exact expression the sequential path applies.
            for (j, &(r, n)) in imgs.iter().enumerate() {
                let dequant = aqs[r].scale() * plan.wq8.scale();
                let ov = outs[r].as_mut_slice();
                let img_base = n * conv.out_channels() * npix;
                for oc_local in 0..cpg_out {
                    let oc = g * cpg_out + oc_local;
                    let b = bias[oc];
                    let accs = &acc8[oc_local * wide + j * npix..][..npix];
                    let acc4s = &acc4[oc_local * wide + j * npix..][..npix];
                    let orow = &mut ov[img_base + oc * npix..][..npix];
                    for ((o, &a8), &a4) in orow.iter_mut().zip(accs).zip(acc4s) {
                        let acc = a8 + 256 * a4;
                        *o = acc as f32 * dequant + b;
                    }
                }
            }
        }
        outs.into_iter().zip(counts).collect()
    }

    /// [`MixedPrecisionConv::forward_uniform`] on the selected tier.
    pub fn forward_uniform_tiered(
        conv: &Conv2d,
        x: &Tensor<f32>,
        precision: Precision,
        tier: ComputeTier,
    ) -> (Tensor<f32>, ConvOpCounts) {
        let s = x.shape4().expect("conv input must be rank 4");
        let masks = uniform_masks(s, !matches!(precision, Precision::Int4));
        Self::forward_tiered(conv, x, &masks, tier)
    }

    /// Runs the same integer pipeline at one uniform precision everywhere
    /// (used for the Eyeriss/BitFusion-style uniform baselines and for
    /// validating the mixed path's two extremes).
    pub fn forward_uniform(
        conv: &Conv2d,
        x: &Tensor<f32>,
        precision: Precision,
    ) -> (Tensor<f32>, ConvOpCounts) {
        let s = x.shape4().expect("conv input must be rank 4");
        let grid = crate::RegionGrid::new(s.h, s.w, crate::RegionSize::new(s.h, s.w));
        let mask = match precision {
            Precision::Int4 => MaskMap::all_insensitive(grid),
            _ => MaskMap::all_sensitive(grid),
        };
        let masks: Vec<Vec<MaskMap>> = (0..s.n)
            .map(|_| (0..s.c).map(|_| mask.clone()).collect())
            .collect();
        Self::forward(conv, x, &masks)
    }
}

/// Extension used internally: `Conv2d` exposes `padding()` as usize; the
/// tap loop needs it signed.
trait PadIsize {
    fn pad_isize(&self) -> isize;
}

impl PadIsize for Conv2d {
    fn pad_isize(&self) -> isize {
        self.padding() as isize
    }
}

/// Builds per-image, per-channel masks that are uniformly sensitive (all
/// INT8) or uniformly insensitive (all INT4) over an input `shape` — the
/// degenerate mask sets that turn [`MixedPrecisionConv`] into a uniform
/// quantized convolution.
///
/// # Examples
///
/// ```
/// use drq_core::uniform_masks;
/// use drq_tensor::Shape4;
///
/// let masks = uniform_masks(Shape4::new(2, 3, 8, 8), false);
/// assert_eq!(masks.len(), 2);
/// assert_eq!(masks[0].len(), 3);
/// assert_eq!(masks[0][0].sensitive_count(), 0);
/// ```
pub fn uniform_masks(shape: Shape4, sensitive: bool) -> Vec<Vec<MaskMap>> {
    let grid = crate::RegionGrid::new(shape.h, shape.w, crate::RegionSize::new(shape.h, shape.w));
    let mask = if sensitive {
        MaskMap::all_sensitive(grid)
    } else {
        MaskMap::all_insensitive(grid)
    };
    (0..shape.n)
        .map(|_| (0..shape.c).map(|_| mask.clone()).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RegionGrid, RegionSize, SensitivityPredictor};
    use drq_tensor::XorShiftRng;

    fn random_conv_and_input(seed: u64) -> (Conv2d, Tensor<f32>) {
        let conv = Conv2d::new(2, 3, 3, 1, 1, seed);
        let mut rng = XorShiftRng::new(seed + 100);
        // Post-ReLU-like input: non-negative, sparse large values.
        let x = Tensor::from_fn(&[1, 2, 8, 8], |_| {
            let v = rng.next_normal();
            if v > 1.0 {
                v
            } else {
                (v * 0.05).max(0.0)
            }
        });
        (conv, x)
    }

    /// Taps of a 3x3/s1/p1 conv that fall into the zero padding (these are
    /// always counted as INT4, regardless of the masks).
    fn padding_taps(conv: &Conv2d, s: drq_tensor::Shape4) -> u64 {
        let k = conv.kernel() as isize;
        let pad = conv.padding() as isize;
        let stride = conv.stride() as isize;
        let out = conv.output_shape(s);
        let mut outside = 0u64;
        for oy in 0..out.h as isize {
            for ox in 0..out.w as isize {
                for ky in 0..k {
                    for kx in 0..k {
                        let iy = oy * stride + ky - pad;
                        let ix = ox * stride + kx - pad;
                        if iy < 0 || iy >= s.h as isize || ix < 0 || ix >= s.w as isize {
                            outside += 1;
                        }
                    }
                }
            }
        }
        outside * (s.n * conv.out_channels() * (s.c / conv.groups())) as u64
    }

    #[test]
    fn all_sensitive_matches_int8_reference() {
        // With every region sensitive, the mixed conv is a plain INT8 conv;
        // its output must track the float conv within quantization error.
        let (mut conv, x) = random_conv_and_input(1);
        let masks = uniform_masks(x.shape4().unwrap(), true);
        let (y_mixed, counts) = MixedPrecisionConv::forward(&conv, &x, &masks);
        let y_ref = conv.forward(&x, false);
        // Only the zero-padding taps run INT4.
        assert_eq!(counts.int4_macs, padding_taps(&conv, x.shape4().unwrap()));
        let denom = y_ref.max_abs().max(1e-6);
        for (a, b) in y_mixed.as_slice().iter().zip(y_ref.as_slice()) {
            assert!((a - b).abs() / denom < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn all_insensitive_is_coarser_but_correlated() {
        let (mut conv, x) = random_conv_and_input(2);
        let masks4 = uniform_masks(x.shape4().unwrap(), false);
        let (y4, c4) = MixedPrecisionConv::forward(&conv, &x, &masks4);
        let y_ref = conv.forward(&x, false);
        assert_eq!(c4.int8_macs, 0);
        // INT4 output correlates strongly with the float output.
        let dot: f32 = y4
            .as_slice()
            .iter()
            .zip(y_ref.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let n4: f32 = y4.as_slice().iter().map(|v| v * v).sum::<f32>().sqrt();
        let nr: f32 = y_ref.as_slice().iter().map(|v| v * v).sum::<f32>().sqrt();
        let corr = dot / (n4 * nr).max(1e-9);
        assert!(corr > 0.8, "correlation {corr}");
    }

    #[test]
    fn mixed_error_between_extremes() {
        // Error(all-INT8) <= Error(mixed) <= Error(all-INT4), measured
        // against the float reference.
        let (mut conv, x) = random_conv_and_input(3);
        let y_ref = conv.forward(&x, false);
        let err = |y: &Tensor<f32>| {
            y.as_slice()
                .iter()
                .zip(y_ref.as_slice())
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f32>()
        };
        let predictor = SensitivityPredictor::new(RegionSize::new(4, 4), 5.0);
        let dyn_masks = vec![predictor.predict_image(&x, 0)];
        let (y8, _) = MixedPrecisionConv::forward(&conv, &x, &uniform_masks(x.shape4().unwrap(), true));
        let (ym, cm) = MixedPrecisionConv::forward(&conv, &x, &dyn_masks);
        let (y4, _) = MixedPrecisionConv::forward(&conv, &x, &uniform_masks(x.shape4().unwrap(), false));
        assert!(cm.int4_macs > 0 && cm.int8_macs > 0, "mask is degenerate: {cm:?}");
        assert!(err(&y8) <= err(&ym) + 1e-3, "{} vs {}", err(&y8), err(&ym));
        assert!(err(&ym) <= err(&y4) + 1e-3, "{} vs {}", err(&ym), err(&y4));
    }

    #[test]
    fn op_counts_cover_every_tap() {
        let (conv, x) = random_conv_and_input(4);
        let masks = uniform_masks(x.shape4().unwrap(), false);
        let (_, counts) = MixedPrecisionConv::forward(&conv, &x, &masks);
        // Total taps = out_c * OH * OW * in_c * k * k (padding included).
        assert_eq!(counts.total(), 3 * 8 * 8 * 2 * 9);
        assert_eq!(counts.total(), conv.mac_count(x.shape4().unwrap()));
    }

    #[test]
    fn sensitive_blob_triggers_int8_only_near_blob() {
        // One bright region; taps near it run INT8, the far corner runs INT4.
        let conv = Conv2d::new(1, 1, 3, 1, 1, 5);
        let mut x = Tensor::<f32>::zeros(&[1, 1, 8, 8]);
        for h in 0..4 {
            for w in 0..4 {
                x[[0, 0, h, w]] = 1.0;
            }
        }
        let grid = RegionGrid::new(8, 8, RegionSize::new(4, 4));
        let mut mask = MaskMap::all_insensitive(grid);
        mask.set(0, 0, true);
        let (_, counts) = MixedPrecisionConv::forward(&conv, &x, &[vec![mask]]);
        assert!(counts.int8_macs > 0);
        assert!(counts.int4_macs > counts.int8_macs, "{counts:?}");
        // 16 sensitive pixels, each touched by up to 9 kernel positions.
        assert!(counts.int8_macs <= 16 * 9);
    }

    #[test]
    fn forward_uniform_dispatches_by_precision() {
        let (conv, x) = random_conv_and_input(6);
        let (_, c8) = MixedPrecisionConv::forward_uniform(&conv, &x, Precision::Int8);
        let (_, c4) = MixedPrecisionConv::forward_uniform(&conv, &x, Precision::Int4);
        // INT8 mode: only the padding taps run INT4.
        assert_eq!(c8.int4_macs, padding_taps(&conv, x.shape4().unwrap()));
        assert_eq!(c4.int8_macs, 0);
        assert_eq!(c8.total(), c4.total());
    }

    #[test]
    fn int4_equivalent_ops_weighting() {
        let counts = ConvOpCounts { int4_macs: 10, int8_macs: 10 };
        assert_eq!(counts.int4_equivalent_ops(), 50);
    }

    #[test]
    fn batched_forward_bits_stable_across_thread_counts() {
        // Batch of 3 (doesn't divide the worker counts) with per-image
        // dynamic masks; output and op counts must be bit-identical for
        // every thread count.
        let conv = Conv2d::new(2, 3, 3, 2, 1, 13);
        let mut rng = XorShiftRng::new(29);
        let x = Tensor::from_fn(&[3, 2, 9, 7], |_| rng.next_normal().max(0.0));
        let predictor = SensitivityPredictor::new(RegionSize::new(3, 3), 10.0);
        let masks: Vec<Vec<MaskMap>> = (0..3).map(|n| predictor.predict_image(&x, n)).collect();
        drq_tensor::parallel::set_max_threads(1);
        let (y1, c1) = MixedPrecisionConv::forward(&conv, &x, &masks);
        for t in [2, 8] {
            drq_tensor::parallel::set_max_threads(t);
            let (yt, ct) = MixedPrecisionConv::forward(&conv, &x, &masks);
            assert_eq!(yt, y1, "output changed at {t} threads");
            assert_eq!(ct, c1, "op counts changed at {t} threads");
        }
        drq_tensor::parallel::set_max_threads(0);
    }

    #[test]
    fn int_tier_bit_exact_vs_f32_tier() {
        // The integer GEMM tier must reproduce the reference tap loop's
        // output *bits* and op counts — same quantization semantics, only
        // the MAC execution differs.
        let (conv, x) = random_conv_and_input(8);
        let predictor = SensitivityPredictor::new(RegionSize::new(4, 4), 5.0);
        let masks = vec![predictor.predict_image(&x, 0)];
        let (y_f32, c_f32) = MixedPrecisionConv::forward_tiered(&conv, &x, &masks, ComputeTier::F32);
        let (y_int, c_int) = MixedPrecisionConv::forward_tiered(&conv, &x, &masks, ComputeTier::Int);
        assert!(c_int.int4_macs > 0 && c_int.int8_macs > 0, "degenerate mask: {c_int:?}");
        assert_eq!(y_int, y_f32);
        assert_eq!(c_int, c_f32);
    }

    #[test]
    fn int_tier_matches_on_grouped_strided_conv() {
        // Groups, stride 2 and odd spatial extents exercise the per-group
        // GEMM lowering and the padding/tail bookkeeping.
        let conv = Conv2d::with_groups(4, 6, 3, 2, 1, 2, 31);
        let mut rng = XorShiftRng::new(37);
        let x = Tensor::from_fn(&[2, 4, 9, 7], |_| rng.next_normal());
        let predictor = SensitivityPredictor::new(RegionSize::new(3, 3), 8.0);
        let masks: Vec<_> = (0..2).map(|n| predictor.predict_image(&x, n)).collect();
        let (y_f32, c_f32) = MixedPrecisionConv::forward(&conv, &x, &masks);
        let (y_int, c_int) = MixedPrecisionConv::forward_tiered(&conv, &x, &masks, ComputeTier::Int);
        assert_eq!(y_int, y_f32);
        assert_eq!(c_int, c_f32);
    }

    #[test]
    fn int_tier_uniform_extremes_match() {
        let (conv, x) = random_conv_and_input(9);
        for precision in [Precision::Int8, Precision::Int4] {
            let (y_f32, c_f32) = MixedPrecisionConv::forward_uniform(&conv, &x, precision);
            let (y_int, c_int) =
                MixedPrecisionConv::forward_uniform_tiered(&conv, &x, precision, ComputeTier::Int);
            assert_eq!(y_int, y_f32, "{precision:?}");
            assert_eq!(c_int, c_f32, "{precision:?}");
        }
    }

    #[test]
    fn int_tier_bits_stable_across_thread_counts() {
        let conv = Conv2d::new(2, 3, 3, 2, 1, 13);
        let mut rng = XorShiftRng::new(29);
        let x = Tensor::from_fn(&[3, 2, 9, 7], |_| rng.next_normal().max(0.0));
        let predictor = SensitivityPredictor::new(RegionSize::new(3, 3), 10.0);
        let masks: Vec<Vec<MaskMap>> = (0..3).map(|n| predictor.predict_image(&x, n)).collect();
        drq_tensor::parallel::set_max_threads(1);
        let (y1, c1) = MixedPrecisionConv::forward_tiered(&conv, &x, &masks, ComputeTier::Int);
        for t in [2, 8] {
            drq_tensor::parallel::set_max_threads(t);
            let (yt, ct) = MixedPrecisionConv::forward_tiered(&conv, &x, &masks, ComputeTier::Int);
            assert_eq!(yt, y1, "output changed at {t} threads");
            assert_eq!(ct, c1, "op counts changed at {t} threads");
        }
        drq_tensor::parallel::set_max_threads(0);
    }

    #[test]
    fn planned_forward_is_bit_identical_to_unplanned() {
        let (conv, x) = random_conv_and_input(11);
        let predictor = SensitivityPredictor::new(RegionSize::new(4, 4), 5.0);
        let masks = vec![predictor.predict_image(&x, 0)];
        let plan = ConvPlan::prepare(&conv);
        assert!(plan.packed_bytes() > 0);
        for tier in [ComputeTier::F32, ComputeTier::Int] {
            let (y, c) = MixedPrecisionConv::forward_tiered(&conv, &x, &masks, tier);
            let (yp, cp) = MixedPrecisionConv::forward_planned(&conv, &plan, &x, &masks, tier);
            assert_eq!(yp, y, "{tier:?}");
            assert_eq!(cp, c, "{tier:?}");
        }
    }

    /// Three requests with different batch sizes and different activation
    /// scales: the coalesced call must reproduce each sequential result
    /// bit-for-bit on both tiers (per-request aq fitting is what makes the
    /// differing scales a real test).
    #[test]
    fn coalesced_matches_sequential_bitwise() {
        let conv = Conv2d::new(2, 3, 3, 1, 1, 21);
        let predictor = SensitivityPredictor::new(RegionSize::new(4, 4), 5.0);
        let mut rng = XorShiftRng::new(77);
        let xs: Vec<Tensor<f32>> = [1usize, 3, 2]
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let scale = 1.0 + i as f32 * 7.5;
                Tensor::from_fn(&[n, 2, 8, 8], |_| rng.next_normal().max(0.0) * scale)
            })
            .collect();
        let masks: Vec<Vec<Vec<MaskMap>>> = xs
            .iter()
            .map(|x| {
                let n = x.shape4().unwrap().n;
                (0..n).map(|i| predictor.predict_image(x, i)).collect()
            })
            .collect();
        let inputs: Vec<CoalesceInput<'_>> = xs
            .iter()
            .zip(&masks)
            .map(|(x, m)| CoalesceInput { x, masks: m })
            .collect();
        let plan = ConvPlan::prepare(&conv);
        for tier in [ComputeTier::F32, ComputeTier::Int] {
            let coalesced = MixedPrecisionConv::forward_coalesced(&conv, Some(&plan), &inputs, tier);
            assert_eq!(coalesced.len(), 3);
            for (input, (yc, cc)) in inputs.iter().zip(&coalesced) {
                let (ys, cs) = MixedPrecisionConv::forward_tiered(&conv, input.x, input.masks, tier);
                assert_eq!(yc, &ys, "{tier:?}");
                assert_eq!(cc, &cs, "{tier:?}");
            }
        }
        // Without a plan the int tier prepares one internally — same bits.
        let unplanned = MixedPrecisionConv::forward_coalesced(&conv, None, &inputs, ComputeTier::Int);
        let planned = MixedPrecisionConv::forward_coalesced(&conv, Some(&plan), &inputs, ComputeTier::Int);
        assert_eq!(unplanned, planned);
    }

    #[test]
    fn coalesced_grouped_strided_conv_matches() {
        let conv = Conv2d::with_groups(4, 6, 3, 2, 1, 2, 31);
        let predictor = SensitivityPredictor::new(RegionSize::new(3, 3), 8.0);
        let mut rng = XorShiftRng::new(41);
        let xs: Vec<Tensor<f32>> = (0..2)
            .map(|_| Tensor::from_fn(&[2, 4, 9, 7], |_| rng.next_normal()))
            .collect();
        let masks: Vec<Vec<Vec<MaskMap>>> = xs
            .iter()
            .map(|x| (0..2).map(|i| predictor.predict_image(x, i)).collect())
            .collect();
        let inputs: Vec<CoalesceInput<'_>> = xs
            .iter()
            .zip(&masks)
            .map(|(x, m)| CoalesceInput { x, masks: m })
            .collect();
        let coalesced = MixedPrecisionConv::forward_coalesced(&conv, None, &inputs, ComputeTier::Int);
        for (input, (yc, cc)) in inputs.iter().zip(&coalesced) {
            let (ys, cs) = MixedPrecisionConv::forward(&conv, input.x, input.masks);
            assert_eq!(yc, &ys);
            assert_eq!(cc, &cs);
        }
    }

    #[test]
    #[should_panic(expected = "share (c, h, w)")]
    fn coalesced_rejects_mismatched_spatial_shapes() {
        let conv = Conv2d::new(1, 2, 3, 1, 1, 3);
        let a = Tensor::<f32>::zeros(&[1, 1, 8, 8]);
        let b = Tensor::<f32>::zeros(&[1, 1, 6, 6]);
        let ma = uniform_masks(a.shape4().unwrap(), true);
        let mb = uniform_masks(b.shape4().unwrap(), true);
        let inputs = [
            CoalesceInput { x: &a, masks: &ma },
            CoalesceInput { x: &b, masks: &mb },
        ];
        let _ = MixedPrecisionConv::forward_coalesced(&conv, None, &inputs, ComputeTier::Int);
    }

    #[test]
    #[should_panic(expected = "mask grid")]
    fn rejects_mismatched_mask_grid() {
        let (conv, x) = random_conv_and_input(7);
        let bad_grid = RegionGrid::new(4, 4, RegionSize::new(2, 2));
        let masks = vec![vec![
            MaskMap::all_sensitive(bad_grid),
            MaskMap::all_sensitive(bad_grid),
        ]];
        let _ = MixedPrecisionConv::forward(&conv, &x, &masks);
    }
}
