//! The DRQ algorithm (Section III of the paper).
//!
//! This crate implements the paper's primary algorithmic contribution:
//!
//! * [`RegionSize`]/[`RegionGrid`] — the x×y rectangles that partition each
//!   feature map into regions (Section II-B);
//! * [`SensitivityPredictor`] — mean filtering over each region plus a step
//!   threshold, producing a binary [`MaskMap`] per channel (Section III-B);
//! * [`MixedPrecisionConv`] — the sensitivity-aware convolution that runs
//!   INT8 over sensitive regions and INT4 (with weights clipped from INT8)
//!   over insensitive ones (Section III-C), with exact INT4/INT8 MAC
//!   accounting;
//! * [`DrqNetwork`] — a wrapper that runs a `drq-nn` network with dynamic
//!   per-image region quantization at every convolution;
//! * [`dse`] — the design-space exploration of Section III-D (threshold and
//!   region-size selection, including the deep-layer scaling rules of
//!   Section VI-B2);
//! * [`segments`] — visualization of sensitive regions (Fig. 3).
//!
//! # Examples
//!
//! ```
//! use drq_core::{RegionSize, SensitivityPredictor};
//! use drq_tensor::Tensor;
//!
//! let x = Tensor::from_fn(&[1, 1, 8, 8], |i| if i < 16 { 3.0 } else { 0.0 });
//! let predictor = SensitivityPredictor::new(RegionSize::new(4, 4), 1.0);
//! let masks = predictor.predict(&x);
//! // Top-left blob makes the first region row sensitive.
//! assert!(masks[0].is_sensitive(0, 0));
//! assert!(!masks[0].is_sensitive(1, 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calibration;
mod config;
mod drq_net;
mod error;
mod finetune;
pub mod dse;
mod mask;
mod mixed_conv;
mod predictor;
mod region;
pub mod segments;

pub use calibration::{calibrate_thresholds, LayerThresholds};
pub use config::{DrqConfig, LayerDrqConfig};
pub use drq_net::{DrqLayerStats, DrqNetwork, DrqRunStats};
pub use error::DrqError;
pub use finetune::{finetune, finetune_step};
pub use mask::MaskMap;
pub use mixed_conv::{
    uniform_masks, CoalesceInput, ComputeTier, ConvOpCounts, ConvPlan, MixedPrecisionConv,
};
pub use predictor::SensitivityPredictor;
pub use region::{RegionGrid, RegionSize};
