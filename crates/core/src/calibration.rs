//! Per-layer threshold calibration.
//!
//! Table III's thresholds are *averages*: "the thresholds are set to
//! different integer numbers for different layers". This module derives
//! those per-layer integer thresholds from calibration data — sample
//! feature maps observed at each convolution input — by choosing, per
//! layer, the smallest integer threshold whose sensitive-region fraction
//! does not exceed a target. Holding the sensitive fraction (rather than
//! the threshold) constant across layers is what keeps the INT4 percentage
//! stable as activation statistics drift with depth.

use crate::{DrqConfig, MaskMap, RegionSize, SensitivityPredictor};
use drq_nn::Network;
use drq_tensor::Tensor;

/// A calibrated per-layer threshold schedule.
///
/// # Examples
///
/// ```
/// use drq_core::{LayerThresholds, RegionSize};
///
/// let t = LayerThresholds::new(RegionSize::new(4, 4), vec![24.0, 18.0, 5.0]);
/// assert_eq!(t.threshold_for(1), 18.0);
/// // Layers beyond the calibrated set reuse the last threshold.
/// assert_eq!(t.threshold_for(9), 5.0);
/// assert!((t.average() - (24.0 + 18.0 + 5.0) / 3.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LayerThresholds {
    region: RegionSize,
    thresholds: Vec<f32>,
}

impl LayerThresholds {
    /// Creates a schedule from explicit per-layer thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `thresholds` is empty or contains a negative value.
    pub fn new(region: RegionSize, thresholds: Vec<f32>) -> Self {
        assert!(!thresholds.is_empty(), "need at least one layer threshold");
        assert!(
            thresholds.iter().all(|t| t.is_finite() && *t >= 0.0),
            "thresholds must be non-negative"
        );
        Self { region, thresholds }
    }

    /// The region size the schedule was calibrated for.
    pub fn region(&self) -> RegionSize {
        self.region
    }

    /// Threshold for convolution layer `index` (clamped to the last
    /// calibrated layer).
    pub fn threshold_for(&self, index: usize) -> f32 {
        self.thresholds[index.min(self.thresholds.len() - 1)]
    }

    /// All calibrated thresholds in layer order.
    pub fn thresholds(&self) -> &[f32] {
        &self.thresholds
    }

    /// The average threshold — the quantity Table III reports per network.
    pub fn average(&self) -> f32 {
        self.thresholds.iter().sum::<f32>() / self.thresholds.len() as f32
    }

    /// Collapses the schedule to a uniform [`DrqConfig`] at the average
    /// threshold (useful when a consumer only supports one threshold).
    pub fn to_uniform_config(&self) -> DrqConfig {
        DrqConfig::new(self.region, self.average())
    }
}

/// Calibrates per-layer integer thresholds on a trained network.
///
/// For each convolution input observed while running `samples` through
/// `net`, the smallest integer threshold in `[0, 127]` whose mean
/// sensitive-region fraction is at most `target_sensitive_fraction` is
/// selected (binary search over the integer domain — the step activation
/// makes the fraction monotone in the threshold).
///
/// # Panics
///
/// Panics if the target is outside `(0, 1]`, `samples` is empty, or the
/// network has no convolutions.
///
/// # Examples
///
/// ```
/// use drq_core::{calibrate_thresholds, RegionSize};
/// use drq_nn::{Conv2d, Layer, Network, ReLU};
/// use drq_tensor::Tensor;
///
/// let mut net = Network::new(vec![
///     Layer::from(Conv2d::new(1, 2, 3, 1, 1, 1)),
///     Layer::from(ReLU::new()),
/// ]);
/// let samples = Tensor::from_fn(&[2, 1, 8, 8], |i| (i % 7) as f32 * 0.1);
/// let schedule = calibrate_thresholds(&mut net, &samples, RegionSize::new(4, 4), 0.25);
/// assert_eq!(schedule.thresholds().len(), 1);
/// ```
pub fn calibrate_thresholds(
    net: &mut Network,
    samples: &Tensor<f32>,
    region: RegionSize,
    target_sensitive_fraction: f64,
) -> LayerThresholds {
    assert!(
        target_sensitive_fraction > 0.0 && target_sensitive_fraction <= 1.0,
        "target fraction must be in (0, 1]"
    );
    assert!(!samples.is_empty(), "need calibration samples");
    let conv_count = net.conv_count();
    assert!(conv_count > 0, "network has no convolutions");

    // Collect every conv input once.
    let mut inputs: Vec<Tensor<f32>> = Vec::with_capacity(conv_count);
    let _ = net.forward_tapped(samples, &mut |tap| {
        inputs.push(tap.input.clone());
    });

    let thresholds = inputs
        .iter()
        .map(|x| {
            let s = x.shape4().expect("conv input rank");
            let layer_region = region.clamped_to(s.h, s.w);
            let frac_at = |t: f32| -> f64 {
                let p = SensitivityPredictor::new(layer_region, t);
                let mut acc = 0.0;
                for n in 0..s.n {
                    acc += p
                        .predict_image(x, n)
                        .iter()
                        .map(MaskMap::sensitive_fraction)
                        .sum::<f64>()
                        / s.c as f64;
                }
                acc / s.n as f64
            };
            // Binary search the smallest integer threshold meeting the
            // target (fraction is non-increasing in the threshold).
            let (mut lo, mut hi) = (0u32, 127u32);
            if frac_at(0.0) <= target_sensitive_fraction {
                return 0.0;
            }
            while lo + 1 < hi {
                let mid = (lo + hi) / 2;
                if frac_at(mid as f32) <= target_sensitive_fraction {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            hi as f32
        })
        .collect();
    LayerThresholds::new(region, thresholds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drq_nn::{Conv2d, Layer, Pool2d, PoolKind, ReLU};
    use drq_tensor::XorShiftRng;

    fn two_conv_net(seed: u64) -> Network {
        Network::new(vec![
            Layer::from(Conv2d::new(1, 4, 3, 1, 1, seed)),
            Layer::from(ReLU::new()),
            Layer::from(Pool2d::new(PoolKind::Avg, 2, 2)),
            Layer::from(Conv2d::new(4, 4, 3, 1, 1, seed + 1)),
        ])
    }

    fn blobby_batch(seed: u64) -> Tensor<f32> {
        let mut rng = XorShiftRng::new(seed);
        Tensor::from_fn(&[4, 1, 16, 16], |i| {
            let p = i % 256;
            let (h, w) = (p / 16, p % 16);
            if h < 5 && w < 5 {
                0.8 + 0.2 * rng.next_f32()
            } else {
                0.02 * rng.next_f32()
            }
        })
    }

    #[test]
    fn calibration_meets_the_target() {
        let mut net = two_conv_net(3);
        let x = blobby_batch(4);
        let target = 0.15;
        let schedule = calibrate_thresholds(&mut net, &x, RegionSize::new(4, 4), target);
        assert_eq!(schedule.thresholds().len(), 2);
        // Verify: at the chosen thresholds, the sensitive fraction is at or
        // under target for every layer.
        let mut layer = 0;
        let thresholds = schedule.thresholds().to_vec();
        let _ = net.forward_tapped(&x, &mut |tap| {
            let s = tap.input.shape4().unwrap();
            let p = SensitivityPredictor::new(
                RegionSize::new(4, 4).clamped_to(s.h, s.w),
                thresholds[layer],
            );
            let mut acc = 0.0;
            for n in 0..s.n {
                acc += p
                    .predict_image(tap.input, n)
                    .iter()
                    .map(MaskMap::sensitive_fraction)
                    .sum::<f64>()
                    / s.c as f64;
            }
            assert!(
                acc / s.n as f64 <= target + 1e-9,
                "layer {layer} exceeds target"
            );
            layer += 1;
        });
    }

    #[test]
    fn tighter_targets_need_higher_thresholds() {
        let mut net = two_conv_net(5);
        let x = blobby_batch(6);
        let loose = calibrate_thresholds(&mut net, &x, RegionSize::new(4, 4), 0.5);
        let tight = calibrate_thresholds(&mut net, &x, RegionSize::new(4, 4), 0.05);
        for (a, b) in tight.thresholds().iter().zip(loose.thresholds()) {
            assert!(a >= b, "tight {a} < loose {b}");
        }
    }

    #[test]
    fn trivial_target_yields_zero_thresholds() {
        let mut net = two_conv_net(7);
        let x = blobby_batch(8);
        let schedule = calibrate_thresholds(&mut net, &x, RegionSize::new(4, 4), 1.0);
        assert!(schedule.thresholds().iter().all(|&t| t == 0.0));
        assert_eq!(schedule.average(), 0.0);
    }

    #[test]
    fn uniform_config_uses_average() {
        let t = LayerThresholds::new(RegionSize::new(4, 16), vec![10.0, 30.0]);
        let cfg = t.to_uniform_config();
        assert_eq!(cfg.base_threshold(), 20.0);
        assert_eq!(cfg.base_region(), RegionSize::new(4, 16));
    }

    #[test]
    #[should_panic(expected = "target fraction")]
    fn rejects_zero_target() {
        let mut net = two_conv_net(9);
        let x = blobby_batch(10);
        let _ = calibrate_thresholds(&mut net, &x, RegionSize::new(4, 4), 0.0);
    }
}
