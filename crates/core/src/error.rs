//! Typed errors for the algorithm layer.
//!
//! Mirrors `drq_sim::SimError` on the algorithm side: user-reachable
//! configuration and exploration paths report structured, matchable errors
//! instead of panicking, so the CLI can print context and exit cleanly.

use std::fmt;

/// Errors raised by the DRQ algorithm layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DrqError {
    /// A configuration value is out of its valid domain.
    InvalidConfig {
        /// Which component rejected the value.
        context: &'static str,
        /// What was wrong.
        detail: String,
    },
    /// A retried operation kept failing until its attempt budget ran out.
    RetriesExhausted {
        /// What was being retried.
        context: &'static str,
        /// How many attempts were made.
        attempts: u32,
        /// Display text of the final failure.
        last_error: String,
    },
}

impl fmt::Display for DrqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrqError::InvalidConfig { context, detail } => {
                write!(f, "{context}: {detail}")
            }
            DrqError::RetriesExhausted { context, attempts, last_error } => {
                write!(f, "{context}: gave up after {attempts} attempts: {last_error}")
            }
        }
    }
}

impl std::error::Error for DrqError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = DrqError::InvalidConfig {
            context: "region size",
            detail: "region extents must be positive".into(),
        };
        assert_eq!(e.to_string(), "region size: region extents must be positive");
        let e = DrqError::RetriesExhausted {
            context: "dse sweep shard",
            attempts: 3,
            last_error: "evaluator diverged".into(),
        };
        assert!(e.to_string().contains("after 3 attempts"));
        assert!(e.to_string().contains("evaluator diverged"));
    }
}
