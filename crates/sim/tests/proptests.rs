//! Property-style tests for the accelerator simulator: the exact systolic
//! array, the fast layer model, and the PE datapath. Driven by the
//! in-tree seeded generator so the suite builds offline; sweeps are
//! deterministic, so failures reproduce exactly.

use drq_core::{MaskMap, RegionGrid, RegionSize, SensitivityPredictor};
use drq_models::ConvLayerSpec;
use drq_quant::Precision;
use drq_sim::{LayerCycleModel, MultiPrecisionPe, StreamElement, SystolicArray};
use drq_tensor::{Tensor, XorShiftRng};

/// Draws a value in `[lo, hi)`.
fn range(rng: &mut XorShiftRng, lo: usize, hi: usize) -> usize {
    lo + rng.next_below(hi - lo)
}

fn random_streams(rows: usize, steps: usize, p: f64, seed: u64) -> Vec<Vec<StreamElement>> {
    let mut rng = XorShiftRng::new(seed);
    (0..rows)
        .map(|_| {
            (0..steps)
                .map(|_| StreamElement::new(rng.next_below(255) as i32 - 127, rng.next_f64() < p))
                .collect()
        })
        .collect()
}

fn random_weights(rows: usize, cols: usize, seed: u64) -> Vec<Vec<i32>> {
    let mut rng = XorShiftRng::new(seed);
    (0..rows)
        .map(|_| (0..cols).map(|_| rng.next_below(255) as i32 - 127).collect())
        .collect()
}

#[test]
fn pe_int8_decomposition_is_exact() {
    let mut rng = XorShiftRng::new(6001);
    for _ in 0..128 {
        let w = rng.next_below(256) as i32 - 128;
        let f = rng.next_below(256) as i32 - 128;
        let mut pe = MultiPrecisionPe::new();
        pe.load_weight(w);
        pe.start_mac(f, Precision::Int8);
        let mut cycles = 0;
        while !pe.is_done() {
            pe.tick();
            cycles += 1;
        }
        assert_eq!(cycles, 4);
        assert_eq!(pe.product(), w * f, "w={w} f={f}");
    }
}

#[test]
fn pe_int4_is_high_nibble_product() {
    let mut rng = XorShiftRng::new(6002);
    for _ in 0..128 {
        let w = rng.next_below(256) as i32 - 128;
        let f = rng.next_below(256) as i32 - 128;
        let mut pe = MultiPrecisionPe::new();
        pe.load_weight(w);
        pe.start_mac(f, Precision::Int4);
        pe.tick();
        assert!(pe.is_done());
        assert_eq!(pe.product(), ((w >> 4) * (f >> 4)) << 8, "w={w} f={f}");
    }
}

#[test]
fn exact_array_cycles_match_closed_form() {
    let mut rng = XorShiftRng::new(6003);
    for _ in 0..48 {
        let rows = range(&mut rng, 1, 8);
        let cols = range(&mut rng, 1, 8);
        let steps = range(&mut rng, 1, 40);
        let p = rng.next_f64();
        let seed = rng.next_below(500) as u64;
        let array = SystolicArray::new(random_weights(rows, cols, seed));
        let streams = random_streams(rows, steps, p, seed + 1);
        let trace = array.simulate(&streams);
        let costs: Vec<u64> = (0..steps)
            .map(|t| if streams.iter().any(|s| s[t].sensitive) { 4 } else { 1 })
            .collect();
        assert_eq!(trace.cycles, array.analytic_cycles(&costs));
        assert_eq!(trace.int4_steps + trace.int8_steps, steps as u64);
    }
}

#[test]
fn exact_array_outputs_match_mixed_dot_products() {
    let mut rng = XorShiftRng::new(6004);
    for _ in 0..32 {
        let rows = range(&mut rng, 1, 6);
        let cols = range(&mut rng, 1, 5);
        let steps = range(&mut rng, 1, 20);
        let p = rng.next_f64();
        let seed = rng.next_below(300) as u64;
        let weights = random_weights(rows, cols, seed + 2);
        let array = SystolicArray::new(weights.clone());
        let streams = random_streams(rows, steps, p, seed + 3);
        let trace = array.simulate(&streams);
        for (j, col) in trace.outputs.iter().enumerate() {
            for (t, &got) in col.iter().enumerate() {
                let expect: i64 = streams
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        let e = s[t];
                        if e.sensitive {
                            (weights[i][j] * e.value) as i64
                        } else {
                            (((weights[i][j] >> 4) * (e.value >> 4)) as i64) << 8
                        }
                    })
                    .sum();
                assert_eq!(got, expect, "col {j} step {t}");
            }
        }
    }
}

#[test]
fn layer_model_mac_conservation() {
    let mut rng = XorShiftRng::new(6005);
    let mut cases = 0;
    while cases < 48 {
        let in_c = range(&mut rng, 1, 6);
        let out_c = range(&mut rng, 1, 8);
        let hw = range(&mut rng, 3, 16);
        let k = range(&mut rng, 1, 4);
        let stride = range(&mut rng, 1, 3);
        let seed = rng.next_below(200) as u64;
        if hw < k {
            continue;
        }
        cases += 1;
        let spec = ConvLayerSpec::conv("p", "B", in_c, hw, hw, out_c, k, k, stride, 0);
        let mut xrng = XorShiftRng::new(seed + 4);
        let x = Tensor::from_fn(&[1, in_c, hw, hw], |_| xrng.next_f32());
        let predictor = SensitivityPredictor::new(RegionSize::new(2, 2), 50.0);
        let masks = predictor.predict(&x);
        let model = LayerCycleModel::new(18, 11, 16);
        let r = model.simulate_layer(&spec, &masks);
        assert_eq!(r.int4_macs + r.int8_macs, spec.macs());
        assert!(r.total_cycles() > 0);
    }
}

#[test]
fn layer_model_monotone_in_sensitivity() {
    // More sensitive regions can never make the layer faster.
    let mut rng = XorShiftRng::new(6006);
    for _ in 0..24 {
        let in_c = range(&mut rng, 1, 4);
        let hw = range(&mut rng, 8, 20);
        let seed = rng.next_below(100) as u64;
        let spec = ConvLayerSpec::conv("m", "B", in_c, hw, hw, 8, 3, 3, 1, 1);
        let grid = RegionGrid::new(hw, hw, RegionSize::new(2, 2));
        let model = LayerCycleModel::new(18, 11, 16);
        let mut frng = XorShiftRng::new(seed + 5);
        let mut masks: Vec<MaskMap> = (0..in_c).map(|_| MaskMap::all_insensitive(grid)).collect();
        let mut last = model.simulate_layer(&spec, &masks).compute_cycles;
        for _ in 0..4 {
            // Flip a few random regions to sensitive (never back).
            for m in masks.iter_mut() {
                for _ in 0..3 {
                    let r = frng.next_below(grid.rows());
                    let c = frng.next_below(grid.cols());
                    m.set(r, c, true);
                }
            }
            let now = model.simulate_layer(&spec, &masks).compute_cycles;
            assert!(now >= last, "compute decreased: {last} -> {now}");
            last = now;
        }
    }
}

#[test]
fn all_sensitive_layer_costs_4x_all_insensitive() {
    let mut rng = XorShiftRng::new(6007);
    for _ in 0..24 {
        let in_c = range(&mut rng, 1, 4);
        let hw = range(&mut rng, 6, 16);
        let out_c = range(&mut rng, 2, 8);
        let spec = ConvLayerSpec::conv("x", "B", in_c, hw, hw, out_c, 3, 3, 1, 1);
        let grid = RegionGrid::new(hw, hw, RegionSize::new(2, 2));
        let model = LayerCycleModel::new(18, 11, 16);
        let slow = model.simulate_layer(&spec, &vec![MaskMap::all_sensitive(grid); in_c]);
        let fast = model.simulate_layer(&spec, &vec![MaskMap::all_insensitive(grid); in_c]);
        assert_eq!(slow.compute_cycles, 4 * fast.compute_cycles);
    }
}
