//! Property-based tests for the accelerator simulator: the exact systolic
//! array, the fast layer model, and the PE datapath.

use drq_core::{MaskMap, RegionGrid, RegionSize, SensitivityPredictor};
use drq_models::ConvLayerSpec;
use drq_quant::Precision;
use drq_sim::{LayerCycleModel, MultiPrecisionPe, StreamElement, SystolicArray};
use drq_tensor::{Tensor, XorShiftRng};
use proptest::prelude::*;

fn random_streams(rows: usize, steps: usize, p: f64, seed: u64) -> Vec<Vec<StreamElement>> {
    let mut rng = XorShiftRng::new(seed);
    (0..rows)
        .map(|_| {
            (0..steps)
                .map(|_| StreamElement::new(rng.next_below(255) as i32 - 127, rng.next_f64() < p))
                .collect()
        })
        .collect()
}

fn random_weights(rows: usize, cols: usize, seed: u64) -> Vec<Vec<i32>> {
    let mut rng = XorShiftRng::new(seed);
    (0..rows)
        .map(|_| (0..cols).map(|_| rng.next_below(255) as i32 - 127).collect())
        .collect()
}

proptest! {
    #[test]
    fn pe_int8_decomposition_is_exact(w in -128i32..=127, f in -128i32..=127) {
        let mut pe = MultiPrecisionPe::new();
        pe.load_weight(w);
        pe.start_mac(f, Precision::Int8);
        let mut cycles = 0;
        while !pe.is_done() {
            pe.tick();
            cycles += 1;
        }
        prop_assert_eq!(cycles, 4);
        prop_assert_eq!(pe.product(), w * f);
    }

    #[test]
    fn pe_int4_is_high_nibble_product(w in -128i32..=127, f in -128i32..=127) {
        let mut pe = MultiPrecisionPe::new();
        pe.load_weight(w);
        pe.start_mac(f, Precision::Int4);
        pe.tick();
        prop_assert!(pe.is_done());
        prop_assert_eq!(pe.product(), ((w >> 4) * (f >> 4)) << 8);
    }

    #[test]
    fn exact_array_cycles_match_closed_form(
        rows in 1usize..8, cols in 1usize..8, steps in 1usize..40,
        p in 0.0f64..1.0, seed in 0u64..500
    ) {
        let array = SystolicArray::new(random_weights(rows, cols, seed));
        let streams = random_streams(rows, steps, p, seed + 1);
        let trace = array.simulate(&streams);
        let costs: Vec<u64> = (0..steps)
            .map(|t| if streams.iter().any(|s| s[t].sensitive) { 4 } else { 1 })
            .collect();
        prop_assert_eq!(trace.cycles, array.analytic_cycles(&costs));
        prop_assert_eq!(trace.int4_steps + trace.int8_steps, steps as u64);
    }

    #[test]
    fn exact_array_outputs_match_mixed_dot_products(
        rows in 1usize..6, cols in 1usize..5, steps in 1usize..20,
        p in 0.0f64..1.0, seed in 0u64..300
    ) {
        let weights = random_weights(rows, cols, seed + 2);
        let array = SystolicArray::new(weights.clone());
        let streams = random_streams(rows, steps, p, seed + 3);
        let trace = array.simulate(&streams);
        for (j, col) in trace.outputs.iter().enumerate() {
            for (t, &got) in col.iter().enumerate() {
                let expect: i64 = streams
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        let e = s[t];
                        if e.sensitive {
                            (weights[i][j] * e.value) as i64
                        } else {
                            (((weights[i][j] >> 4) * (e.value >> 4)) as i64) << 8
                        }
                    })
                    .sum();
                prop_assert_eq!(got, expect, "col {} step {}", j, t);
            }
        }
    }

    #[test]
    fn layer_model_mac_conservation(
        in_c in 1usize..6, out_c in 1usize..8, hw in 3usize..16,
        k in 1usize..4, stride in 1usize..3, seed in 0u64..200
    ) {
        prop_assume!(hw >= k);
        let spec = ConvLayerSpec::conv("p", "B", in_c, hw, hw, out_c, k, k, stride, 0);
        let mut rng = XorShiftRng::new(seed + 4);
        let x = Tensor::from_fn(&[1, in_c, hw, hw], |_| rng.next_f32());
        let predictor = SensitivityPredictor::new(RegionSize::new(2, 2), 50.0);
        let masks = predictor.predict(&x);
        let model = LayerCycleModel::new(18, 11, 16);
        let r = model.simulate_layer(&spec, &masks);
        prop_assert_eq!(r.int4_macs + r.int8_macs, spec.macs());
        prop_assert!(r.total_cycles() > 0);
    }

    #[test]
    fn layer_model_monotone_in_sensitivity(
        in_c in 1usize..4, hw in 8usize..20, seed in 0u64..100
    ) {
        // More sensitive regions can never make the layer faster.
        let spec = ConvLayerSpec::conv("m", "B", in_c, hw, hw, 8, 3, 3, 1, 1);
        let grid = RegionGrid::new(hw, hw, RegionSize::new(2, 2));
        let model = LayerCycleModel::new(18, 11, 16);
        let mut rng = XorShiftRng::new(seed + 5);
        let mut masks: Vec<MaskMap> = (0..in_c).map(|_| MaskMap::all_insensitive(grid)).collect();
        let mut last = model.simulate_layer(&spec, &masks).compute_cycles;
        for _ in 0..4 {
            // Flip a few random regions to sensitive (never back).
            for m in masks.iter_mut() {
                for _ in 0..3 {
                    let r = rng.next_below(grid.rows());
                    let c = rng.next_below(grid.cols());
                    m.set(r, c, true);
                }
            }
            let now = model.simulate_layer(&spec, &masks).compute_cycles;
            prop_assert!(now >= last, "compute decreased: {} -> {}", last, now);
            last = now;
        }
    }

    #[test]
    fn all_sensitive_layer_costs_4x_all_insensitive(
        in_c in 1usize..4, hw in 6usize..16, out_c in 2usize..8
    ) {
        let spec = ConvLayerSpec::conv("x", "B", in_c, hw, hw, out_c, 3, 3, 1, 1);
        let grid = RegionGrid::new(hw, hw, RegionSize::new(2, 2));
        let model = LayerCycleModel::new(18, 11, 16);
        let slow = model.simulate_layer(
            &spec,
            &vec![MaskMap::all_sensitive(grid); in_c],
        );
        let fast = model.simulate_layer(
            &spec,
            &vec![MaskMap::all_insensitive(grid); in_c],
        );
        prop_assert_eq!(slow.compute_cycles, 4 * fast.compute_cycles);
    }
}
