//! The single aggregation + serialization path for simulation results.
//!
//! Every number a report accessor returns and every number the versioned
//! [`Report`] JSON contains flows through the functions in this module, so
//! the two can never disagree: `NetworkSimReport::total_cycles()` and the
//! `"total_cycles"` key of `NetworkSimReport::to_report()` are the same
//! computation. The schema (key names, nesting) is defined here and only
//! here.
//!
//! Schema (`kind: "network_sim"`, version [`drq_telemetry::SCHEMA_VERSION`]):
//!
//! ```json
//! {"schema":"drq-metrics","schema_version":1,"kind":"network_sim",
//!  "network":"lenet5","seed":42,"frequency_mhz":500,
//!  "total_cycles":..., "total_ms":..., "stall_ratio":..., "int4_fraction":...,
//!  "cycles":{...}, "energy_pj":{"dram":..,"buffer":..,"core":..,"total":..},
//!  "layers":[{"name":..,"block":..,"sensitive_fraction":..,
//!             "total_cycles":..,"stall_ratio":..,"int4_fraction":..,
//!             "cycles":{..},"energy_pj":{..}}, ...],
//!  "blocks":{"B1":{"int4_cycles":..,"int8_cycles":..,
//!                  "weight_load_cycles":..,"fill_cycles":..}, ...}}
//! ```

use crate::{
    BatchSimSummary, EnergyBreakdown, LayerCycles, LayerReport, NetworkSimReport,
    ReliabilityReport,
};
use drq_telemetry::{Json, Report};
use std::collections::BTreeMap;

/// Sums the per-layer cycle counters (the canonical network total).
pub(crate) fn total_layer_cycles(layers: &[LayerReport]) -> LayerCycles {
    let mut c = LayerCycles::default();
    for l in layers {
        c.merge(&l.cycles);
    }
    c
}

/// Sums the per-layer energy breakdowns.
pub(crate) fn total_energy(layers: &[LayerReport]) -> EnergyBreakdown {
    layers.iter().map(|l| l.energy).fold(EnergyBreakdown::default(), |a, b| a + b)
}

/// Per-block cycle decomposition (Fig. 16's utilization view):
/// `block → [int4 compute, int8 compute, weight load, fill]` cycles.
pub(crate) fn block_breakdown(layers: &[LayerReport]) -> BTreeMap<String, [u64; 4]> {
    let mut map: BTreeMap<String, [u64; 4]> = BTreeMap::new();
    for l in layers {
        let e = map.entry(l.block.clone()).or_default();
        e[0] += l.cycles.int4_steps;
        e[1] += l.cycles.int8_steps * 4;
        e[2] += l.cycles.weight_load_cycles;
        e[3] += l.cycles.fill_cycles;
    }
    map
}

/// Serializes an energy breakdown under the schema's `energy_pj` keys.
pub fn energy_json(e: &EnergyBreakdown) -> Json {
    Json::obj([
        ("dram", Json::F64(e.dram_pj)),
        ("buffer", Json::F64(e.buffer_pj)),
        ("core", Json::F64(e.core_pj)),
        ("total", Json::F64(e.total_pj())),
    ])
}

/// Serializes a cycle breakdown under the schema's `cycles` keys.
pub fn cycles_json(c: &LayerCycles) -> Json {
    Json::obj([
        ("compute", Json::U64(c.compute_cycles)),
        ("fill", Json::U64(c.fill_cycles)),
        ("weight_load", Json::U64(c.weight_load_cycles)),
        ("weight_load_raw", Json::U64(c.weight_load_raw_cycles)),
        ("stall_pe", Json::U64(c.stall_pe_cycles)),
        ("int4_steps", Json::U64(c.int4_steps)),
        ("int8_steps", Json::U64(c.int8_steps)),
        ("int4_macs", Json::U64(c.int4_macs)),
        ("int8_macs", Json::U64(c.int8_macs)),
    ])
}

/// Serializes one layer report as a schema object.
pub fn layer_json(l: &LayerReport) -> Json {
    Json::obj([
        ("name", Json::str(&l.name)),
        ("block", Json::str(&l.block)),
        ("sensitive_fraction", Json::F64(l.sensitive_fraction)),
        ("total_cycles", Json::U64(l.cycles.total_cycles())),
        ("stall_ratio", Json::F64(l.cycles.stall_ratio())),
        ("int4_fraction", Json::F64(l.cycles.int4_fraction())),
        ("cycles", cycles_json(&l.cycles)),
        ("energy_pj", energy_json(&l.energy)),
    ])
}

fn blocks_json(layers: &[LayerReport]) -> Json {
    Json::Object(
        block_breakdown(layers)
            .into_iter()
            .map(|(block, [int4, int8, load, fill])| {
                (
                    block,
                    Json::obj([
                        ("int4_cycles", Json::U64(int4)),
                        ("int8_cycles", Json::U64(int8)),
                        ("weight_load_cycles", Json::U64(load)),
                        ("fill_cycles", Json::U64(fill)),
                    ]),
                )
            })
            .collect(),
    )
}

/// Builds the `kind: "network_sim"` report for a network run. This is the
/// payload behind [`NetworkSimReport::to_report`].
pub fn network_report(r: &NetworkSimReport) -> Report {
    let totals = total_layer_cycles(&r.layers);
    let energy = total_energy(&r.layers);
    let mut rep = Report::new("network_sim");
    rep.push("network", Json::str(&r.network))
        .push("seed", Json::U64(r.seed))
        .push("frequency_mhz", Json::F64(r.frequency_mhz))
        .push("total_cycles", Json::U64(totals.total_cycles()))
        .push("total_ms", Json::F64(totals.total_cycles() as f64 / (r.frequency_mhz * 1e3)))
        .push("stall_ratio", Json::F64(totals.stall_ratio()))
        .push("int4_fraction", Json::F64(totals.int4_fraction()))
        .push("cycles", cycles_json(&totals))
        .push("energy_pj", energy_json(&energy))
        .push("layers", Json::arr(r.layers.iter().map(layer_json)))
        .push("blocks", blocks_json(&r.layers));
    rep
}

/// Builds the `kind: "reliability"` report for a fault-injected run. This
/// is the payload behind [`ReliabilityReport::to_report`].
pub fn reliability_report(r: &ReliabilityReport) -> Report {
    let rules = r.plan.to_json().get("rules").cloned().unwrap_or(Json::Array(Vec::new()));
    let mut rep = Report::new("reliability");
    rep.push("network", Json::str(&r.report.network))
        .push("seed", Json::U64(r.report.seed))
        .push("fault_seed", Json::U64(r.plan.seed))
        .push("rules", rules)
        .push("baseline_cycles", Json::U64(r.baseline_cycles))
        .push("degraded_cycles", Json::U64(r.degraded_cycles))
        .push("slowdown", Json::F64(r.slowdown()))
        .push("extra_dram_pj", Json::F64(r.extra_dram_pj))
        .push("total_ms", Json::F64(r.report.total_ms()))
        .push("int4_fraction", Json::F64(r.report.int4_fraction()))
        .push("faults", r.counters.to_json());
    rep
}

/// Builds the `kind: "batch_sim"` report for a multi-image batch summary.
pub fn batch_report(b: &BatchSimSummary) -> Report {
    let mut rep = Report::new("batch_sim");
    rep.push("network", Json::str(&b.network))
        .push("images", Json::U64(b.images as u64))
        .push("mean_cycles", Json::F64(b.mean_cycles))
        .push("stddev_cycles", Json::F64(b.stddev_cycles))
        .push("cycle_cv", Json::F64(b.cycle_cv()))
        .push("min_cycles", Json::U64(b.min_cycles))
        .push("max_cycles", Json::U64(b.max_cycles))
        .push("mean_int4_fraction", Json::F64(b.mean_int4_fraction));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArchConfig, DrqAccelerator};
    use drq_models::zoo;

    #[test]
    fn accessors_agree_with_schema_values() {
        let accel = DrqAccelerator::new(ArchConfig::paper_default());
        let r = accel.session(&zoo::lenet5()).seed(3).run().unwrap().into_report();
        let rep = r.to_report();
        assert_eq!(
            rep.get("total_cycles").and_then(Json::as_u64),
            Some(r.total_cycles())
        );
        assert_eq!(
            rep.get("stall_ratio").and_then(Json::as_f64),
            Some(r.stall_ratio())
        );
        assert_eq!(
            rep.get("int4_fraction").and_then(Json::as_f64),
            Some(r.int4_fraction())
        );
        assert_eq!(
            rep.get("energy_pj").and_then(|e| e.get("total")).and_then(Json::as_f64),
            Some(r.total_energy().total_pj())
        );
        match rep.get("layers") {
            Some(Json::Array(layers)) => assert_eq!(layers.len(), r.layers.len()),
            other => panic!("layers not an array: {other:?}"),
        }
    }

    #[test]
    fn block_schema_matches_breakdown_accessor() {
        let accel = DrqAccelerator::new(ArchConfig::paper_default());
        let r = accel
            .session(&zoo::resnet18(zoo::InputRes::Cifar))
            .seed(5)
            .run()
            .unwrap()
            .into_report();
        let rep = r.to_report();
        for (block, [int4, int8, load, fill]) in r.block_breakdown() {
            let b = rep.get("blocks").and_then(|v| v.get(&block)).unwrap();
            assert_eq!(b.get("int4_cycles").and_then(Json::as_u64), Some(int4));
            assert_eq!(b.get("int8_cycles").and_then(Json::as_u64), Some(int8));
            assert_eq!(b.get("weight_load_cycles").and_then(Json::as_u64), Some(load));
            assert_eq!(b.get("fill_cycles").and_then(Json::as_u64), Some(fill));
        }
    }

    #[test]
    fn batch_report_carries_spread_metrics() {
        let accel = DrqAccelerator::new(ArchConfig::paper_default());
        let b = accel.session(&zoo::lenet5()).run_batch(&[1, 2, 3]).unwrap();
        let rep = b.to_report();
        assert_eq!(rep.kind(), "batch_sim");
        assert_eq!(rep.get("images").and_then(Json::as_u64), Some(3));
        assert_eq!(rep.get("cycle_cv").and_then(Json::as_f64), Some(b.cycle_cv()));
    }
}
