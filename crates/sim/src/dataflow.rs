//! Dataflow alternatives and their buffer-traffic consequences.
//!
//! Section VII-A2: "Our DRQ architecture supports IS, WS, OS and RS, but
//! applies WS in priority because the storage overhead of weights is larger
//! than input values." This module quantifies that choice: for a layer and
//! array geometry it estimates, per dataflow, how many times each operand
//! class crosses the global buffer. The classic reuse trade-offs fall out —
//! weight-stationary reads every weight once, output-stationary never
//! spills partial sums, input-stationary reads every input once — and the
//! ablation harness uses these numbers to justify the paper's WS pick.

use drq_models::ConvLayerSpec;

/// Which operand a PE array keeps resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataflow {
    /// Weights pinned in the PEs (the DRQ choice).
    WeightStationary,
    /// Output partial sums pinned; operands stream.
    OutputStationary,
    /// Input activations pinned; weights stream.
    InputStationary,
    /// Eyeriss's row-stationary compromise: kernel rows and input rows are
    /// co-resident, reusing each across a PE row; both weights and inputs
    /// re-stream less than OS, psums accumulate spatially.
    RowStationary,
}

impl Dataflow {
    /// All modeled dataflows.
    pub const ALL: [Dataflow; 4] = [
        Dataflow::WeightStationary,
        Dataflow::OutputStationary,
        Dataflow::InputStationary,
        Dataflow::RowStationary,
    ];

    /// Short display name ("WS"/"OS"/"IS"/"RS").
    pub fn short_name(self) -> &'static str {
        match self {
            Dataflow::WeightStationary => "WS",
            Dataflow::OutputStationary => "OS",
            Dataflow::InputStationary => "IS",
            Dataflow::RowStationary => "RS",
        }
    }
}

/// Global-buffer crossings of one layer under one dataflow, in element
/// accesses (multiply by element width for bytes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficReport {
    /// The dataflow estimated.
    pub dataflow: Dataflow,
    /// Weight elements read.
    pub weight_reads: f64,
    /// Input feature-map elements read.
    pub input_reads: f64,
    /// Partial-sum elements spilled and re-fetched (read+write pairs).
    pub psum_rw: f64,
}

impl TrafficReport {
    /// Total element accesses, weighting partial sums double (16-bit
    /// read-modify-write vs 8-bit operand reads).
    pub fn weighted_total(&self) -> f64 {
        self.weight_reads + self.input_reads + 4.0 * self.psum_rw
    }
}

/// Per-page output-buffer capacity in partial sums assumed by the traffic
/// model (the dual-buffered accumulation unit of Section IV-D): partial
/// sums only travel to the global buffer when an output tile exceeds it.
pub const OUTPUT_BUFFER_POSITIONS: usize = 4096;

/// Estimates buffer traffic for `spec` on a `rows × cols × pages` array.
///
/// Tiling model (matching [`crate::LayerCycleModel`]'s geometry): taps tile
/// by `rows`, filters by `cols × pages`, output positions stream.
///
/// * **WS**: each weight enters the array once; inputs re-stream once per
///   filter tile; partial sums accumulate in the output buffer and spill
///   to the global buffer only for the overflow beyond
///   [`OUTPUT_BUFFER_POSITIONS`], once per extra tap tile.
/// * **OS**: outputs never spill; weights and inputs re-stream once per
///   output tile (outputs tile by the array's accumulator capacity,
///   `rows × cols × pages` positions at a time).
/// * **IS**: each input enters once; weights re-stream once per input tile
///   (inputs tile by array capacity); partial sums as in WS.
///
/// # Panics
///
/// Panics if any geometry parameter is zero.
pub fn estimate_traffic(
    spec: &ConvLayerSpec,
    rows: usize,
    cols: usize,
    pages: usize,
    dataflow: Dataflow,
) -> TrafficReport {
    assert!(rows > 0 && cols > 0 && pages > 0, "geometry must be positive");
    let weights = spec.weight_count() as f64;
    let inputs = spec.input_count() as f64;
    let outputs = spec.output_count() as f64;
    let taps = ((spec.in_c / spec.groups) * spec.kh * spec.kw).max(1);
    let tap_tiles = taps.div_ceil(rows) as f64;
    let filter_tiles = (spec.out_c as f64 / (cols * pages) as f64).ceil().max(1.0);
    let array_capacity = (rows * cols * pages) as f64;
    let output_tiles = (outputs / array_capacity).ceil().max(1.0);
    let input_tiles = (inputs / array_capacity).ceil().max(1.0);
    // Fraction of an output tile's partial sums that overflow the on-chip
    // accumulation buffer and must round-trip the global buffer.
    let positions = (spec.out_h() * spec.out_w()) as f64;
    let overflow = (1.0 - OUTPUT_BUFFER_POSITIONS as f64 / positions).max(0.0);
    let psum_spill = outputs * (tap_tiles - 1.0).max(0.0) * overflow;

    match dataflow {
        Dataflow::WeightStationary => TrafficReport {
            dataflow,
            weight_reads: weights,
            input_reads: inputs * filter_tiles.min(tap_tiles * filter_tiles),
            psum_rw: psum_spill,
        },
        Dataflow::OutputStationary => TrafficReport {
            dataflow,
            weight_reads: weights * output_tiles,
            input_reads: inputs * output_tiles,
            psum_rw: 0.0,
        },
        Dataflow::InputStationary => TrafficReport {
            dataflow,
            weight_reads: weights * input_tiles,
            input_reads: inputs,
            psum_rw: psum_spill,
        },
        Dataflow::RowStationary => TrafficReport {
            dataflow,
            // Row reuse halves the re-streaming of both operands relative
            // to the worse of WS/IS (Eyeriss's compromise: each kernel row
            // and input row is reused across a PE row before refetch), and
            // psums accumulate spatially along PE columns (no spill for
            // tiles that fit; the same overflow rule applies).
            weight_reads: weights * (1.0 + (filter_tiles - 1.0) * 0.5),
            input_reads: inputs * (1.0 + (tap_tiles - 1.0).min(3.0) * 0.5),
            psum_rw: psum_spill * 0.5,
        },
    }
}

/// Estimates traffic for every dataflow and returns them sorted by
/// [`TrafficReport::weighted_total`] ascending (best first).
pub fn compare_dataflows(
    spec: &ConvLayerSpec,
    rows: usize,
    cols: usize,
    pages: usize,
) -> Vec<TrafficReport> {
    let mut reports: Vec<TrafficReport> = Dataflow::ALL
        .iter()
        .map(|&d| estimate_traffic(spec, rows, cols, pages, d))
        .collect();
    reports.sort_by(|a, b| {
        a.weighted_total()
            .partial_cmp(&b.weighted_total())
            .expect("finite totals")
    });
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resnet_block_layer() -> ConvLayerSpec {
        // A weight-heavy mid-network layer (the regime the paper's WS
        // argument addresses: "the storage overhead of weights is larger
        // than input values").
        ConvLayerSpec::conv("b3", "B3", 256, 14, 14, 256, 3, 3, 1, 1)
    }

    fn early_layer() -> ConvLayerSpec {
        // Input-heavy early layer: few weights, huge maps.
        ConvLayerSpec::conv("c1", "C1", 3, 224, 224, 64, 7, 7, 2, 3)
    }

    #[test]
    fn each_dataflow_minimizes_its_resident_operand() {
        let spec = resnet_block_layer();
        let ws = estimate_traffic(&spec, 18, 11, 16, Dataflow::WeightStationary);
        let os = estimate_traffic(&spec, 18, 11, 16, Dataflow::OutputStationary);
        let is = estimate_traffic(&spec, 18, 11, 16, Dataflow::InputStationary);
        // WS reads each weight exactly once; the others re-stream weights.
        assert_eq!(ws.weight_reads, spec.weight_count() as f64);
        assert!(os.weight_reads >= ws.weight_reads);
        assert!(is.weight_reads >= ws.weight_reads);
        // OS never spills partial sums.
        assert_eq!(os.psum_rw, 0.0);
        // IS reads each input exactly once.
        assert_eq!(is.input_reads, spec.input_count() as f64);
        assert!(ws.input_reads >= is.input_reads);
    }

    #[test]
    fn ws_wins_on_weight_heavy_layers() {
        // The paper's WS-in-priority argument: deep layers have far more
        // weights than input pixels.
        let spec = resnet_block_layer();
        assert!(spec.weight_count() > spec.input_count());
        let best = compare_dataflows(&spec, 18, 11, 16);
        assert_eq!(best[0].dataflow, Dataflow::WeightStationary, "{best:?}");
    }

    #[test]
    fn early_layers_prefer_input_keeping_flows() {
        // The converse: the stem has 200x more input pixels than weights,
        // so WS's input re-streaming is not the cheapest there.
        let spec = early_layer();
        assert!(spec.input_count() > spec.weight_count());
        let best = compare_dataflows(&spec, 18, 11, 16);
        assert_ne!(best[0].dataflow, Dataflow::OutputStationary);
        // WS must not win the early layer under re-streaming pressure.
        let ws = estimate_traffic(&spec, 18, 11, 16, Dataflow::WeightStationary);
        assert!(best[0].weighted_total() <= ws.weighted_total());
    }

    #[test]
    fn comparison_is_sorted_ascending() {
        let spec = resnet_block_layer();
        let reports = compare_dataflows(&spec, 18, 11, 16);
        assert_eq!(reports.len(), 4);
        for w in reports.windows(2) {
            assert!(w[0].weighted_total() <= w[1].weighted_total());
        }
    }

    #[test]
    fn single_tile_layers_have_no_psum_spill() {
        // Taps fit one row tile: no partial-sum traffic under WS/IS.
        let spec = ConvLayerSpec::conv("s", "b", 2, 8, 8, 4, 3, 3, 1, 1);
        for d in [Dataflow::WeightStationary, Dataflow::InputStationary] {
            let t = estimate_traffic(&spec, 18, 11, 16, d);
            assert_eq!(t.psum_rw, 0.0, "{d:?}");
        }
    }

    #[test]
    fn on_chip_accumulation_absorbs_small_output_tiles() {
        // 14x14 outputs fit the accumulation buffer: many tap tiles, zero
        // global-buffer partial-sum traffic.
        let spec = resnet_block_layer();
        let ws = estimate_traffic(&spec, 18, 11, 16, Dataflow::WeightStationary);
        assert_eq!(ws.psum_rw, 0.0);
        // A 112x112 output plane overflows it: spill appears.
        let big = early_layer();
        let ws_big = estimate_traffic(&big, 18, 11, 16, Dataflow::WeightStationary);
        assert!(ws_big.psum_rw > 0.0);
    }

    #[test]
    fn short_names_are_stable() {
        assert_eq!(Dataflow::WeightStationary.short_name(), "WS");
        assert_eq!(Dataflow::OutputStationary.short_name(), "OS");
        assert_eq!(Dataflow::InputStationary.short_name(), "IS");
        assert_eq!(Dataflow::RowStationary.short_name(), "RS");
    }

    #[test]
    fn row_stationary_sits_between_extremes() {
        // RS is Eyeriss's compromise: never the pathological worst case on
        // either operand class.
        let spec = resnet_block_layer();
        let reports = compare_dataflows(&spec, 18, 11, 16);
        let rs = reports
            .iter()
            .find(|r| r.dataflow == Dataflow::RowStationary)
            .expect("RS present");
        let os = reports
            .iter()
            .find(|r| r.dataflow == Dataflow::OutputStationary)
            .expect("OS present");
        assert!(rs.weight_reads < os.weight_reads);
        assert!(rs.input_reads < os.input_reads);
        assert_eq!(reports.len(), 4);
    }
}
