//! The multi-precision processing element (Fig. 8 of the paper).

use drq_quant::Precision;

/// A cycle-accurate model of the dual-mode PE.
//
/// The PE owns an INT4×INT4 multiplier. In INT4 mode one MAC completes per
/// cycle using the high nibbles of the 8-bit `W` and `F` registers (the
/// INT4 codes of clipped operands). In INT8 mode the full 8×8 product is
/// assembled from four 4×4 sub-products over four cycles, shifting partial
/// products into the `P` register exactly as Fig. 8 describes:
///
/// * cycle t:   `H(W) · H(F)` shifted left by 8;
/// * cycle t+1: `L(W) · H(F)` shifted left by 4;
/// * cycle t+2: `H(W) · L(F)` shifted left by 4;
/// * cycle t+3: `L(W) · L(F)` unshifted.
///
/// High nibbles are signed, low nibbles unsigned — the standard signed
/// radix-16 decomposition, verified against the direct 8×8 product.
///
/// # Examples
///
/// ```
/// use drq_sim::MultiPrecisionPe;
/// use drq_quant::Precision;
///
/// let mut pe = MultiPrecisionPe::new();
/// pe.load_weight(-77);
/// pe.start_mac(53, Precision::Int8);
/// let mut cycles = 0;
/// while !pe.is_done() {
///     pe.tick();
///     cycles += 1;
/// }
/// assert_eq!(cycles, 4);
/// assert_eq!(pe.product(), -77 * 53);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiPrecisionPe {
    /// Weight register (8-bit value held as i32 for arithmetic clarity).
    w: i32,
    /// Feature register.
    f: i32,
    /// Partial product register.
    p: i32,
    mode: Precision,
    /// Remaining sub-cycles of the in-flight MAC (0 = idle/done).
    remaining: u32,
}

fn high_nibble(v: i32) -> i32 {
    // Arithmetic shift of the signed 8-bit value.
    debug_assert!((-128..=127).contains(&v), "operand {v} exceeds 8 bits");
    v >> 4
}

fn low_nibble(v: i32) -> i32 {
    (v & 0xF) as u8 as i32
}

impl MultiPrecisionPe {
    /// Creates an idle PE with cleared registers.
    pub fn new() -> Self {
        Self { w: 0, f: 0, p: 0, mode: Precision::Int4, remaining: 0 }
    }

    /// Loads the (weight-stationary) weight register with an INT8 code.
    ///
    /// # Panics
    ///
    /// Panics if the value exceeds 8 signed bits.
    pub fn load_weight(&mut self, w: i32) {
        assert!((-128..=127).contains(&w), "weight {w} exceeds 8 bits");
        self.w = w;
    }

    /// Begins a MAC against feature value `f` (an INT8 code) at the given
    /// mode. INT4 mode consumes the *high nibbles* of both registers — the
    /// precision clipping of Section III-C.
    ///
    /// # Panics
    ///
    /// Panics if a MAC is already in flight, `f` exceeds 8 bits, or the
    /// mode is INT16 (the DRQ PE is 4/8-bit only).
    pub fn start_mac(&mut self, f: i32, mode: Precision) {
        assert_eq!(self.remaining, 0, "PE busy");
        assert!((-128..=127).contains(&f), "feature {f} exceeds 8 bits");
        assert!(mode != Precision::Int16, "DRQ PE supports INT4/INT8 only");
        self.f = f;
        self.mode = mode;
        self.p = 0;
        self.remaining = mode.int4_subops();
    }

    /// Advances one clock cycle. Idle ticks are no-ops.
    pub fn tick(&mut self) {
        if self.remaining == 0 {
            return;
        }
        match self.mode {
            Precision::Int4 => {
                // One-cycle 4-bit MAC on the clipped (high-nibble) operands,
                // rescaled to the INT8 domain (<< 8 total) so products from
                // both modes accumulate in one partial-sum domain.
                self.p = (high_nibble(self.w) * high_nibble(self.f)) << 8;
                self.remaining = 0;
            }
            Precision::Int8 => {
                let step = 4 - self.remaining; // 0..=3
                let term = match step {
                    0 => (high_nibble(self.w) * high_nibble(self.f)) << 8,
                    1 => (low_nibble(self.w) * high_nibble(self.f)) << 4,
                    2 => (high_nibble(self.w) * low_nibble(self.f)) << 4,
                    _ => low_nibble(self.w) * low_nibble(self.f),
                };
                self.p += term;
                self.remaining -= 1;
            }
            Precision::Int16 => unreachable!("rejected in start_mac"),
        }
    }

    /// Whether the in-flight MAC (if any) has completed.
    pub fn is_done(&self) -> bool {
        self.remaining == 0
    }

    /// The completed product in the INT8×INT8 domain (INT4-mode products
    /// carry their `<< 8` rescale).
    pub fn product(&self) -> i32 {
        self.p
    }

    /// The weight register contents.
    pub fn weight(&self) -> i32 {
        self.w
    }

    /// Fault injection: flips one bit (0..8) of the weight register,
    /// staying in the signed 8-bit domain.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 8`.
    pub fn flip_weight_bit(&mut self, bit: u32) {
        assert!(bit < 8, "bit {bit} outside the 8-bit weight register");
        self.w = crate::faults::flip_bit8(self.w, bit);
    }

    /// Fault injection: flips one bit (0..8) of the feature register,
    /// staying in the signed 8-bit domain. Meaningful between
    /// [`MultiPrecisionPe::start_mac`] and the first tick — the corrupted
    /// operand feeds the whole multi-cycle MAC, like a particle strike on
    /// the latched register.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 8`.
    pub fn flip_feature_bit(&mut self, bit: u32) {
        assert!(bit < 8, "bit {bit} outside the 8-bit feature register");
        self.f = crate::faults::flip_bit8(self.f, bit);
    }
}

impl Default for MultiPrecisionPe {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int8_decomposition_is_exact_for_all_operands() {
        // Exhaustive: every signed 8-bit pair must reproduce the direct
        // product through the 4-cycle datapath.
        let mut pe = MultiPrecisionPe::new();
        for w in -128..=127 {
            pe.load_weight(w);
            for f in (-128..=127).step_by(3) {
                pe.start_mac(f, Precision::Int8);
                for _ in 0..4 {
                    pe.tick();
                }
                assert!(pe.is_done());
                assert_eq!(pe.product(), w * f, "w={w} f={f}");
            }
        }
    }

    #[test]
    fn int4_mode_takes_one_cycle() {
        let mut pe = MultiPrecisionPe::new();
        pe.load_weight(0x70); // high nibble 7
        pe.start_mac(0x30, Precision::Int4); // high nibble 3
        assert!(!pe.is_done());
        pe.tick();
        assert!(pe.is_done());
        assert_eq!(pe.product(), (7 * 3) << 8);
    }

    #[test]
    fn int4_mode_uses_signed_high_nibbles() {
        let mut pe = MultiPrecisionPe::new();
        pe.load_weight(-128); // high nibble -8
        pe.start_mac(112, Precision::Int4); // high nibble 7
        pe.tick();
        assert_eq!(pe.product(), (-8 * 7) << 8);
    }

    #[test]
    fn int4_product_approximates_int8_product() {
        // The INT4 product is the INT8 product with the low nibbles dropped:
        // error bounded by |w|*15 + |f|*15 + 225 (cross terms).
        let mut pe = MultiPrecisionPe::new();
        for &(w, f) in &[(100, 100), (-100, 50), (37, -89), (-5, -5)] {
            pe.load_weight(w);
            pe.start_mac(f, Precision::Int4);
            pe.tick();
            let err = (pe.product() - w * f).abs();
            assert!(err <= w.abs() * 15 + f.abs() * 15 + 225, "w={w} f={f} err={err}");
        }
    }

    #[test]
    fn idle_tick_is_noop() {
        let mut pe = MultiPrecisionPe::new();
        pe.tick();
        assert_eq!(pe.product(), 0);
        assert!(pe.is_done());
    }

    #[test]
    fn register_bit_flips_are_involutions_in_the_8_bit_domain() {
        let mut pe = MultiPrecisionPe::new();
        pe.load_weight(-77);
        pe.flip_weight_bit(7);
        assert_eq!(pe.weight(), ((-77i8) ^ (1i8 << 7)) as i32);
        pe.flip_weight_bit(7);
        assert_eq!(pe.weight(), -77);
        // A flipped feature register corrupts the product of exactly the
        // in-flight MAC.
        pe.start_mac(53, Precision::Int8);
        pe.flip_feature_bit(0);
        for _ in 0..4 {
            pe.tick();
        }
        assert_eq!(pe.product(), -77 * 52);
    }

    #[test]
    #[should_panic(expected = "PE busy")]
    fn cannot_start_while_busy() {
        let mut pe = MultiPrecisionPe::new();
        pe.start_mac(1, Precision::Int8);
        pe.start_mac(2, Precision::Int8);
    }

    #[test]
    #[should_panic(expected = "INT4/INT8 only")]
    fn rejects_int16() {
        let mut pe = MultiPrecisionPe::new();
        pe.start_mac(1, Precision::Int16);
    }
}
