//! Off-chip memory bandwidth model (Section V-B).
//!
//! "Under 500MHz PE frequency, we verify that the required memory bandwidth
//! is much smaller than the typical memory bandwidth provided by DDR3. So,
//! with the regulated format of input data cached in the large global
//! buffer, the algorithm can sustain a non-blocking convolution with
//! multi-precision support." This module performs that verification: it
//! computes each layer's required DRAM bandwidth from its traffic and
//! runtime and compares against a DDR3 channel.

use crate::{NetworkSimReport, SimError};
use drq_models::{LayerOp, NetworkTopology};

/// A DRAM channel's peak bandwidth model.
///
/// # Examples
///
/// ```
/// use drq_sim::DramModel;
///
/// let ddr3 = DramModel::ddr3_1600();
/// assert!((ddr3.peak_gbps() - 12.8).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramModel {
    /// Peak bandwidth in bytes per second.
    peak_bytes_per_sec: f64,
    /// Sustainable fraction of peak (row misses, refresh, turnaround).
    efficiency: f64,
}

impl DramModel {
    /// DDR3-1600 x64: 12.8 GB/s peak, ~70 % sustainable.
    pub fn ddr3_1600() -> Self {
        Self { peak_bytes_per_sec: 12.8e9, efficiency: 0.7 }
    }

    /// Creates a custom channel model.
    ///
    /// # Panics
    ///
    /// Panics if bandwidth is non-positive or efficiency outside `(0, 1]`.
    pub fn new(peak_bytes_per_sec: f64, efficiency: f64) -> Self {
        Self::try_new(peak_bytes_per_sec, efficiency).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible counterpart of [`DramModel::new`].
    pub fn try_new(peak_bytes_per_sec: f64, efficiency: f64) -> Result<Self, SimError> {
        if !(peak_bytes_per_sec > 0.0) {
            return Err(SimError::InvalidParameter {
                context: "dram model",
                detail: format!("bandwidth must be positive (got {peak_bytes_per_sec})"),
            });
        }
        if !(efficiency > 0.0 && efficiency <= 1.0) {
            return Err(SimError::InvalidParameter {
                context: "dram model",
                detail: format!("efficiency in (0, 1] required (got {efficiency})"),
            });
        }
        Ok(Self { peak_bytes_per_sec, efficiency })
    }

    /// DRAM transfer granularity: one burst moves 64 bytes (a DDR3 x64
    /// BL8 burst) — the unit the fault model drops or duplicates.
    pub const BURST_BYTES: u64 = 64;

    /// Number of bursts needed to move `bytes` (rounded up).
    pub fn bursts_for_bytes(bytes: f64) -> u64 {
        if bytes <= 0.0 {
            0
        } else {
            (bytes / Self::BURST_BYTES as f64).ceil() as u64
        }
    }

    /// Peak bandwidth in GB/s.
    pub fn peak_gbps(&self) -> f64 {
        self.peak_bytes_per_sec / 1e9
    }

    /// Sustainable bandwidth in bytes/s.
    pub fn sustainable_bytes_per_sec(&self) -> f64 {
        self.peak_bytes_per_sec * self.efficiency
    }
}

/// Per-layer bandwidth demand versus a DRAM channel.
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthReport {
    /// Layer name, operator kind and required bandwidth in bytes/s.
    pub per_layer: Vec<(String, LayerOp, f64)>,
    /// The channel's sustainable bandwidth in bytes/s.
    pub sustainable: f64,
}

impl BandwidthReport {
    /// The most demanding layer `(name, bytes/s)`.
    pub fn peak_layer(&self) -> Option<(&str, f64)> {
        self.per_layer
            .iter()
            .max_by(|a, b| a.2.partial_cmp(&b.2).expect("NaN bandwidth"))
            .map(|(n, _, b)| (n.as_str(), *b))
    }

    /// Whether every layer's demand fits the sustainable bandwidth.
    pub fn non_blocking(&self) -> bool {
        self.per_layer.iter().all(|&(_, _, b)| b <= self.sustainable)
    }

    /// The paper's Section V-B condition: every *convolution* sustains
    /// non-blocking operation. Single-image FC layers (AlexNet/VGG heads)
    /// are legitimately weight-bandwidth-bound on every accelerator and are
    /// excluded, exactly as the paper's phrasing ("a non-blocking
    /// convolution") scopes the claim.
    pub fn non_blocking_convolutions(&self) -> bool {
        self.per_layer
            .iter()
            .filter(|(_, op, _)| *op == LayerOp::Conv)
            .all(|&(_, _, b)| b <= self.sustainable)
    }

    /// Maximum utilization of the channel across layers, in `[0, ∞)`.
    pub fn peak_utilization(&self) -> f64 {
        self.peak_layer()
            .map(|(_, b)| b / self.sustainable)
            .unwrap_or(0.0)
    }

    /// Maximum utilization over convolution layers only.
    pub fn peak_conv_utilization(&self) -> f64 {
        self.per_layer
            .iter()
            .filter(|(_, op, _)| *op == LayerOp::Conv)
            .map(|&(_, _, b)| b / self.sustainable)
            .fold(0.0, f64::max)
    }
}

/// Computes per-layer required DRAM bandwidth for a simulated network run.
///
/// Activations (and their region masks) are just-in-time traffic charged
/// against the producing/consuming layer's runtime. Weights are static and
/// double-buffered ahead of need out of the 5 MB global buffer, so their
/// demand amortizes over the whole network's runtime — exactly the "cached
/// in the large global buffer" regime the paper's Section V-B describes.
///
/// # Panics
///
/// Panics if the report's layers do not match the topology.
pub fn bandwidth_report(
    net: &NetworkTopology,
    report: &NetworkSimReport,
    dram: DramModel,
) -> BandwidthReport {
    assert_eq!(net.layers.len(), report.layers.len(), "topology/report mismatch");
    let cycles_per_sec = report.frequency_mhz * 1e6;
    let total_seconds = report.total_cycles().max(1) as f64 / cycles_per_sec;
    // Convolution weights prefetch smoothly over the whole run; FC weight
    // matrices are far larger than the buffer and must stream during their
    // own layer (the classic batch-1 FC memory wall).
    let conv_weights: u64 = net
        .layers
        .iter()
        .filter(|l| l.op == LayerOp::Conv)
        .map(|l| l.weight_count())
        .sum();
    let conv_weight_stream = conv_weights as f64 / total_seconds;
    let per_layer = net
        .layers
        .iter()
        .zip(&report.layers)
        .map(|(spec, layer)| {
            let f = layer.sensitive_fraction.clamp(0.0, 1.0);
            // Same residency rule as the energy model: feature maps that
            // fit the 5 MB global buffer never travel to DRAM.
            let act_bytes = crate::dram_activation_bytes(
                spec.input_count() as f64 * (0.5 + 0.5 * f),
                spec.output_count() as f64 * (0.5 + 0.5 * f),
                5.0 * 1024.0 * 1024.0,
            ) + spec.input_count() as f64 / 512.0; // region mask bits
            let seconds = layer.cycles.total_cycles().max(1) as f64 / cycles_per_sec;
            let weight_demand = match spec.op {
                LayerOp::Conv => conv_weight_stream,
                LayerOp::Fc => spec.weight_count() as f64 / seconds,
            };
            (spec.name.clone(), spec.op, act_bytes / seconds + weight_demand)
        })
        .collect();
    BandwidthReport { per_layer, sustainable: dram.sustainable_bytes_per_sec() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArchConfig, DrqAccelerator};
    use drq_models::zoo::{self, InputRes};

    #[test]
    fn ddr3_sustains_resnet18_non_blocking() {
        // The paper's Section V-B claim, reproduced end to end.
        let net = zoo::resnet18(InputRes::Imagenet);
        let accel = DrqAccelerator::new(ArchConfig::paper_default());
        let report = accel.session(&net).seed(9).run().unwrap().into_report();
        let bw = bandwidth_report(&net, &report, DramModel::ddr3_1600());
        assert!(
            bw.non_blocking_convolutions(),
            "peak layer {} needs {:.1} GB/s > sustainable {:.1} GB/s",
            bw.peak_layer().map(|(n, _)| n).unwrap_or("?"),
            bw.peak_layer().map(|(_, b)| b / 1e9).unwrap_or(0.0),
            bw.sustainable / 1e9
        );
        // "Much smaller": conv utilization well under 1.
        assert!(bw.peak_conv_utilization() < 0.8, "{}", bw.peak_conv_utilization());
    }

    #[test]
    fn every_paper_network_fits_ddr3() {
        for net in zoo::paper_six(InputRes::Imagenet) {
            let accel = DrqAccelerator::new(ArchConfig::paper_default());
            let report = accel.session(&net).seed(5).run().unwrap().into_report();
            let bw = bandwidth_report(&net, &report, DramModel::ddr3_1600());
            assert!(
                bw.non_blocking_convolutions(),
                "{} convolutions exceed DDR3",
                net.name
            );
        }
    }

    #[test]
    fn tiny_channel_blocks() {
        let net = zoo::resnet18(InputRes::Imagenet);
        let accel = DrqAccelerator::new(ArchConfig::paper_default());
        let report = accel.session(&net).seed(9).run().unwrap().into_report();
        let slow = DramModel::new(1e6, 1.0); // 1 MB/s
        let bw = bandwidth_report(&net, &report, slow);
        assert!(!bw.non_blocking());
        assert!(!bw.non_blocking_convolutions());
        assert!(bw.peak_utilization() > 1.0);
    }

    #[test]
    fn peak_layer_is_reported() {
        let net = zoo::lenet5();
        let accel = DrqAccelerator::new(ArchConfig::paper_default());
        let report = accel.session(&net).seed(9).run().unwrap().into_report();
        let bw = bandwidth_report(&net, &report, DramModel::ddr3_1600());
        let (name, bytes) = bw.peak_layer().expect("layers exist");
        assert!(!name.is_empty());
        assert!(bytes > 0.0);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn rejects_bad_efficiency() {
        let _ = DramModel::new(1e9, 0.0);
    }

    #[test]
    fn try_new_returns_typed_errors() {
        use crate::SimError;
        assert!(matches!(
            DramModel::try_new(0.0, 0.5),
            Err(SimError::InvalidParameter { .. })
        ));
        assert!(matches!(
            DramModel::try_new(1e9, 1.5),
            Err(SimError::InvalidParameter { .. })
        ));
        assert!(DramModel::try_new(1e9, 0.7).is_ok());
    }

    #[test]
    fn burst_counts_round_up() {
        assert_eq!(DramModel::bursts_for_bytes(0.0), 0);
        assert_eq!(DramModel::bursts_for_bytes(1.0), 1);
        assert_eq!(DramModel::bursts_for_bytes(64.0), 1);
        assert_eq!(DramModel::bursts_for_bytes(65.0), 2);
        assert_eq!(DramModel::bursts_for_bytes(6400.0), 100);
    }
}
