//! The exact variable-speed systolic array simulator (Fig. 7 of the paper).
//!
//! Weight-stationary array: weights are held in the PEs, feature values
//! stream in from the line buffer on the left, partial sums accumulate down
//! each column. All PEs default to INT4 mode (one new input per cycle).
//! When any PE of a column receives a sensitive (INT8) value, the whole
//! column switches to INT8 mode for that input step and spends four cycles
//! (the time-multiplexed 8-bit MAC); the INT4 PEs of that column stall for
//! three cycles, and the stall control shifts to the right-neighbouring
//! column with one cycle of lag — so the array remains systolic at variable
//! speed.

use crate::faults::{FaultInjector, FaultSite};
use crate::{MultiPrecisionPe, PackedStream, SimError};
use drq_quant::Precision;

/// One feature value entering a row of the array: an INT8 code plus its
/// sensitivity bit from the binary mask map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamElement {
    /// INT8 activation code.
    pub value: i32,
    /// `true` = sensitive (compute INT8), `false` = insensitive (INT4).
    pub sensitive: bool,
}

impl StreamElement {
    /// Creates an element.
    pub fn new(value: i32, sensitive: bool) -> Self {
        Self { value, sensitive }
    }
}

/// Result of simulating one tile of computation on the array.
#[derive(Debug, Clone, PartialEq)]
pub struct SimTrace {
    /// Total cycles from first input to last drained output.
    pub cycles: u64,
    /// Steps executed in INT8 (4-cycle) mode.
    pub int8_steps: u64,
    /// Steps executed in INT4 (1-cycle) mode.
    pub int4_steps: u64,
    /// PE-cycles lost to stalls (INT4-receiving PEs waiting out an INT8
    /// column step), summed over all columns.
    pub stall_pe_cycles: u64,
    /// Per-column, per-step dot products in the INT8×INT8 product domain.
    pub outputs: Vec<Vec<i64>>,
}

impl SimTrace {
    /// Fraction of PE-cycles lost to stalls — the Fig. 14 "stall ratio".
    pub fn stall_ratio(&self, rows: usize, cols: usize) -> f64 {
        let total = self.cycles * (rows * cols) as u64;
        if total == 0 {
            0.0
        } else {
            self.stall_pe_cycles as f64 / total as f64
        }
    }
}

/// The exact simulator: `rows × cols` PEs with preloaded weights.
///
/// # Examples
///
/// ```
/// use drq_sim::{StreamElement, SystolicArray};
///
/// // 2x1 array computing a running dot product of two-element vectors.
/// let array = SystolicArray::new(vec![vec![2], vec![3]]);
/// let streams = vec![
///     vec![StreamElement::new(16, false)],
///     vec![StreamElement::new(32, false)],
/// ];
/// let trace = array.simulate(&streams);
/// // INT4 mode: products use high nibbles (1 and 2) rescaled by 256 —
/// // weights 2 and 3 clip to high nibbles 0, so the result is 0 here;
/// // sensitive (INT8) elements keep full precision instead.
/// assert_eq!(trace.int4_steps, 1);
/// # let _ = trace.outputs;
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystolicArray {
    rows: usize,
    cols: usize,
    /// Weights `[row][col]`, INT8 codes.
    weights: Vec<Vec<i32>>,
}

impl SystolicArray {
    /// Creates an array from a `[row][col]` weight matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty or ragged, or any weight exceeds 8
    /// signed bits.
    pub fn new(weights: Vec<Vec<i32>>) -> Self {
        Self::try_new(weights).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible counterpart of [`SystolicArray::new`].
    pub fn try_new(weights: Vec<Vec<i32>>) -> Result<Self, SimError> {
        if weights.is_empty() || weights[0].is_empty() {
            return Err(SimError::InvalidGeometry {
                context: "systolic array",
                detail: "empty weight matrix".into(),
            });
        }
        let cols = weights[0].len();
        for row in &weights {
            if row.len() != cols {
                return Err(SimError::InvalidGeometry {
                    context: "systolic array",
                    detail: "ragged weight matrix".into(),
                });
            }
            for &w in row {
                if !(-128..=127).contains(&w) {
                    return Err(SimError::OperandRange {
                        context: "systolic array",
                        detail: format!("weight {w} exceeds 8 bits"),
                    });
                }
            }
        }
        Ok(Self { rows: weights.len(), cols, weights })
    }

    /// Number of PE rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of PE columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Runs the array over per-row input streams (all the same length).
    ///
    /// Each step consumes one element per row; the per-column dot product of
    /// that input vector against the column's weights is emitted into
    /// [`SimTrace::outputs`]. Element sensitivity decides each PE's mode;
    /// any sensitive element in a step switches the entire column to the
    /// 4-cycle INT8 schedule for that step.
    ///
    /// # Panics
    ///
    /// Panics if the stream count differs from `rows` or lengths are ragged.
    pub fn simulate(&self, streams: &[Vec<StreamElement>]) -> SimTrace {
        self.try_simulate(streams).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible counterpart of [`SystolicArray::simulate`].
    pub fn try_simulate(&self, streams: &[Vec<StreamElement>]) -> Result<SimTrace, SimError> {
        self.simulate_impl(streams, None)
    }

    /// Runs the array with fault injection: the injector's plan decides
    /// which line-buffer nibbles stick, which PE registers and accumulators
    /// flip, and which steps absorb spurious stall cycles. With a plan that
    /// never fires, the trace is identical to [`SystolicArray::simulate`];
    /// the un-faulted entry points never consult an injector at all.
    pub fn simulate_faulted(
        &self,
        streams: &[Vec<StreamElement>],
        injector: &mut FaultInjector,
    ) -> Result<SimTrace, SimError> {
        self.simulate_impl(streams, Some(injector))
    }

    fn simulate_impl(
        &self,
        streams: &[Vec<StreamElement>],
        mut faults: Option<&mut FaultInjector>,
    ) -> Result<SimTrace, SimError> {
        if streams.len() != self.rows {
            return Err(SimError::InvalidGeometry {
                context: "systolic array",
                detail: format!(
                    "need one stream per row ({} rows, {} streams)",
                    self.rows,
                    streams.len()
                ),
            });
        }
        let steps = streams.first().map(Vec::len).unwrap_or(0);
        if streams.iter().any(|s| s.len() != steps) {
            return Err(SimError::InvalidGeometry {
                context: "systolic array",
                detail: "ragged input streams".into(),
            });
        }
        if steps == 0 {
            return Ok(SimTrace {
                cycles: 0,
                int8_steps: 0,
                int4_steps: 0,
                stall_pe_cycles: 0,
                outputs: vec![Vec::new(); self.cols],
            });
        }

        // Memory-path faults: when the plan targets the line buffer, each
        // row stream makes the real pack→unpack round trip with stuck-at-1
        // nibble corruption in between. The round trip itself is
        // numerically neutral (insensitive values only ever feed their
        // high nibble to the PEs), so plans without stuck-at events leave
        // outputs untouched.
        let corrupted: Option<Vec<Vec<StreamElement>>> = match faults.as_deref_mut() {
            Some(inj) if inj.targets(FaultSite::LineBufferStuckAt) => Some(
                streams
                    .iter()
                    .map(|row| {
                        let mut packed = PackedStream::pack(row);
                        for n in 0..packed.nibble_count() {
                            if let Some(bit) =
                                inj.draw_bit(FaultSite::LineBufferStuckAt, None)
                            {
                                packed.stuck_at(n, bit);
                            }
                        }
                        packed.unpack()
                    })
                    .collect(),
            ),
            _ => None,
        };
        let streams: &[Vec<StreamElement>] = corrupted.as_deref().unwrap_or(streams);

        // Per-step cost and sensitivity census (identical for every column —
        // the stall control replicates with one-cycle lag, Fig. 7(b) ③).
        let mut int8_steps = 0u64;
        let mut int4_steps = 0u64;
        let mut stall_per_col = 0u64;
        let mut step_cost: Vec<u64> = (0..steps)
            .map(|t| {
                let sensitive_rows =
                    streams.iter().filter(|s| s[t].sensitive).count() as u64;
                if sensitive_rows > 0 {
                    int8_steps += 1;
                    // INT4-receiving PEs in this column stall 3 cycles each.
                    stall_per_col += 3 * (self.rows as u64 - sensitive_rows);
                    4
                } else {
                    int4_steps += 1;
                    1
                }
            })
            .collect();

        // The precision of each step is fixed by the sensitivity census —
        // captured before stall faults stretch step costs, since a stalled
        // INT8 step is still an INT8 step.
        let int8_step: Vec<bool> = step_cost.iter().map(|&c| c == 4).collect();

        // Spurious stall faults lengthen individual steps. They only ever
        // add cycles, so the clean closed-form cycle count stays a lower
        // bound of a faulted run; the injector's counters account the
        // injected cycles (they are not precision stalls).
        if let Some(inj) = faults.as_deref_mut() {
            if inj.targets(FaultSite::StallCycle) {
                for cost in step_cost.iter_mut() {
                    if inj.draw_bit(FaultSite::StallCycle, None).is_some() {
                        *cost += 1;
                    }
                }
            }
        }

        // Cycle-accurate schedule: column j may begin step t only after it
        // finished step t-1 AND one cycle after column j-1 began step t
        // (the shifted data/stall signals).
        let mut start = vec![vec![0u64; steps]; self.cols];
        let mut finish = vec![vec![0u64; steps]; self.cols];
        for j in 0..self.cols {
            for t in 0..steps {
                let after_prev_step = if t > 0 { finish[j][t - 1] } else { 0 };
                let after_left_col = if j > 0 { start[j - 1][t] + 1 } else { 0 };
                start[j][t] = after_prev_step.max(after_left_col);
                finish[j][t] = start[j][t] + step_cost[t];
            }
        }

        // Numerical datapath: every MAC runs through the cycle-accurate
        // multi-precision PE, so the emitted products are bit-exact with the
        // hardware decomposition.
        let mut outputs = vec![Vec::with_capacity(steps); self.cols];
        let mut pe = MultiPrecisionPe::new();
        for (j, col_out) in outputs.iter_mut().enumerate() {
            for t in 0..steps {
                let col_mode = if int8_step[t] {
                    Precision::Int8
                } else {
                    Precision::Int4
                };
                let mut acc: i64 = 0;
                for (i, stream) in streams.iter().enumerate() {
                    let e = stream[t];
                    // In an INT8 column step, insensitive values still
                    // compute at INT4 (they merely wait); the mode per PE
                    // follows the element's own sensitivity.
                    let mode = if e.sensitive { col_mode } else { Precision::Int4 };
                    pe.load_weight(self.weights[i][j]);
                    pe.start_mac(e.value, mode);
                    if let Some(inj) = faults.as_deref_mut() {
                        // Register faults strike the latched operands of
                        // exactly this MAC (weight-stationary arrays reload
                        // per-MAC here because one PE plays every position).
                        if let Some(bit) = inj.draw_bit(FaultSite::PeWeightRegister, None)
                        {
                            pe.flip_weight_bit(bit);
                        }
                        if let Some(bit) =
                            inj.draw_bit(FaultSite::PeActivationRegister, None)
                        {
                            pe.flip_feature_bit(bit);
                        }
                    }
                    while !pe.is_done() {
                        pe.tick();
                    }
                    acc += pe.product() as i64;
                }
                if let Some(inj) = faults.as_deref_mut() {
                    if let Some(bit) = inj.draw_bit(FaultSite::PeAccumulator, None) {
                        acc ^= 1i64 << bit;
                    }
                }
                col_out.push(acc);
            }
        }

        // Drain: partial sums ripple down `rows` accumulator hops after the
        // last column finishes its last step.
        let compute_end = finish[self.cols - 1][steps - 1];
        Ok(SimTrace {
            cycles: compute_end + self.rows as u64,
            int8_steps,
            int4_steps,
            stall_pe_cycles: stall_per_col * self.cols as u64,
            outputs,
        })
    }

    /// The closed-form cycle count the fast layer model uses:
    /// `Σ step costs + (cols − 1) + rows`. The exact simulator reduces to
    /// this whenever step costs are ≥ 1, which tests assert.
    pub fn analytic_cycles(&self, step_costs: &[u64]) -> u64 {
        step_costs.iter().sum::<u64>() + (self.cols as u64 - 1) + self.rows as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drq_tensor::XorShiftRng;

    fn random_streams(
        rows: usize,
        steps: usize,
        sensitive_prob: f64,
        seed: u64,
    ) -> Vec<Vec<StreamElement>> {
        let mut rng = XorShiftRng::new(seed);
        (0..rows)
            .map(|_| {
                (0..steps)
                    .map(|_| {
                        StreamElement::new(
                            rng.next_below(255) as i32 - 127,
                            rng.next_f64() < sensitive_prob,
                        )
                    })
                    .collect()
            })
            .collect()
    }

    fn random_weights(rows: usize, cols: usize, seed: u64) -> Vec<Vec<i32>> {
        let mut rng = XorShiftRng::new(seed);
        (0..rows)
            .map(|_| (0..cols).map(|_| rng.next_below(255) as i32 - 127).collect())
            .collect()
    }

    /// Reference dot product with the same mixed-precision semantics.
    fn reference_output(weights: &[Vec<i32>], streams: &[Vec<StreamElement>], j: usize, t: usize) -> i64 {
        streams
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let e = s[t];
                let w = weights[i][j];
                if e.sensitive {
                    (w * e.value) as i64
                } else {
                    (((w >> 4) * (e.value >> 4)) as i64) << 8
                }
            })
            .sum()
    }

    #[test]
    fn all_int4_runs_one_cycle_per_step() {
        let array = SystolicArray::new(random_weights(4, 3, 1));
        let streams = random_streams(4, 10, 0.0, 2);
        let trace = array.simulate(&streams);
        assert_eq!(trace.int4_steps, 10);
        assert_eq!(trace.int8_steps, 0);
        assert_eq!(trace.stall_pe_cycles, 0);
        // 10 steps + (cols-1) lag + rows drain.
        assert_eq!(trace.cycles, 10 + 2 + 4);
    }

    #[test]
    fn all_int8_runs_four_cycles_per_step() {
        let array = SystolicArray::new(random_weights(4, 3, 3));
        let streams = random_streams(4, 10, 1.0, 4);
        let trace = array.simulate(&streams);
        assert_eq!(trace.int8_steps, 10);
        assert_eq!(trace.cycles, 40 + 2 + 4);
        // No INT4 PEs to stall when every row is sensitive.
        assert_eq!(trace.stall_pe_cycles, 0);
    }

    #[test]
    fn exact_cycles_match_analytic_formula() {
        for seed in 0..5 {
            let rows = 3 + (seed as usize % 4);
            let cols = 2 + (seed as usize % 3);
            let array = SystolicArray::new(random_weights(rows, cols, seed));
            let streams = random_streams(rows, 25, 0.3, seed + 50);
            let trace = array.simulate(&streams);
            let costs: Vec<u64> = (0..25)
                .map(|t| {
                    if streams.iter().any(|s| s[t].sensitive) {
                        4
                    } else {
                        1
                    }
                })
                .collect();
            assert_eq!(trace.cycles, array.analytic_cycles(&costs), "seed {seed}");
        }
    }

    #[test]
    fn outputs_match_reference_dot_products() {
        let weights = random_weights(5, 4, 7);
        let array = SystolicArray::new(weights.clone());
        let streams = random_streams(5, 12, 0.4, 8);
        let trace = array.simulate(&streams);
        for j in 0..4 {
            for t in 0..12 {
                assert_eq!(
                    trace.outputs[j][t],
                    reference_output(&weights, &streams, j, t),
                    "col {j} step {t}"
                );
            }
        }
    }

    #[test]
    fn stall_accounting_counts_insensitive_rows() {
        // 4 rows; step with exactly one sensitive row stalls the 3 INT4 PEs
        // for 3 cycles each, per column.
        let array = SystolicArray::new(random_weights(4, 2, 9));
        let mut streams = random_streams(4, 1, 0.0, 10);
        streams[2][0].sensitive = true;
        let trace = array.simulate(&streams);
        assert_eq!(trace.stall_pe_cycles, 3 * 3 * 2);
    }

    #[test]
    fn stall_ratio_increases_with_sensitive_fraction() {
        let array = SystolicArray::new(random_weights(8, 4, 11));
        let ratio = |p: f64| {
            let streams = random_streams(8, 200, p, 12);
            let trace = array.simulate(&streams);
            trace.stall_ratio(8, 4)
        };
        let r0 = ratio(0.0);
        let r_low = ratio(0.02);
        assert_eq!(r0, 0.0);
        assert!(r_low > 0.0);
        // At 100% sensitivity the stall ratio drops back to 0 (everyone
        // computes INT8) — the non-monotonicity the paper's Fig. 14 shows
        // at the low-threshold end.
        let r_all = ratio(1.0);
        assert!(r_all < r_low);
    }

    #[test]
    fn empty_streams_are_trivial() {
        let array = SystolicArray::new(random_weights(2, 2, 13));
        let trace = array.simulate(&[Vec::new(), Vec::new()]);
        assert_eq!(trace.cycles, 0);
        assert!(trace.outputs.iter().all(Vec::is_empty));
    }

    #[test]
    #[should_panic(expected = "one stream per row")]
    fn rejects_wrong_stream_count() {
        let array = SystolicArray::new(random_weights(3, 2, 14));
        let _ = array.simulate(&random_streams(2, 4, 0.0, 15));
    }

    #[test]
    fn try_new_returns_typed_errors() {
        use crate::SimError;
        assert!(matches!(
            SystolicArray::try_new(Vec::new()),
            Err(SimError::InvalidGeometry { .. })
        ));
        assert!(matches!(
            SystolicArray::try_new(vec![vec![1, 2], vec![3]]),
            Err(SimError::InvalidGeometry { .. })
        ));
        assert!(matches!(
            SystolicArray::try_new(vec![vec![500]]),
            Err(SimError::OperandRange { .. })
        ));
    }

    #[test]
    fn never_firing_plan_matches_clean_simulation() {
        use crate::faults::{FaultInjector, FaultPlan, FaultRule, FaultSite};
        let array = SystolicArray::new(random_weights(4, 3, 21));
        let streams = random_streams(4, 16, 0.3, 22);
        let clean = array.simulate(&streams);
        // Rules on every site at rate 0 — the injector is consulted but
        // nothing ever fires.
        let plan = FaultPlan {
            seed: 9,
            rules: FaultSite::ALL.into_iter().map(|s| FaultRule::new(s, 0.0)).collect(),
        };
        let mut inj = FaultInjector::new(&plan).unwrap();
        let faulted = array.simulate_faulted(&streams, &mut inj).unwrap();
        assert_eq!(clean, faulted);
        assert_eq!(inj.counters().total(), 0);
    }

    #[test]
    fn single_accumulator_flip_perturbs_exactly_one_output_cell() {
        use crate::faults::{FaultInjector, FaultPlan, FaultRule, FaultSite};
        let array = SystolicArray::new(random_weights(5, 4, 31));
        let streams = random_streams(5, 12, 0.4, 32);
        let clean = array.simulate(&streams);
        let plan = FaultPlan {
            seed: 1,
            rules: vec![
                FaultRule::new(FaultSite::PeAccumulator, 1.0).with_bit(9).with_max_events(1),
            ],
        };
        let mut inj = FaultInjector::new(&plan).unwrap();
        let faulted = array.simulate_faulted(&streams, &mut inj).unwrap();
        assert_eq!(inj.counters().pe_accumulator, 1);
        // Timing is untouched; exactly one (col, step) cell differs, by the
        // flipped bit.
        assert_eq!(clean.cycles, faulted.cycles);
        let diffs: Vec<_> = (0..4)
            .flat_map(|j| (0..12).map(move |t| (j, t)))
            .filter(|&(j, t)| clean.outputs[j][t] != faulted.outputs[j][t])
            .collect();
        assert_eq!(diffs.len(), 1);
        let (j, t) = diffs[0];
        assert_eq!(clean.outputs[j][t] ^ faulted.outputs[j][t], 1 << 9);
    }

    #[test]
    fn stall_faults_only_add_cycles() {
        use crate::faults::{FaultInjector, FaultPlan, FaultRule, FaultSite};
        let array = SystolicArray::new(random_weights(4, 3, 41));
        let streams = random_streams(4, 30, 0.2, 42);
        let clean = array.simulate(&streams);
        let plan = FaultPlan {
            seed: 4,
            rules: vec![FaultRule::new(FaultSite::StallCycle, 0.5)],
        };
        let mut inj = FaultInjector::new(&plan).unwrap();
        let faulted = array.simulate_faulted(&streams, &mut inj).unwrap();
        let injected = inj.counters().stall_cycle;
        assert!(injected > 0);
        assert_eq!(faulted.cycles, clean.cycles + injected);
        // Numerics are untouched by timing faults.
        assert_eq!(faulted.outputs, clean.outputs);
    }

    #[test]
    fn faulted_runs_replay_across_invocations() {
        use crate::faults::{FaultInjector, FaultPlan, FaultRule, FaultSite};
        let array = SystolicArray::new(random_weights(6, 5, 51));
        let streams = random_streams(6, 20, 0.3, 52);
        let plan = FaultPlan {
            seed: 77,
            rules: vec![
                FaultRule::new(FaultSite::PeWeightRegister, 0.01),
                FaultRule::new(FaultSite::LineBufferStuckAt, 0.01),
                FaultRule::new(FaultSite::StallCycle, 0.05),
            ],
        };
        let run = || {
            let mut inj = FaultInjector::new(&plan).unwrap();
            let trace = array.simulate_faulted(&streams, &mut inj).unwrap();
            (trace, inj.counters())
        };
        assert_eq!(run(), run());
    }
}
