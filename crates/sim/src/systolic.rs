//! The exact variable-speed systolic array simulator (Fig. 7 of the paper).
//!
//! Weight-stationary array: weights are held in the PEs, feature values
//! stream in from the line buffer on the left, partial sums accumulate down
//! each column. All PEs default to INT4 mode (one new input per cycle).
//! When any PE of a column receives a sensitive (INT8) value, the whole
//! column switches to INT8 mode for that input step and spends four cycles
//! (the time-multiplexed 8-bit MAC); the INT4 PEs of that column stall for
//! three cycles, and the stall control shifts to the right-neighbouring
//! column with one cycle of lag — so the array remains systolic at variable
//! speed.

use crate::MultiPrecisionPe;
use drq_quant::Precision;

/// One feature value entering a row of the array: an INT8 code plus its
/// sensitivity bit from the binary mask map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamElement {
    /// INT8 activation code.
    pub value: i32,
    /// `true` = sensitive (compute INT8), `false` = insensitive (INT4).
    pub sensitive: bool,
}

impl StreamElement {
    /// Creates an element.
    pub fn new(value: i32, sensitive: bool) -> Self {
        Self { value, sensitive }
    }
}

/// Result of simulating one tile of computation on the array.
#[derive(Debug, Clone, PartialEq)]
pub struct SimTrace {
    /// Total cycles from first input to last drained output.
    pub cycles: u64,
    /// Steps executed in INT8 (4-cycle) mode.
    pub int8_steps: u64,
    /// Steps executed in INT4 (1-cycle) mode.
    pub int4_steps: u64,
    /// PE-cycles lost to stalls (INT4-receiving PEs waiting out an INT8
    /// column step), summed over all columns.
    pub stall_pe_cycles: u64,
    /// Per-column, per-step dot products in the INT8×INT8 product domain.
    pub outputs: Vec<Vec<i64>>,
}

impl SimTrace {
    /// Fraction of PE-cycles lost to stalls — the Fig. 14 "stall ratio".
    pub fn stall_ratio(&self, rows: usize, cols: usize) -> f64 {
        let total = self.cycles * (rows * cols) as u64;
        if total == 0 {
            0.0
        } else {
            self.stall_pe_cycles as f64 / total as f64
        }
    }
}

/// The exact simulator: `rows × cols` PEs with preloaded weights.
///
/// # Examples
///
/// ```
/// use drq_sim::{StreamElement, SystolicArray};
///
/// // 2x1 array computing a running dot product of two-element vectors.
/// let array = SystolicArray::new(vec![vec![2], vec![3]]);
/// let streams = vec![
///     vec![StreamElement::new(16, false)],
///     vec![StreamElement::new(32, false)],
/// ];
/// let trace = array.simulate(&streams);
/// // INT4 mode: products use high nibbles (1 and 2) rescaled by 256 —
/// // weights 2 and 3 clip to high nibbles 0, so the result is 0 here;
/// // sensitive (INT8) elements keep full precision instead.
/// assert_eq!(trace.int4_steps, 1);
/// # let _ = trace.outputs;
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystolicArray {
    rows: usize,
    cols: usize,
    /// Weights `[row][col]`, INT8 codes.
    weights: Vec<Vec<i32>>,
}

impl SystolicArray {
    /// Creates an array from a `[row][col]` weight matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty or ragged, or any weight exceeds 8
    /// signed bits.
    pub fn new(weights: Vec<Vec<i32>>) -> Self {
        assert!(!weights.is_empty() && !weights[0].is_empty(), "empty weight matrix");
        let cols = weights[0].len();
        for row in &weights {
            assert_eq!(row.len(), cols, "ragged weight matrix");
            for &w in row {
                assert!((-128..=127).contains(&w), "weight {w} exceeds 8 bits");
            }
        }
        Self { rows: weights.len(), cols, weights }
    }

    /// Number of PE rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of PE columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Runs the array over per-row input streams (all the same length).
    ///
    /// Each step consumes one element per row; the per-column dot product of
    /// that input vector against the column's weights is emitted into
    /// [`SimTrace::outputs`]. Element sensitivity decides each PE's mode;
    /// any sensitive element in a step switches the entire column to the
    /// 4-cycle INT8 schedule for that step.
    ///
    /// # Panics
    ///
    /// Panics if the stream count differs from `rows` or lengths are ragged.
    pub fn simulate(&self, streams: &[Vec<StreamElement>]) -> SimTrace {
        assert_eq!(streams.len(), self.rows, "need one stream per row");
        let steps = streams.first().map(Vec::len).unwrap_or(0);
        for s in streams {
            assert_eq!(s.len(), steps, "ragged input streams");
        }
        if steps == 0 {
            return SimTrace {
                cycles: 0,
                int8_steps: 0,
                int4_steps: 0,
                stall_pe_cycles: 0,
                outputs: vec![Vec::new(); self.cols],
            };
        }

        // Per-step cost and sensitivity census (identical for every column —
        // the stall control replicates with one-cycle lag, Fig. 7(b) ③).
        let mut int8_steps = 0u64;
        let mut int4_steps = 0u64;
        let mut stall_per_col = 0u64;
        let step_cost: Vec<u64> = (0..steps)
            .map(|t| {
                let sensitive_rows =
                    streams.iter().filter(|s| s[t].sensitive).count() as u64;
                if sensitive_rows > 0 {
                    int8_steps += 1;
                    // INT4-receiving PEs in this column stall 3 cycles each.
                    stall_per_col += 3 * (self.rows as u64 - sensitive_rows);
                    4
                } else {
                    int4_steps += 1;
                    1
                }
            })
            .collect();

        // Cycle-accurate schedule: column j may begin step t only after it
        // finished step t-1 AND one cycle after column j-1 began step t
        // (the shifted data/stall signals).
        let mut start = vec![vec![0u64; steps]; self.cols];
        let mut finish = vec![vec![0u64; steps]; self.cols];
        for j in 0..self.cols {
            for t in 0..steps {
                let after_prev_step = if t > 0 { finish[j][t - 1] } else { 0 };
                let after_left_col = if j > 0 { start[j - 1][t] + 1 } else { 0 };
                start[j][t] = after_prev_step.max(after_left_col);
                finish[j][t] = start[j][t] + step_cost[t];
            }
        }

        // Numerical datapath: every MAC runs through the cycle-accurate
        // multi-precision PE, so the emitted products are bit-exact with the
        // hardware decomposition.
        let mut outputs = vec![Vec::with_capacity(steps); self.cols];
        let mut pe = MultiPrecisionPe::new();
        for (j, col_out) in outputs.iter_mut().enumerate() {
            for t in 0..steps {
                let col_mode = if step_cost[t] == 4 {
                    Precision::Int8
                } else {
                    Precision::Int4
                };
                let mut acc: i64 = 0;
                for (i, stream) in streams.iter().enumerate() {
                    let e = stream[t];
                    // In an INT8 column step, insensitive values still
                    // compute at INT4 (they merely wait); the mode per PE
                    // follows the element's own sensitivity.
                    let mode = if e.sensitive { col_mode } else { Precision::Int4 };
                    pe.load_weight(self.weights[i][j]);
                    pe.start_mac(e.value, mode);
                    while !pe.is_done() {
                        pe.tick();
                    }
                    acc += pe.product() as i64;
                }
                col_out.push(acc);
            }
        }

        // Drain: partial sums ripple down `rows` accumulator hops after the
        // last column finishes its last step.
        let compute_end = finish[self.cols - 1][steps - 1];
        SimTrace {
            cycles: compute_end + self.rows as u64,
            int8_steps,
            int4_steps,
            stall_pe_cycles: stall_per_col * self.cols as u64,
            outputs,
        }
    }

    /// The closed-form cycle count the fast layer model uses:
    /// `Σ step costs + (cols − 1) + rows`. The exact simulator reduces to
    /// this whenever step costs are ≥ 1, which tests assert.
    pub fn analytic_cycles(&self, step_costs: &[u64]) -> u64 {
        step_costs.iter().sum::<u64>() + (self.cols as u64 - 1) + self.rows as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drq_tensor::XorShiftRng;

    fn random_streams(
        rows: usize,
        steps: usize,
        sensitive_prob: f64,
        seed: u64,
    ) -> Vec<Vec<StreamElement>> {
        let mut rng = XorShiftRng::new(seed);
        (0..rows)
            .map(|_| {
                (0..steps)
                    .map(|_| {
                        StreamElement::new(
                            rng.next_below(255) as i32 - 127,
                            rng.next_f64() < sensitive_prob,
                        )
                    })
                    .collect()
            })
            .collect()
    }

    fn random_weights(rows: usize, cols: usize, seed: u64) -> Vec<Vec<i32>> {
        let mut rng = XorShiftRng::new(seed);
        (0..rows)
            .map(|_| (0..cols).map(|_| rng.next_below(255) as i32 - 127).collect())
            .collect()
    }

    /// Reference dot product with the same mixed-precision semantics.
    fn reference_output(weights: &[Vec<i32>], streams: &[Vec<StreamElement>], j: usize, t: usize) -> i64 {
        streams
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let e = s[t];
                let w = weights[i][j];
                if e.sensitive {
                    (w * e.value) as i64
                } else {
                    (((w >> 4) * (e.value >> 4)) as i64) << 8
                }
            })
            .sum()
    }

    #[test]
    fn all_int4_runs_one_cycle_per_step() {
        let array = SystolicArray::new(random_weights(4, 3, 1));
        let streams = random_streams(4, 10, 0.0, 2);
        let trace = array.simulate(&streams);
        assert_eq!(trace.int4_steps, 10);
        assert_eq!(trace.int8_steps, 0);
        assert_eq!(trace.stall_pe_cycles, 0);
        // 10 steps + (cols-1) lag + rows drain.
        assert_eq!(trace.cycles, 10 + 2 + 4);
    }

    #[test]
    fn all_int8_runs_four_cycles_per_step() {
        let array = SystolicArray::new(random_weights(4, 3, 3));
        let streams = random_streams(4, 10, 1.0, 4);
        let trace = array.simulate(&streams);
        assert_eq!(trace.int8_steps, 10);
        assert_eq!(trace.cycles, 40 + 2 + 4);
        // No INT4 PEs to stall when every row is sensitive.
        assert_eq!(trace.stall_pe_cycles, 0);
    }

    #[test]
    fn exact_cycles_match_analytic_formula() {
        for seed in 0..5 {
            let rows = 3 + (seed as usize % 4);
            let cols = 2 + (seed as usize % 3);
            let array = SystolicArray::new(random_weights(rows, cols, seed));
            let streams = random_streams(rows, 25, 0.3, seed + 50);
            let trace = array.simulate(&streams);
            let costs: Vec<u64> = (0..25)
                .map(|t| {
                    if streams.iter().any(|s| s[t].sensitive) {
                        4
                    } else {
                        1
                    }
                })
                .collect();
            assert_eq!(trace.cycles, array.analytic_cycles(&costs), "seed {seed}");
        }
    }

    #[test]
    fn outputs_match_reference_dot_products() {
        let weights = random_weights(5, 4, 7);
        let array = SystolicArray::new(weights.clone());
        let streams = random_streams(5, 12, 0.4, 8);
        let trace = array.simulate(&streams);
        for j in 0..4 {
            for t in 0..12 {
                assert_eq!(
                    trace.outputs[j][t],
                    reference_output(&weights, &streams, j, t),
                    "col {j} step {t}"
                );
            }
        }
    }

    #[test]
    fn stall_accounting_counts_insensitive_rows() {
        // 4 rows; step with exactly one sensitive row stalls the 3 INT4 PEs
        // for 3 cycles each, per column.
        let array = SystolicArray::new(random_weights(4, 2, 9));
        let mut streams = random_streams(4, 1, 0.0, 10);
        streams[2][0].sensitive = true;
        let trace = array.simulate(&streams);
        assert_eq!(trace.stall_pe_cycles, 3 * 3 * 2);
    }

    #[test]
    fn stall_ratio_increases_with_sensitive_fraction() {
        let array = SystolicArray::new(random_weights(8, 4, 11));
        let ratio = |p: f64| {
            let streams = random_streams(8, 200, p, 12);
            let trace = array.simulate(&streams);
            trace.stall_ratio(8, 4)
        };
        let r0 = ratio(0.0);
        let r_low = ratio(0.02);
        assert_eq!(r0, 0.0);
        assert!(r_low > 0.0);
        // At 100% sensitivity the stall ratio drops back to 0 (everyone
        // computes INT8) — the non-monotonicity the paper's Fig. 14 shows
        // at the low-threshold end.
        let r_all = ratio(1.0);
        assert!(r_all < r_low);
    }

    #[test]
    fn empty_streams_are_trivial() {
        let array = SystolicArray::new(random_weights(2, 2, 13));
        let trace = array.simulate(&[Vec::new(), Vec::new()]);
        assert_eq!(trace.cycles, 0);
        assert!(trace.outputs.iter().all(Vec::is_empty));
    }

    #[test]
    #[should_panic(expected = "one stream per row")]
    fn rejects_wrong_stream_count() {
        let array = SystolicArray::new(random_weights(3, 2, 14));
        let _ = array.simulate(&random_streams(2, 4, 0.0, 15));
    }
}
