//! Fast analytic layer-level cycle model.
//!
//! The exact PE-level simulator ([`crate::SystolicArray`]) proves that the
//! variable-speed array's runtime reduces to a closed form: pipeline fill
//! plus the sum of per-step costs, where a step (one output position) costs
//! 4 cycles if any streamed value in it is sensitive and 1 cycle otherwise.
//! This module applies that closed form per layer with the weight-stationary
//! tiling of the DRQ architecture (Section IV-A: 16 pages of 18×11 PEs,
//! filters split across pages, kernel taps down the rows).

use crate::SimError;
use drq_core::MaskMap;
use drq_models::ConvLayerSpec;

/// Cycle/MAC breakdown of one layer on the DRQ array.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LayerCycles {
    /// Steps (output positions × tiles) executed at 1 cycle (all-INT4).
    pub int4_steps: u64,
    /// Steps executed at 4 cycles (column in INT8 mode).
    pub int8_steps: u64,
    /// Cycles spent computing (Σ step costs over all serialized passes).
    pub compute_cycles: u64,
    /// Pipeline fill/drain cycles.
    pub fill_cycles: u64,
    /// Cycles loading weight tiles into the array (after double-buffering
    /// overlap; only the exposed residual).
    pub weight_load_cycles: u64,
    /// Weight-load cycles before overlap hiding (the paper's Fig. 16
    /// accounts loads unoverlapped; this field reports that view).
    pub weight_load_raw_cycles: u64,
    /// PE-cycles lost to stalls (INT4 PEs waiting out INT8 column steps).
    pub stall_pe_cycles: u64,
    /// MACs executed in INT4 mode.
    pub int4_macs: u64,
    /// MACs executed in INT8 mode.
    pub int8_macs: u64,
    /// PE rows × total cycles (for stall-ratio normalization).
    pub pe_cycles: u64,
}

impl LayerCycles {
    /// Total layer latency in cycles.
    pub fn total_cycles(&self) -> u64 {
        self.compute_cycles + self.fill_cycles + self.weight_load_cycles
    }

    /// Fraction of MACs executed at 4 bits.
    pub fn int4_fraction(&self) -> f64 {
        let t = self.int4_macs + self.int8_macs;
        if t == 0 {
            0.0
        } else {
            self.int4_macs as f64 / t as f64
        }
    }

    /// Fraction of PE-cycles lost to stalls (Fig. 14's stall ratio).
    pub fn stall_ratio(&self) -> f64 {
        if self.pe_cycles == 0 {
            0.0
        } else {
            self.stall_pe_cycles as f64 / self.pe_cycles as f64
        }
    }

    /// Accumulates another layer's counts (for network totals).
    pub fn merge(&mut self, o: &LayerCycles) {
        self.int4_steps += o.int4_steps;
        self.int8_steps += o.int8_steps;
        self.compute_cycles += o.compute_cycles;
        self.fill_cycles += o.fill_cycles;
        self.weight_load_cycles += o.weight_load_cycles;
        self.weight_load_raw_cycles += o.weight_load_raw_cycles;
        self.stall_pe_cycles += o.stall_pe_cycles;
        self.int4_macs += o.int4_macs;
        self.int8_macs += o.int8_macs;
        self.pe_cycles += o.pe_cycles;
    }
}

/// The fast per-layer model, parameterized by the array geometry.
///
/// # Examples
///
/// ```
/// use drq_sim::LayerCycleModel;
/// use drq_core::{MaskMap, RegionGrid, RegionSize};
/// use drq_models::ConvLayerSpec;
///
/// let model = LayerCycleModel::new(18, 11, 16);
/// let spec = ConvLayerSpec::conv("c", "B1", 4, 8, 8, 8, 3, 3, 1, 1);
/// let grid = RegionGrid::new(8, 8, RegionSize::new(4, 4));
/// let masks = vec![MaskMap::all_insensitive(grid); 4];
/// let cycles = model.simulate_layer(&spec, &masks);
/// assert_eq!(cycles.int8_macs, 0);
/// assert!(cycles.total_cycles() > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerCycleModel {
    rows: usize,
    cols: usize,
    pages: usize,
}

impl LayerCycleModel {
    /// Creates a model for a `rows × cols` array replicated over `pages`
    /// PE pages.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(rows: usize, cols: usize, pages: usize) -> Self {
        Self::try_new(rows, cols, pages).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible counterpart of [`LayerCycleModel::new`].
    pub fn try_new(rows: usize, cols: usize, pages: usize) -> Result<Self, SimError> {
        if rows == 0 || cols == 0 || pages == 0 {
            return Err(SimError::InvalidGeometry {
                context: "layer cycle model",
                detail: format!(
                    "array dimensions must be positive (got {pages} pages of {rows}x{cols})"
                ),
            });
        }
        Ok(Self { rows, cols, pages })
    }

    /// PE rows per page.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// PE columns per page.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of PE pages.
    pub fn pages(&self) -> usize {
        self.pages
    }

    /// Total PE (INT4 MAC) count.
    pub fn total_pes(&self) -> usize {
        self.rows * self.cols * self.pages
    }

    /// Fully connected layers use a weight-streaming mapping: with a single
    /// output position per "image", the weight-stationary schedule would
    /// reload the array per tile for one step of work. Real deployments
    /// stream the weight matrix through the array instead, so an FC layer
    /// is bounded by whichever is slower — the MAC work (at the layer's
    /// INT4/INT8 mix) or streaming its weights from the global buffer at
    /// the shared memory bandwidth (Table II gives every accelerator the
    /// same buffer and bandwidth; we use `rows × pages` bytes/cycle).
    fn simulate_fc(&self, spec: &ConvLayerSpec, masks: &[MaskMap]) -> LayerCycles {
        let macs = spec.macs();
        // Per-input sensitivity: 1x1 feature map per channel.
        let sensitive_inputs = masks.iter().filter(|m| m.pixel_sensitive(0, 0)).count() as u64;
        let int8_macs = sensitive_inputs * spec.out_c as u64;
        let int4_macs = macs - int8_macs.min(macs);
        let int4_equivalent = int4_macs + 4 * int8_macs;
        let compute = int4_equivalent.div_ceil(self.total_pes() as u64);
        let stream_bytes_per_cycle = (self.rows * self.pages) as u64;
        let weight_stream = spec.weight_count().div_ceil(stream_bytes_per_cycle);
        let compute_cycles = compute.max(weight_stream);
        let fill_cycles = (self.rows + self.cols - 1) as u64;
        let total = compute_cycles + fill_cycles;
        LayerCycles {
            int4_steps: int4_macs.div_ceil(self.total_pes() as u64),
            int8_steps: int8_macs.div_ceil(self.total_pes() as u64),
            compute_cycles,
            fill_cycles,
            weight_load_cycles: 0, // folded into the streaming bound
            weight_load_raw_cycles: weight_stream,
            stall_pe_cycles: 0,
            int4_macs,
            int8_macs,
            pe_cycles: total * (self.rows * self.cols) as u64,
        }
    }

    /// Simulates one layer given the per-input-channel sensitivity masks.
    ///
    /// # Panics
    ///
    /// Panics if `masks.len() != spec.in_c` or a mask grid does not cover
    /// the layer's input extent.
    #[allow(clippy::needless_range_loop)] // 2-D window/usage indexing
    pub fn simulate_layer(&self, spec: &ConvLayerSpec, masks: &[MaskMap]) -> LayerCycles {
        assert_eq!(masks.len(), spec.in_c, "need one mask per input channel");
        for m in masks {
            assert_eq!(
                (m.grid().height(), m.grid().width()),
                (spec.in_h, spec.in_w),
                "mask grid does not cover the feature map"
            );
        }
        if spec.op == drq_models::LayerOp::Fc {
            return self.simulate_fc(spec, masks);
        }
        let (out_h, out_w) = (spec.out_h(), spec.out_w());
        let steps_per_pass = out_h * out_w;
        let cpg = spec.in_c / spec.groups;
        let filters_per_group = spec.out_c / spec.groups;
        let taps = cpg * spec.kh * spec.kw;

        // Tiling. The layer decomposes into page-sized jobs: a job pins one
        // `rows`-tap tile of one group's kernel and one `cols`-filter tile
        // into a page and streams every output position through it. Jobs
        // are independent (partial sums combine in the accumulation unit,
        // Section IV-D), so the 16 pages execute them in parallel —
        // Section IV-A's "split the filters into different pages"
        // generalizes to splitting (tap tile, filter tile, group) jobs.
        // Depthwise layers (groups ≫ pages, tiny taps) additionally stack
        // several groups inside one page with block-diagonal weights.
        let filter_tiles = filters_per_group.div_ceil(self.cols);
        let row_tiles = taps.div_ceil(self.rows);
        let stack = if spec.groups > self.pages {
            (self.rows / taps.max(1))
                .max(1)
                .min((self.cols / filters_per_group.max(1)).max(1))
        } else {
            1
        };
        let group_jobs = spec.groups.div_ceil(stack);
        let jobs = group_jobs * row_tiles * filter_tiles;
        let rounds = jobs.div_ceil(self.pages) as u64;

        // Per-channel "window touches a sensitive region" bitmaps for the
        // representative group (group geometries are identical; statistics
        // are shared).
        let win = |c: usize, oy: usize, ox: usize| -> bool {
            let y0 = (oy * spec.stride).saturating_sub(spec.pad_h);
            let x0 = (ox * spec.stride).saturating_sub(spec.pad_w);
            let y_end = oy * spec.stride + spec.kh;
            let x_end = ox * spec.stride + spec.kw;
            let y1 = (y_end.saturating_sub(spec.pad_h + 1)).min(spec.in_h - 1);
            let x1 = (x_end.saturating_sub(spec.pad_w + 1)).min(spec.in_w - 1);
            if y0 > y1 || x0 > x1 {
                return false;
            }
            let g = masks[c].grid();
            let (r0, c0) = g.region_of(y0, x0);
            let (r1, c1) = g.region_of(y1, x1);
            for rr in r0..=r1 {
                for cc in c0..=c1 {
                    if masks[c].is_sensitive(rr, cc) {
                        return true;
                    }
                }
            }
            false
        };
        let mut window_sensitive: Vec<Vec<bool>> = Vec::with_capacity(cpg);
        for c_local in 0..cpg {
            // Representative group 0 channels.
            let c = c_local;
            let mut bits = vec![false; steps_per_pass];
            for oy in 0..out_h {
                for ox in 0..out_w {
                    bits[oy * out_w + ox] = win(c, oy, ox);
                }
            }
            window_sensitive.push(bits);
        }

        // Per-pixel usage counts (how many (oy,ky)/(ox,kx) pairs touch each
        // input coordinate) for exact MAC accounting.
        let usage_1d = |len: usize, out_len: usize, k: usize, pad: usize| -> Vec<u64> {
            let mut cnt = vec![0u64; len];
            for o in 0..out_len {
                for kk in 0..k {
                    let i = o * spec.stride + kk;
                    if i >= pad && i - pad < len {
                        cnt[i - pad] += 1;
                    }
                }
            }
            cnt
        };
        let cnt_y = usage_1d(spec.in_h, out_h, spec.kh, spec.pad_h);
        let cnt_x = usage_1d(spec.in_w, out_w, spec.kw, spec.pad_w);

        // Sensitive taps per channel: Σ_{sensitive pixels} usage.
        let mut sensitive_taps_per_channel = vec![0u64; spec.in_c];
        for (c, taps_acc) in sensitive_taps_per_channel.iter_mut().enumerate() {
            let m = &masks[c];
            for y in 0..spec.in_h {
                if cnt_y[y] == 0 {
                    continue;
                }
                for x in 0..spec.in_w {
                    if cnt_x[x] != 0 && m.pixel_sensitive(y, x) {
                        *taps_acc += cnt_y[y] * cnt_x[x];
                    }
                }
            }
        }

        // MAC totals: every sensitive tap is one INT8 MAC per filter of its
        // group; the remainder (padding included) runs INT4.
        let total_macs = spec.macs();
        let int8_macs: u64 = sensitive_taps_per_channel
            .iter()
            .map(|&t| t * filters_per_group as u64)
            .sum();
        let int4_macs = total_macs - int8_macs.min(total_macs);

        // Per row-tile step costs and stalls. A row tile covers a channel
        // range [c_lo, c_hi]; its step is INT8 if any covered channel's
        // window is sensitive at that output position.
        let kk = spec.kh * spec.kw;
        let mut int4_steps = 0u64;
        let mut int8_steps = 0u64;
        let mut compute_per_coltile = 0u64;
        let mut max_job_cycles = 0u64;
        let mut stall = 0u64;
        for rt in 0..row_tiles {
            let tap_lo = rt * self.rows;
            let tap_hi = (tap_lo + self.rows).min(taps);
            let rows_used = (tap_hi - tap_lo) as u64;
            let c_lo = tap_lo / kk;
            let c_hi = (tap_hi - 1) / kk;
            let mut tile_int8_steps = 0u64;
            for step in 0..steps_per_pass {
                let sensitive = (c_lo..=c_hi).any(|c| window_sensitive[c][step]);
                if sensitive {
                    tile_int8_steps += 1;
                } else {
                    int4_steps += 1;
                }
            }
            int8_steps += tile_int8_steps;
            let tile_cycles =
                tile_int8_steps * 4 + (steps_per_pass as u64 - tile_int8_steps);
            compute_per_coltile += tile_cycles;
            max_job_cycles = max_job_cycles.max(tile_cycles);
            // Exact stall: 3 cycles for every INT4 row-slot during INT8
            // steps. Sensitive rows during those steps equal the tile's
            // sensitive-tap count (each sensitive tap appears in exactly one
            // step of its row).
            let tile_sensitive_taps: u64 = (c_lo..=c_hi)
                .map(|c| {
                    // Portion of channel c's taps inside this tile.
                    let ch_tap_lo = c * kk;
                    let ch_tap_hi = ch_tap_lo + kk;
                    let overlap =
                        tap_hi.min(ch_tap_hi).saturating_sub(tap_lo.max(ch_tap_lo));
                    sensitive_taps_per_channel[c] * overlap as u64 / kk as u64
                })
                .sum();
            stall += 3 * (rows_used * tile_int8_steps).saturating_sub(tile_sensitive_taps);
        }

        // `compute_per_coltile` holds Σ over row tiles of per-step costs for
        // one (group, filter tile); total job-cycles replicate it over the
        // group jobs and filter tiles, and the pages execute jobs in
        // parallel.
        let per_tile_scale = (group_jobs * filter_tiles) as u64;
        let total_job_cycles = compute_per_coltile * per_tile_scale;
        // Makespan of scheduling the jobs over the pages: bounded below by
        // both the work/pages ratio and the single longest job.
        let compute_cycles = total_job_cycles
            .div_ceil(self.pages as u64)
            .max(max_job_cycles);
        // Double buffering hides the next round's weight load and stream
        // fill behind the current round's compute: only the first round's
        // overhead plus any residual beyond compute is exposed.
        let raw_load = self.rows as u64;
        let raw_fill = (self.rows + self.cols - 1) as u64;
        let avg_compute = compute_cycles / rounds.max(1);
        let residual = |raw: u64| -> u64 {
            let hidden = avg_compute.min(raw);
            raw + (rounds.saturating_sub(1)) * (raw - hidden)
        };
        let fill_cycles = residual(raw_fill);
        let weight_load_cycles = residual(raw_load);
        let weight_load_raw_cycles = rounds * raw_load;
        // Step census, expressed in machine cycles (divided across pages)
        // so `int4_steps + 4*int8_steps ≈ compute_cycles`.
        let pages = self.pages as u64;
        let total = compute_cycles + fill_cycles + weight_load_cycles;
        LayerCycles {
            int4_steps: (int4_steps * per_tile_scale).div_ceil(pages),
            int8_steps: (int8_steps * per_tile_scale).div_ceil(pages),
            compute_cycles,
            fill_cycles,
            weight_load_cycles,
            weight_load_raw_cycles,
            stall_pe_cycles: (stall * per_tile_scale * self.cols as u64).div_ceil(pages),
            int4_macs,
            int8_macs,
            pe_cycles: total * (self.rows * self.cols) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StreamElement, SystolicArray};
    use drq_core::{RegionGrid, RegionSize, SensitivityPredictor};
    use drq_tensor::{Tensor, XorShiftRng};

    fn uniform_masks(spec: &ConvLayerSpec, sensitive: bool) -> Vec<MaskMap> {
        let grid = RegionGrid::new(spec.in_h, spec.in_w, RegionSize::new(4, 4));
        let m = if sensitive {
            MaskMap::all_sensitive(grid)
        } else {
            MaskMap::all_insensitive(grid)
        };
        vec![m; spec.in_c]
    }

    #[test]
    fn all_int4_layer_is_4x_faster_than_all_int8() {
        let model = LayerCycleModel::new(18, 11, 16);
        let spec = ConvLayerSpec::conv("c", "B1", 16, 32, 32, 32, 3, 3, 1, 1);
        let fast = model.simulate_layer(&spec, &uniform_masks(&spec, false));
        let slow = model.simulate_layer(&spec, &uniform_masks(&spec, true));
        assert_eq!(fast.int8_macs, 0);
        let ratio = slow.compute_cycles as f64 / fast.compute_cycles as f64;
        assert!((ratio - 4.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn mac_totals_match_spec() {
        let model = LayerCycleModel::new(18, 11, 16);
        let spec = ConvLayerSpec::conv("c", "B1", 8, 16, 16, 24, 3, 3, 2, 1);
        for sens in [false, true] {
            let r = model.simulate_layer(&spec, &uniform_masks(&spec, sens));
            assert_eq!(r.int4_macs + r.int8_macs, spec.macs());
        }
    }

    #[test]
    fn grouped_depthwise_layer_simulates() {
        let model = LayerCycleModel::new(18, 11, 16);
        let spec = ConvLayerSpec::conv("dw", "IR1", 32, 16, 16, 32, 3, 3, 1, 1)
            .with_groups(32);
        let r = model.simulate_layer(&spec, &uniform_masks(&spec, false));
        assert_eq!(r.int4_macs + r.int8_macs, spec.macs());
        assert!(r.total_cycles() > 0);
    }

    #[test]
    fn matches_exact_systolic_simulator_on_small_tile() {
        // A 1x1-conv layer whose taps fit one row tile and whose filters fit
        // one page: the fast model's compute cycles must equal the exact
        // array's step schedule.
        let rows = 4;
        let cols = 3;
        let model = LayerCycleModel::new(rows, cols, 1);
        let spec = ConvLayerSpec::conv("c", "B1", 4, 6, 6, 3, 1, 1, 1, 0);

        // Random sensitive pattern via a predictor over random activations.
        let mut rng = XorShiftRng::new(5);
        let x = Tensor::from_fn(&[1, 4, 6, 6], |_| rng.next_f32());
        let predictor = SensitivityPredictor::new(RegionSize::new(2, 2), 60.0);
        let masks = predictor.predict(&x);

        let fast = model.simulate_layer(&spec, &masks);

        // Build the equivalent exact-array run: rows = 4 channels (1x1
        // kernel), steps = 36 output positions.
        let weights: Vec<Vec<i32>> =
            (0..rows).map(|r| (0..cols).map(|c| (r * cols + c) as i32).collect()).collect();
        let array = SystolicArray::new(weights);
        let s = x.shape4().unwrap();
        let streams: Vec<Vec<StreamElement>> = (0..4)
            .map(|c| {
                let mut v = Vec::new();
                for y in 0..6 {
                    for xx in 0..6 {
                        v.push(StreamElement::new(
                            (x[[0, c, y, xx]] * 100.0) as i32,
                            masks[c].pixel_sensitive(y, xx),
                        ));
                    }
                }
                assert_eq!(s.h * s.w, v.len());
                v
            })
            .collect();
        let trace = array.simulate(&streams);
        // Exact cycles = Σ costs + (cols-1) + rows = the fast model's
        // compute + fill for a single-pass layer.
        assert_eq!(
            fast.compute_cycles + fast.fill_cycles,
            trace.cycles,
            "fast model diverges from exact simulator"
        );
        assert_eq!(fast.int8_steps, trace.int8_steps);
        assert_eq!(fast.int4_steps, trace.int4_steps);
        // Stall accounting matches the exact simulator too.
        assert_eq!(fast.stall_pe_cycles, trace.stall_pe_cycles);
    }

    #[test]
    fn fc_layers_are_supported() {
        let model = LayerCycleModel::new(18, 11, 16);
        let spec = ConvLayerSpec::fc("fc", "FC", 512, 1000);
        let grid = RegionGrid::new(1, 1, RegionSize::new(1, 1));
        let masks = vec![MaskMap::all_insensitive(grid); 512];
        let r = model.simulate_layer(&spec, &masks);
        assert_eq!(r.int4_macs, 512 * 1000);
        // FC layers are weight-streaming bound: 512k weights at 288 B/cycle
        // exceeds the MAC bound of 512k/3168 cycles.
        assert!(r.compute_cycles >= 512 * 1000 / 288);
        assert_eq!(r.weight_load_cycles, 0);
    }

    #[test]
    fn sensitive_fraction_slows_compute_monotonically() {
        let model = LayerCycleModel::new(18, 11, 16);
        let spec = ConvLayerSpec::conv("c", "B1", 8, 32, 32, 16, 3, 3, 1, 1);
        let grid = RegionGrid::new(32, 32, RegionSize::new(4, 4));
        let cycles_with_k_sensitive = |k: usize| {
            let mut masks = Vec::new();
            for c in 0..8 {
                let mut m = MaskMap::all_insensitive(grid);
                // Mark k regions sensitive in channel 0 only.
                if c == 0 {
                    for i in 0..k {
                        m.set(i / 8, i % 8, true);
                    }
                }
                masks.push(m);
            }
            model.simulate_layer(&spec, &masks).compute_cycles
        };
        let mut last = 0;
        for k in [0usize, 4, 16, 40, 64] {
            let c = cycles_with_k_sensitive(k);
            assert!(c >= last, "not monotone at {k}: {c} < {last}");
            last = c;
        }
    }

    #[test]
    #[should_panic(expected = "one mask per input channel")]
    fn rejects_wrong_mask_count() {
        let model = LayerCycleModel::new(4, 4, 1);
        let spec = ConvLayerSpec::conv("c", "B1", 3, 8, 8, 4, 3, 3, 1, 1);
        let _ = model.simulate_layer(&spec, &uniform_masks(&spec, false)[..2]);
    }
}
