//! The im2col/pack engine (Section IV-B).
//!
//! Each PE page has an engine that pulls feature maps from the global
//! buffer, transforms them into the staggered im2col arrangement of
//! Fig. 7(a), packs insensitive values into 4-bit slots alongside the
//! region masks, and fills the line buffer. This module models the engine's
//! throughput and produces the actual row streams the exact systolic
//! simulator consumes — tying the algorithm-side masks to the
//! architecture-side streams.

use crate::{PackedStream, StreamElement};
use drq_core::MaskMap;
use drq_quant::{Precision, QuantParams};
use drq_tensor::Tensor;

/// Geometry and throughput model of one page's im2col/pack engine.
///
/// # Examples
///
/// ```
/// use drq_sim::Im2ColEngine;
///
/// let engine = Im2ColEngine::new(8);
/// // Transforming n values at 8 values/cycle:
/// assert_eq!(engine.transform_cycles(64), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Im2ColEngine {
    values_per_cycle: usize,
}

impl Im2ColEngine {
    /// Creates an engine that reformats `values_per_cycle` activation
    /// values per cycle (the global-buffer port width).
    ///
    /// # Panics
    ///
    /// Panics if `values_per_cycle == 0`.
    pub fn new(values_per_cycle: usize) -> Self {
        assert!(values_per_cycle > 0, "engine throughput must be positive");
        Self { values_per_cycle }
    }

    /// Cycles to transform-and-pack `values` activation values.
    pub fn transform_cycles(&self, values: usize) -> u64 {
        (values as u64).div_ceil(self.values_per_cycle as u64)
    }

    /// Builds the per-row streams for a tap tile of a convolution: rows are
    /// `(channel, ky, kx)` taps in channel-major order, steps are output
    /// positions in raster order. Values are quantized to INT8 codes with
    /// sensitivity bits taken from the channel's mask; padding positions
    /// stream as insensitive zeros.
    ///
    /// Returns `(streams, packed)` — the row streams for the array and the
    /// dense line-buffer packing (for storage accounting).
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent or `taps` is empty.
    #[allow(clippy::too_many_arguments)]
    pub fn build_streams(
        &self,
        x: &Tensor<f32>,
        image: usize,
        masks: &[MaskMap],
        taps: &[(usize, usize, usize)],
        out_h: usize,
        out_w: usize,
        stride: usize,
        pad: usize,
    ) -> (Vec<Vec<StreamElement>>, PackedStream) {
        assert!(!taps.is_empty(), "need at least one tap row");
        let s = x.shape4().expect("engine input must be rank 4");
        assert_eq!(masks.len(), s.c, "need one mask per channel");
        let params = QuantParams::fit(x.as_slice(), Precision::Int8);
        let xs = x.as_slice();
        let mut streams = Vec::with_capacity(taps.len());
        let mut flat = Vec::new();
        for &(c, ky, kx) in taps {
            assert!(c < s.c, "tap channel out of range");
            let mut row = Vec::with_capacity(out_h * out_w);
            for oy in 0..out_h {
                for ox in 0..out_w {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    let ix = (ox * stride + kx) as isize - pad as isize;
                    let e = if iy >= 0 && (iy as usize) < s.h && ix >= 0 && (ix as usize) < s.w
                    {
                        let (iy, ix) = (iy as usize, ix as usize);
                        StreamElement::new(
                            params.quantize_value(xs[s.offset(image, c, iy, ix)]),
                            masks[c].pixel_sensitive(iy, ix),
                        )
                    } else {
                        StreamElement::new(0, false)
                    };
                    row.push(e);
                    flat.push(e);
                }
            }
            streams.push(row);
        }
        let packed = PackedStream::pack(&flat);
        (streams, packed)
    }
}

impl Default for Im2ColEngine {
    fn default() -> Self {
        // One 64-bit global-buffer word of INT8 activations per cycle.
        Self::new(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystolicArray;
    use drq_core::{RegionGrid, RegionSize, SensitivityPredictor};
    use drq_tensor::XorShiftRng;

    fn blobby(seed: u64) -> Tensor<f32> {
        let mut rng = XorShiftRng::new(seed);
        Tensor::from_fn(&[1, 2, 6, 6], |i| {
            let p = i % 36;
            if p < 12 {
                0.8 + 0.2 * rng.next_f32()
            } else {
                0.02 * rng.next_f32()
            }
        })
    }

    #[test]
    fn streams_cover_every_output_position() {
        let x = blobby(1);
        let predictor = SensitivityPredictor::new(RegionSize::new(2, 2), 20.0);
        let masks = predictor.predict(&x);
        let engine = Im2ColEngine::default();
        let taps = vec![(0, 0, 0), (0, 0, 1), (1, 1, 1)];
        let (streams, packed) =
            engine.build_streams(&x, 0, &masks, &taps, 6, 6, 1, 1);
        assert_eq!(streams.len(), 3);
        assert!(streams.iter().all(|r| r.len() == 36));
        assert_eq!(packed.len(), 3 * 36);
    }

    #[test]
    fn padding_streams_as_insensitive_zero() {
        let x = Tensor::<f32>::full(&[1, 1, 3, 3], 1.0);
        let grid = RegionGrid::new(3, 3, RegionSize::new(3, 3));
        let masks = vec![drq_core::MaskMap::all_sensitive(grid)];
        let engine = Im2ColEngine::default();
        // Tap (0,0,0) with pad 1: output (0,0) reads input (-1,-1) = padding.
        let (streams, _) = engine.build_streams(&x, 0, &masks, &[(0, 0, 0)], 3, 3, 1, 1);
        assert_eq!(streams[0][0], StreamElement::new(0, false));
        // Center position reads a real (sensitive) value.
        assert!(streams[0][4].sensitive);
        assert_eq!(streams[0][4].value, 127);
    }

    #[test]
    fn engine_streams_drive_the_exact_array() {
        // End-to-end: engine-built streams through the exact simulator
        // reproduce the direct mixed-precision dot products.
        let x = blobby(3);
        let predictor = SensitivityPredictor::new(RegionSize::new(2, 2), 15.0);
        let masks = predictor.predict(&x);
        let engine = Im2ColEngine::default();
        let taps = vec![(0usize, 0usize, 0usize), (0, 1, 1), (1, 0, 1), (1, 1, 0)];
        let (streams, _) = engine.build_streams(&x, 0, &masks, &taps, 4, 4, 1, 0);
        let weights = vec![vec![64, -32], vec![16, 8], vec![-128, 127], vec![5, -5]];
        let array = SystolicArray::new(weights.clone());
        let trace = array.simulate(&streams);
        // Spot check one output: step 5 of column 0.
        let t = 5;
        let expect: i64 = streams
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let e = s[t];
                if e.sensitive {
                    (weights[i][0] * e.value) as i64
                } else {
                    (((weights[i][0] >> 4) * (e.value >> 4)) as i64) << 8
                }
            })
            .sum();
        assert_eq!(trace.outputs[0][t], expect);
    }

    #[test]
    fn throughput_is_ceil_division() {
        let e = Im2ColEngine::new(8);
        assert_eq!(e.transform_cycles(0), 0);
        assert_eq!(e.transform_cycles(1), 1);
        assert_eq!(e.transform_cycles(9), 2);
    }

    #[test]
    fn packing_reflects_sensitivity_density() {
        let x = blobby(5);
        let dense = SensitivityPredictor::new(RegionSize::new(2, 2), 0.0); // all sensitive
        let sparse = SensitivityPredictor::new(RegionSize::new(2, 2), 127.0); // none
        let engine = Im2ColEngine::default();
        let taps = vec![(0, 0, 0)];
        let (_, p_dense) =
            engine.build_streams(&x, 0, &dense.predict(&x), &taps, 6, 6, 1, 0);
        let (_, p_sparse) =
            engine.build_streams(&x, 0, &sparse.predict(&x), &taps, 6, 6, 1, 0);
        assert!(p_dense.payload_bits() > p_sparse.payload_bits());
        assert!((p_sparse.saving_vs_int8() - 0.5).abs() < 1e-9);
    }
}
