//! Typed errors for the simulator's user-reachable construction and
//! configuration paths.
//!
//! Every fallible `try_*` constructor in this crate returns a [`SimError`];
//! the historical panicking APIs now delegate to the `try_*` form and panic
//! with the error's `Display` text, so existing `#[should_panic]` callers
//! and error-message greps keep working while library users get a `Result`
//! they can handle.

use std::fmt;

/// A typed error from the DRQ simulator.
///
/// # Examples
///
/// ```
/// use drq_sim::{LayerCycleModel, SimError};
///
/// let err = LayerCycleModel::try_new(0, 11, 16).unwrap_err();
/// assert!(matches!(err, SimError::InvalidGeometry { .. }));
/// assert!(err.to_string().contains("array dimensions must be positive"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A structural dimension (array geometry, buffer capacity, kernel
    /// extent, matrix shape) is zero, ragged or otherwise unusable.
    InvalidGeometry {
        /// Which component rejected its geometry.
        context: &'static str,
        /// What exactly was wrong.
        detail: String,
    },
    /// An operand value is outside the datapath's representable range
    /// (the DRQ PE is an 8-bit-signed datapath).
    OperandRange {
        /// Which component rejected the operand.
        context: &'static str,
        /// What exactly was wrong.
        detail: String,
    },
    /// Two connected components disagree about a width or count.
    WidthMismatch {
        /// Which interface mismatched (includes the phrase callers grep
        /// for, e.g. "partial-sum").
        context: &'static str,
        /// The width the component expected.
        expected: usize,
        /// The width it was given.
        actual: usize,
    },
    /// A scalar parameter (bandwidth, efficiency, frequency) is out of its
    /// valid domain.
    InvalidParameter {
        /// Which component rejected the parameter.
        context: &'static str,
        /// What exactly was wrong.
        detail: String,
    },
    /// A fault plan failed to parse or validate.
    FaultPlan {
        /// What exactly was wrong.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidGeometry { context, detail }
            | SimError::OperandRange { context, detail }
            | SimError::InvalidParameter { context, detail } => {
                write!(f, "{context}: {detail}")
            }
            SimError::WidthMismatch { context, expected, actual } => {
                write!(f, "{context} width mismatch: expected {expected}, got {actual}")
            }
            SimError::FaultPlan { detail } => write!(f, "invalid fault plan: {detail}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context_and_detail() {
        let e = SimError::InvalidGeometry {
            context: "systolic array",
            detail: "empty weight matrix".into(),
        };
        assert_eq!(e.to_string(), "systolic array: empty weight matrix");
        let w = SimError::WidthMismatch {
            context: "output buffer partial-sum",
            expected: 2,
            actual: 3,
        };
        assert!(w.to_string().contains("width mismatch"));
        assert!(w.to_string().contains("expected 2, got 3"));
    }
}
