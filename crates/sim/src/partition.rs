//! Static partitioning of the layer simulation graph into parallel shards.
//!
//! The network-level simulator is an embarrassingly sequential loop in its
//! original form: one RNG stream threaded layer to layer, one cumulative
//! cycle cursor. This module restructures that loop the way an emulation
//! compiler would: the layer graph is **statically partitioned** into
//! contiguous, cost-balanced shards; each shard simulates its layers
//! against a **per-shard virtual clock** starting at zero; and the shard
//! event streams are **merged deterministically** by offsetting every
//! shard-local cycle stamp with the prefix sum of the preceding shards'
//! total cycles.
//!
//! Three properties make the merged result bit-identical to the
//! single-shard run at *any* shard count:
//!
//! 1. **Stream-aligned draws** — every layer draws from its own RNG
//!    substream, derived from the session seed and the layer index by
//!    [`stream_seed`] (the same discipline [`crate::faults`] uses for its
//!    fault stream: draws depend only on seeds and deterministic indices,
//!    never on scheduling). A layer synthesizes the same feature map no
//!    matter which shard — or thread — runs it.
//! 2. **Contiguous shards** — a shard owns a contiguous layer range, so
//!    concatenating shard outputs in shard order *is* execution order; no
//!    sorting, no tie-breaking.
//! 3. **Additive virtual clocks** — a layer's retire stamp is the sum of
//!    all preceding layers' total cycles plus its own. Both terms are
//!    shard-invariant, so the merge rule `global = shard_offset + local`
//!    reproduces the sequential cursor exactly.

use drq_tensor::parallel;

/// How many shards a [`crate::SimSession`] splits the layer graph into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Partitions {
    /// One shard: the reference sequential execution.
    Single,
    /// Exactly this many shards (clamped to the layer count).
    Fixed(usize),
    /// One shard per available worker thread (clamped to the layer count).
    /// This is the default: partitioning is bit-invariant, so there is no
    /// correctness reason to ever simulate on one core.
    #[default]
    Auto,
}

impl Partitions {
    /// Resolves the policy to a concrete shard count for `n_layers` layers.
    /// Always at least 1, never more than `n_layers` (empty networks
    /// resolve to 1 so downstream code can assume a shard exists).
    pub fn resolve(self, n_layers: usize) -> usize {
        let want = match self {
            Partitions::Single => 1,
            Partitions::Fixed(n) => n.max(1),
            Partitions::Auto => parallel::max_threads(),
        };
        want.clamp(1, n_layers.max(1))
    }

    /// Parses a CLI-style spec: `"auto"`, `"single"`, or a shard count
    /// (`"1"` means [`Partitions::Single`]).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim() {
            "auto" => Ok(Partitions::Auto),
            "single" | "1" => Ok(Partitions::Single),
            n => n
                .parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .map(Partitions::Fixed)
                .ok_or_else(|| {
                    format!("invalid partition spec {s:?} (want 'auto', 'single', or a positive integer)")
                }),
        }
    }
}

impl From<usize> for Partitions {
    /// `0` maps to [`Partitions::Auto`], `1` to [`Partitions::Single`],
    /// anything else to [`Partitions::Fixed`].
    fn from(n: usize) -> Self {
        match n {
            0 => Partitions::Auto,
            1 => Partitions::Single,
            n => Partitions::Fixed(n),
        }
    }
}

impl std::fmt::Display for Partitions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Partitions::Single => write!(f, "single"),
            Partitions::Fixed(n) => write!(f, "{n}"),
            Partitions::Auto => write!(f, "auto"),
        }
    }
}

/// A static, cost-balanced partition of `0..n_layers` into contiguous
/// shard ranges.
///
/// # Examples
///
/// ```
/// use drq_sim::PartitionPlan;
///
/// let plan = PartitionPlan::balance(&[10, 10, 10, 10], 2);
/// assert_eq!(plan.ranges(), &[0..2, 2..4]);
/// // Heavily skewed costs still yield contiguous, exhaustive coverage.
/// let plan = PartitionPlan::balance(&[100, 1, 1, 1], 2);
/// assert_eq!(plan.ranges(), &[0..1, 1..4]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPlan {
    ranges: Vec<std::ops::Range<usize>>,
}

impl PartitionPlan {
    /// Splits `costs.len()` items into at most `shards` contiguous ranges,
    /// greedily closing a shard once it reaches the ideal per-shard share
    /// of the remaining cost. Zero-cost items are allowed; every item lands
    /// in exactly one range. Deterministic: depends only on `costs` and
    /// `shards`, never on thread scheduling.
    pub fn balance(costs: &[u64], shards: usize) -> Self {
        let n = costs.len();
        let shards = shards.clamp(1, n.max(1));
        if n == 0 {
            return Self { ranges: vec![0..0] };
        }
        let mut ranges = Vec::with_capacity(shards);
        let mut remaining: u128 = costs.iter().map(|&c| c as u128).sum();
        let mut start = 0usize;
        for s in 0..shards {
            let shards_left = shards - s;
            // Each remaining shard must take at least one item; beyond
            // that, close this shard once it holds its fair share of the
            // remaining cost — or just before an item that would overshoot
            // the share by more than stopping short undershoots it (so a
            // dominant layer lands in its own shard instead of dragging
            // its neighbours into a straggler).
            let max_end = n - (shards_left - 1);
            let target = remaining.div_ceil(shards_left as u128);
            let mut end = start;
            let mut acc: u128 = 0;
            if shards_left == 1 {
                while end < n {
                    acc += costs[end] as u128;
                    end += 1;
                }
            } else {
                while end < max_end {
                    let c = costs[end] as u128;
                    if end > start && acc + c > target && acc + c - target > target - acc {
                        break;
                    }
                    acc += c;
                    end += 1;
                    if acc >= target {
                        break;
                    }
                }
            }
            remaining -= acc;
            ranges.push(start..end);
            start = end;
            if start == n {
                break;
            }
        }
        debug_assert_eq!(ranges.last().map(|r| r.end), Some(n));
        Self { ranges }
    }

    /// The shard ranges, in execution order. Contiguous and exhaustive:
    /// `ranges[i].end == ranges[i + 1].start`.
    pub fn ranges(&self) -> &[std::ops::Range<usize>] {
        &self.ranges
    }

    /// Number of shards in the plan.
    pub fn shard_count(&self) -> usize {
        self.ranges.len()
    }
}

/// Derives the seed of an independent RNG substream from a root seed and a
/// stream index (splitmix64 finalization over the mixed pair).
///
/// This is the workhorse of the partitioned simulator's determinism story:
/// layer `i` always draws from `stream_seed(session_seed, i)` regardless of
/// which shard simulates it, and the fault stream draws from its own
/// reserved index — one session seed, many aligned streams.
///
/// # Examples
///
/// ```
/// use drq_sim::partition::stream_seed;
///
/// assert_eq!(stream_seed(42, 0), stream_seed(42, 0));
/// assert_ne!(stream_seed(42, 0), stream_seed(42, 1));
/// assert_ne!(stream_seed(42, 0), stream_seed(43, 0));
/// ```
pub fn stream_seed(root: u64, stream: u64) -> u64 {
    // splitmix64 over the golden-ratio-spread combination of root and
    // stream index; statistically independent outputs for adjacent inputs.
    let mut z = root
        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The reserved stream index for the fault-injection RNG (kept far above
/// any realistic layer count so layer streams can never collide with it).
pub(crate) const FAULT_STREAM: u64 = u64::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balance_covers_everything_contiguously() {
        for n in [1usize, 2, 3, 7, 20, 53] {
            for shards in [1usize, 2, 3, 8, 64] {
                let costs: Vec<u64> = (0..n).map(|i| (i as u64 * 37) % 101 + 1).collect();
                let plan = PartitionPlan::balance(&costs, shards);
                assert!(plan.shard_count() <= shards.max(1));
                assert!(plan.shard_count() <= n);
                let mut cursor = 0;
                for r in plan.ranges() {
                    assert_eq!(r.start, cursor, "n={n} shards={shards}");
                    assert!(r.end > r.start, "empty shard at n={n} shards={shards}");
                    cursor = r.end;
                }
                assert_eq!(cursor, n);
            }
        }
    }

    #[test]
    fn balance_is_roughly_even_on_uniform_costs() {
        let costs = vec![5u64; 40];
        let plan = PartitionPlan::balance(&costs, 4);
        assert_eq!(plan.shard_count(), 4);
        for r in plan.ranges() {
            assert_eq!(r.len(), 10);
        }
    }

    #[test]
    fn balance_isolates_a_dominant_layer() {
        // One layer carrying ~all the cost gets its own shard instead of
        // dragging neighbours into a straggler shard.
        let costs = [1u64, 1, 1000, 1, 1, 1];
        let plan = PartitionPlan::balance(&costs, 3);
        assert!(
            plan.ranges().iter().any(|r| r.clone().eq(2..3)),
            "dominant layer not isolated: {:?}",
            plan.ranges()
        );
    }

    #[test]
    fn balance_handles_empty_and_zero_costs() {
        assert_eq!(PartitionPlan::balance(&[], 4).ranges(), &[0..0]);
        let plan = PartitionPlan::balance(&[0, 0, 0], 2);
        let total: usize = plan.ranges().iter().map(|r| r.len()).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn resolve_clamps_to_layers_and_floor_of_one() {
        assert_eq!(Partitions::Single.resolve(10), 1);
        assert_eq!(Partitions::Fixed(4).resolve(10), 4);
        assert_eq!(Partitions::Fixed(100).resolve(10), 10);
        assert_eq!(Partitions::Fixed(0).resolve(10), 1);
        assert_eq!(Partitions::Fixed(4).resolve(0), 1);
        let auto = Partitions::Auto.resolve(1000);
        assert!(auto >= 1 && auto <= 1000);
    }

    #[test]
    fn parse_round_trips_cli_specs() {
        assert_eq!(Partitions::parse("auto").unwrap(), Partitions::Auto);
        assert_eq!(Partitions::parse("single").unwrap(), Partitions::Single);
        assert_eq!(Partitions::parse("1").unwrap(), Partitions::Single);
        assert_eq!(Partitions::parse(" 7 ").unwrap(), Partitions::Fixed(7));
        assert!(Partitions::parse("0").is_err());
        assert!(Partitions::parse("-2").is_err());
        assert!(Partitions::parse("many").is_err());
        assert_eq!(Partitions::from(0usize), Partitions::Auto);
        assert_eq!(Partitions::from(1usize), Partitions::Single);
        assert_eq!(Partitions::from(3usize), Partitions::Fixed(3));
    }

    #[test]
    fn stream_seeds_are_distinct_and_stable() {
        let mut seen = std::collections::BTreeSet::new();
        for root in [0u64, 1, 42, u64::MAX] {
            for stream in [0u64, 1, 2, 53, FAULT_STREAM] {
                assert!(seen.insert(stream_seed(root, stream)), "collision at {root}/{stream}");
            }
        }
        // Never the xorshift fixed point.
        for i in 0..1000 {
            assert_ne!(stream_seed(42, i), 0, "zero seed at stream {i}");
        }
    }
}
