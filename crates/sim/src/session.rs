//! `SimSession` — the one entry point for network-level simulation.
//!
//! Historically the simulator grew one method per scenario:
//! `simulate_network`, `simulate_network_traced`, `simulate_network_batch`,
//! `simulate_network_faulted` — each with its own seed plumbing (the
//! faulted variant took a second seed inside the [`FaultPlan`]) and none of
//! them parallel. A [`SimSession`] subsumes all four behind one builder:
//!
//! ```
//! use drq_sim::{ArchConfig, SimSession};
//! use drq_models::zoo;
//!
//! let accel = ArchConfig::builder().build();
//! let net = zoo::lenet5();
//! let run = SimSession::new(&accel, &net).seed(42).run().unwrap();
//! assert!(run.report().total_cycles() > 0);
//! ```
//!
//! Every run is **partitioned**: the layer graph is split into
//! cost-balanced contiguous shards ([`crate::PartitionPlan`]), shards
//! execute concurrently on the `drq_tensor::parallel` scoped-thread pool
//! with per-shard virtual clocks, and their event streams are merged by
//! offsetting each shard's local stamps with the prefix sum of preceding
//! shards' cycles. The report, the trace, and any fault-injection result
//! are **byte-identical at every shard count** — `partitions(1)` is the
//! reference and `partitions(Auto)` must (and does, see
//! `tests/sim_partition.rs`) reproduce it exactly.
//!
//! One session seed derives every stream: layer `i`'s feature-map
//! synthesis draws from `stream_seed(seed, i)` and the fault stream from a
//! reserved index — a [`FaultPlan`] whose own `seed` is `0` inherits the
//! session's derived fault stream, while a non-zero plan seed pins the
//! fault stream independently (so archived plan files replay bit-for-bit).

use crate::partition::{stream_seed, PartitionPlan, Partitions, FAULT_STREAM};
use crate::{
    BatchSimSummary, DramModel, DrqAccelerator, FaultCounters, FaultInjector, FaultPlan,
    FaultSite, NetworkSimReport, ReliabilityReport, SimError,
};
use drq_models::NetworkTopology;
use drq_telemetry::{counter_add, Json, Tracer, NO_FIELDS};
use drq_tensor::parallel;

/// Builder for one network-level simulation run.
///
/// See the [module docs](self) for the design; see
/// [`DrqAccelerator::session`] for a convenience constructor.
pub struct SimSession<'a, 't> {
    accel: &'a DrqAccelerator,
    net: &'a NetworkTopology,
    seed: u64,
    partitions: Partitions,
    tracer: Option<&'t mut Tracer>,
    faults: Option<FaultPlan>,
}

impl<'a, 't> SimSession<'a, 't> {
    /// Starts a session on `accel` simulating `net`, with seed 0, automatic
    /// partitioning, no tracing and no fault injection.
    pub fn new(accel: &'a DrqAccelerator, net: &'a NetworkTopology) -> Self {
        Self {
            accel,
            net,
            seed: 0,
            partitions: Partitions::Auto,
            tracer: None,
            faults: None,
        }
    }

    /// Sets the session seed. This single value derives the per-layer
    /// feature-map streams *and* (unless the fault plan pins its own seed)
    /// the fault-injection stream.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Records a span/event trace of the run into `tracer`: a `run` span,
    /// one `layer` event per layer stamped with the cycle at which the
    /// layer retires, and one `block` summary event per network block.
    /// Tracing is a pure observer — the simulation result is identical
    /// with or without it.
    pub fn trace(mut self, tracer: &'t mut Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Arms fault injection under `plan`. A plan seed of `0` means "derive
    /// the fault stream from the session seed"; any other value pins the
    /// fault stream so archived plans replay independently of the session.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Sets the partition policy (accepts [`Partitions`] or a shard count;
    /// `0` means auto). Any value produces byte-identical results — this
    /// knob only trades wall-clock time.
    pub fn partitions(mut self, p: impl Into<Partitions>) -> Self {
        self.partitions = p.into();
        self
    }

    /// Runs the simulation: partitioned baseline, deterministic merge,
    /// then (if a plan is armed) the sequential fault post-pass.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::FaultPlan`] if the armed fault plan fails
    /// validation. Clean (un-faulted) sessions cannot fail.
    pub fn run(mut self) -> Result<SimRun, SimError> {
        if let Some(plan) = &self.faults {
            plan.validate()?;
        }
        let report = self.run_baseline();
        let reliability = match self.faults.take() {
            Some(plan) => Some(self.accel.apply_faults(self.net, &report, plan, self.seed)?),
            None => None,
        };
        Ok(SimRun { report, reliability })
    }

    /// Simulates `seeds.len()` independent images (each a clean partitioned
    /// run re-seeded per image) and summarizes the run-to-run spread. The
    /// tracer and fault plan of the builder are ignored — batch summaries
    /// aggregate across images, where a single trace or fault stream has no
    /// meaning.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] if `seeds` is empty.
    pub fn run_batch(self, seeds: &[u64]) -> Result<BatchSimSummary, SimError> {
        if seeds.is_empty() {
            return Err(SimError::InvalidParameter {
                context: "sim session batch",
                detail: "need at least one seed".into(),
            });
        }
        let (accel, net, partitions) = (self.accel, self.net, self.partitions);
        // Image-level parallelism: each image is itself a partitioned
        // session, but nested parallel sections run inline, so the pool is
        // never oversubscribed and results stay scheduling-independent.
        let runs: Vec<NetworkSimReport> = parallel::par_map(seeds.len(), |i| {
            SimSession::new(accel, net)
                .seed(seeds[i])
                .partitions(partitions)
                .run()
                .expect("clean simulation cannot fail")
                .into_report()
        });
        let cycles: Vec<u64> = runs.iter().map(NetworkSimReport::total_cycles).collect();
        let n = cycles.len() as f64;
        let mean = cycles.iter().sum::<u64>() as f64 / n;
        let var = cycles.iter().map(|&c| (c as f64 - mean).powi(2)).sum::<f64>() / n;
        let int4 = runs.iter().map(NetworkSimReport::int4_fraction).sum::<f64>() / n;
        Ok(BatchSimSummary {
            network: net.name.clone(),
            images: runs.len(),
            mean_cycles: mean,
            stddev_cycles: var.sqrt(),
            min_cycles: *cycles.iter().min().expect("non-empty"),
            max_cycles: *cycles.iter().max().expect("non-empty"),
            mean_int4_fraction: int4,
        })
    }

    /// The partitioned baseline run: shard, simulate, merge.
    fn run_baseline(&mut self) -> NetworkSimReport {
        let (accel, net, seed) = (self.accel, self.net, self.seed);
        let n_layers = net.layers.len();
        let plan = balance_layers(net, self.partitions);

        if let Some(t) = self.tracer.as_deref_mut() {
            t.span_begin(
                0,
                "run",
                [
                    ("network", Json::str(&net.name)),
                    ("seed", Json::U64(seed)),
                    ("layers", Json::U64(n_layers as u64)),
                ],
            );
        }
        let merged = run_partitioned(accel, net, seed, &plan);
        if let Some(t) = self.tracer.as_deref_mut() {
            for (report, retire) in merged.layers.iter().zip(&merged.retire_cycles) {
                t.event(
                    *retire,
                    format!("layer/{}", report.name),
                    [
                        ("block", Json::str(&report.block)),
                        ("cycles", Json::U64(report.cycles.total_cycles())),
                        ("stall_ratio", Json::F64(report.cycles.stall_ratio())),
                        ("int4_fraction", Json::F64(report.cycles.int4_fraction())),
                        ("sensitive_fraction", Json::F64(report.sensitive_fraction)),
                    ],
                );
            }
            for (block, [int4, int8, load, fill]) in
                crate::metrics::block_breakdown(&merged.layers)
            {
                t.event(
                    merged.total_cycles,
                    format!("block/{block}"),
                    [
                        ("int4_cycles", Json::U64(int4)),
                        ("int8_cycles", Json::U64(int8)),
                        ("weight_load_cycles", Json::U64(load)),
                        ("fill_cycles", Json::U64(fill)),
                    ],
                );
            }
            t.span_end(merged.total_cycles, "run", NO_FIELDS);
        }
        NetworkSimReport {
            network: net.name.clone(),
            seed,
            layers: merged.layers,
            frequency_mhz: accel.config().frequency_mhz,
        }
    }
}

/// Cost-balances `net`'s layer graph under a partition policy. The plan
/// depends only on `(net, partitions)` — never on the accelerator — which
/// is what lets [`SharedSession`] compute it once and amortize it across
/// every candidate configuration of a design-space search.
fn balance_layers(net: &NetworkTopology, partitions: Partitions) -> PartitionPlan {
    let shard_count = partitions.resolve(net.layers.len());
    let costs: Vec<u64> = net.layers.iter().map(|l| l.macs().max(1)).collect();
    PartitionPlan::balance(&costs, shard_count)
}

/// A merged partitioned run: per-layer reports in execution order, the
/// global (offset-corrected) retire stamp of each layer, and the total
/// cycle count.
struct MergedRun {
    layers: Vec<crate::LayerReport>,
    retire_cycles: Vec<u64>,
    total_cycles: u64,
}

/// The shard fan-out + deterministic merge shared by [`SimSession`] and
/// [`SharedSession`]: one worker per shard, each simulating its contiguous
/// layer range against a virtual clock that starts at zero, then a
/// sequential merge that offsets each shard's local stamps by the prefix
/// sum of preceding shards' totals. Both are shard-count invariant, so the
/// merged stream is too. Layer telemetry is recorded here, on the merging
/// thread, in execution order — workers stay silent so enabling metrics
/// can never perturb scheduling or produce racy snapshots.
fn run_partitioned(
    accel: &DrqAccelerator,
    net: &NetworkTopology,
    seed: u64,
    plan: &PartitionPlan,
) -> MergedRun {
    let shards: Vec<crate::accelerator::ShardOutput> = parallel::par_map(plan.shard_count(), |s| {
        accel.simulate_shard(net, seed, plan.ranges()[s].clone())
    });
    let n_layers = net.layers.len();
    let mut layers = Vec::with_capacity(n_layers);
    let mut retire_cycles = Vec::with_capacity(n_layers);
    let mut offset: u64 = 0;
    for shard in shards {
        for (report, local_retire) in shard.reports.into_iter().zip(shard.retire_cycles) {
            accel.record_layer_metrics(&net.layers[layers.len()], &report);
            retire_cycles.push(offset + local_retire);
            layers.push(report);
        }
        offset += shard.total_cycles;
    }
    MergedRun { layers, retire_cycles, total_cycles: offset }
}

/// A reusable, accelerator-agnostic simulation session for design-space
/// exploration: the network, seed, and cost-balanced [`PartitionPlan`] are
/// fixed once, and [`SharedSession::simulate`] runs any number of candidate
/// accelerators against them from `&self`.
///
/// This is the PR 7 follow-on ("teach `drq sweep` to share one session
/// across candidates"): a [`SimSession`] consumes itself per run and
/// re-balances the layer graph every time, which is wasted work when a
/// sweep evaluates hundreds of candidates over the *same* network. A
/// `SharedSession` hoists everything candidate-invariant out of the loop
/// and is `Sync`, so one instance can be shared across
/// `drq_tensor::parallel::par_map` workers. Reports are byte-identical to
/// per-candidate [`SimSession`] runs at the same seed (pinned by
/// `tests/dse_session_reuse.rs`): both paths bottom out in the same
/// partitioned fan-out + merge, which is shard-count invariant.
///
/// ```
/// use drq_sim::{ArchConfig, Partitions, SharedSession, SimSession};
/// use drq_models::zoo;
///
/// let net = zoo::lenet5();
/// let shared = SharedSession::new(&net, Partitions::Auto).seed(42);
/// let accel = ArchConfig::builder().build();
/// let a = shared.simulate(&accel);
/// let b = SimSession::new(&accel, &net).seed(42).run().unwrap().into_report();
/// assert_eq!(a, b);
/// ```
pub struct SharedSession<'n> {
    net: &'n NetworkTopology,
    seed: u64,
    plan: PartitionPlan,
}

impl<'n> SharedSession<'n> {
    /// Builds a session over `net`, resolving and cost-balancing the
    /// partition plan once. Seed defaults to 0.
    pub fn new(net: &'n NetworkTopology, partitions: impl Into<Partitions>) -> Self {
        Self { net, seed: 0, plan: balance_layers(net, partitions.into()) }
    }

    /// Sets the session seed (same stream derivation as
    /// [`SimSession::seed`]).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The network this session simulates.
    pub fn net(&self) -> &'n NetworkTopology {
        self.net
    }

    /// The session seed.
    pub fn seed_value(&self) -> u64 {
        self.seed
    }

    /// The number of shards the precomputed plan fans out to.
    pub fn shard_count(&self) -> usize {
        self.plan.shard_count()
    }

    /// Runs one clean partitioned simulation of a candidate accelerator,
    /// reusing the precomputed partition plan. Callable from `&self` on
    /// any number of threads concurrently; nested parallel sections run
    /// inline, so calling this from inside a `par_map` never oversubscribes
    /// the pool.
    pub fn simulate(&self, accel: &DrqAccelerator) -> NetworkSimReport {
        let merged = run_partitioned(accel, self.net, self.seed, &self.plan);
        NetworkSimReport {
            network: self.net.name.clone(),
            seed: self.seed,
            layers: merged.layers,
            frequency_mhz: accel.config().frequency_mhz,
        }
    }
}

impl DrqAccelerator {
    /// Starts a [`SimSession`] on this accelerator (equivalent to
    /// [`SimSession::new`]).
    pub fn session<'a>(&'a self, net: &'a NetworkTopology) -> SimSession<'a, 'static> {
        SimSession::new(self, net)
    }

    /// The sequential fault post-pass: samples fault events per layer in
    /// execution order from the plan's seeded stream. Runs after the
    /// (partitioned) baseline on the calling thread — the event stream
    /// depends only on `(plan, per-layer reports)`, both shard-count
    /// invariant, so faulted runs replay bit-for-bit at any partitioning.
    fn apply_faults(
        &self,
        net: &NetworkTopology,
        baseline: &NetworkSimReport,
        mut plan: FaultPlan,
        session_seed: u64,
    ) -> Result<ReliabilityReport, SimError> {
        if plan.seed == 0 && !plan.is_empty() {
            // One session seed derives every stream: an unpinned plan
            // inherits the session's reserved fault stream.
            let derived = stream_seed(session_seed, FAULT_STREAM);
            plan.seed = if derived == 0 { 1 } else { derived };
        }
        let baseline_cycles = baseline.total_cycles();
        if plan.is_empty() {
            return Ok(ReliabilityReport {
                report: baseline.clone(),
                plan,
                counters: FaultCounters::default(),
                baseline_cycles,
                degraded_cycles: baseline_cycles,
                extra_dram_pj: 0.0,
            });
        }
        let mut inj = FaultInjector::new(&plan)?;
        let dram_pj_per_byte = self.energy_model().dram_pj_per_byte();
        let mut extra_cycles = 0u64;
        let mut extra_dram_pj = 0.0;
        for (spec, layer) in net.layers.iter().zip(&baseline.layers) {
            let name = Some(layer.name.as_str());
            extra_cycles +=
                inj.draw_count(FaultSite::StallCycle, name, layer.cycles.compute_cycles);
            let bursts = DramModel::bursts_for_bytes(layer.energy.dram_pj / dram_pj_per_byte);
            let drops = inj.draw_count(FaultSite::DramBurstDrop, name, bursts);
            let dups = inj.draw_count(FaultSite::DramBurstDuplicate, name, bursts);
            extra_dram_pj +=
                (drops + dups) as f64 * DramModel::BURST_BYTES as f64 * dram_pj_per_byte;
            let macs = layer.cycles.int4_macs + layer.cycles.int8_macs;
            inj.draw_count(FaultSite::PeAccumulator, name, macs);
            inj.draw_count(FaultSite::PeWeightRegister, name, macs);
            inj.draw_count(FaultSite::PeActivationRegister, name, macs);
            inj.draw_count(FaultSite::LineBufferStuckAt, name, spec.input_count() as u64);
        }
        let counters = inj.counters();
        for site in FaultSite::ALL {
            let n = counters.count(site);
            if n > 0 {
                counter_add!(&format!("sim/faults/{}", site.name()), n);
            }
        }
        Ok(ReliabilityReport {
            report: baseline.clone(),
            plan,
            counters,
            baseline_cycles,
            degraded_cycles: baseline_cycles + extra_cycles,
            extra_dram_pj,
        })
    }
}

/// Result of a [`SimSession`] run: the baseline network report plus, when
/// fault injection was armed, the reliability view.
#[derive(Debug, Clone, PartialEq)]
pub struct SimRun {
    report: NetworkSimReport,
    reliability: Option<ReliabilityReport>,
}

impl SimRun {
    /// The baseline simulation report (always present; identical to the
    /// un-faulted run even when a fault plan was armed).
    pub fn report(&self) -> &NetworkSimReport {
        &self.report
    }

    /// The reliability view, present iff the session armed a fault plan
    /// (even an empty one — an empty plan yields zero counters and a
    /// byte-identical embedded report).
    pub fn reliability(&self) -> Option<&ReliabilityReport> {
        self.reliability.as_ref()
    }

    /// Consumes the run, returning the baseline report.
    pub fn into_report(self) -> NetworkSimReport {
        self.report
    }

    /// Consumes the run, returning the reliability report (if faults were
    /// armed).
    pub fn into_reliability(self) -> Option<ReliabilityReport> {
        self.reliability
    }

    /// Serializes the run under the versioned schema: `kind:"reliability"`
    /// when fault injection was armed, the byte-stable
    /// `kind:"network_sim"` report otherwise.
    pub fn to_report(&self) -> drq_telemetry::Report {
        match &self.reliability {
            Some(rel) => rel.to_report(),
            None => self.report.to_report(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArchConfig, FaultRule};
    use drq_models::zoo;

    fn accel() -> DrqAccelerator {
        ArchConfig::builder().build()
    }

    #[test]
    fn partition_counts_are_byte_invariant() {
        let accel = accel();
        let net = zoo::resnet18(zoo::InputRes::Cifar);
        let single = SimSession::new(&accel, &net)
            .seed(42)
            .partitions(Partitions::Single)
            .run()
            .unwrap();
        for p in [Partitions::Fixed(2), Partitions::Fixed(5), Partitions::Auto] {
            let run = SimSession::new(&accel, &net).seed(42).partitions(p).run().unwrap();
            assert_eq!(run, single, "partitions={p}");
            assert_eq!(
                run.to_report().to_json_string(),
                single.to_report().to_json_string(),
                "bytes drifted at partitions={p}"
            );
        }
    }

    #[test]
    fn traces_are_partition_invariant_and_match_layer_order() {
        let accel = accel();
        let net = zoo::lenet5();
        let mut t1 = Tracer::new();
        let mut t4 = Tracer::new();
        let a = SimSession::new(&accel, &net).seed(4).partitions(1).trace(&mut t1).run().unwrap();
        let b = SimSession::new(&accel, &net).seed(4).partitions(4).trace(&mut t4).run().unwrap();
        assert_eq!(a, b);
        assert_eq!(t1.to_jsonl(), t4.to_jsonl());
        let layer_events = t1.events().iter().filter(|e| e.name.starts_with("layer/")).count();
        assert_eq!(layer_events, net.layers.len());
        assert_eq!(t1.events().last().unwrap().cycle, a.report().total_cycles());
    }

    #[test]
    fn session_without_faults_has_no_reliability_view() {
        let run = SimSession::new(&accel(), &zoo::lenet5()).seed(1).run().unwrap();
        assert!(run.reliability().is_none());
        assert_eq!(run.to_report().kind(), "network_sim");
    }

    #[test]
    fn empty_fault_plan_is_byte_identical_to_clean_run() {
        let accel = accel();
        let net = zoo::lenet5();
        let clean = SimSession::new(&accel, &net).seed(42).run().unwrap();
        let faulted = SimSession::new(&accel, &net)
            .seed(42)
            .faults(FaultPlan::empty())
            .run()
            .unwrap();
        let rel = faulted.reliability().expect("armed plan yields a view");
        assert_eq!(rel.report, *clean.report());
        assert_eq!(rel.counters.total(), 0);
        assert_eq!(
            rel.report.to_report().to_json_string(),
            clean.to_report().to_json_string()
        );
    }

    #[test]
    fn zero_plan_seed_derives_from_session_seed() {
        let accel = accel();
        let net = zoo::lenet5();
        let plan = FaultPlan {
            seed: 0,
            rules: vec![FaultRule::new(FaultSite::StallCycle, 1e-3)],
        };
        let run =
            |s: u64| {
                SimSession::new(&accel, &net)
                    .seed(s)
                    .faults(plan.clone())
                    .run()
                    .unwrap()
                    .into_reliability()
                    .unwrap()
            };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same session seed must replay");
        assert_ne!(a.plan.seed, 0, "derived fault seed must be materialized");
        assert_ne!(a.plan.seed, c.plan.seed, "fault stream must follow the session seed");
        // A pinned plan seed is left untouched.
        let pinned = FaultPlan { seed: 7, ..plan };
        let r = SimSession::new(&accel, &net)
            .seed(42)
            .faults(pinned)
            .run()
            .unwrap()
            .into_reliability()
            .unwrap();
        assert_eq!(r.plan.seed, 7);
    }

    #[test]
    fn faulted_runs_are_partition_invariant() {
        let accel = accel();
        let net = zoo::lenet5();
        let run = |p: usize| {
            SimSession::new(&accel, &net)
                .seed(42)
                .partitions(p)
                .faults(FaultPlan::smoke())
                .run()
                .unwrap()
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one, four);
        assert_eq!(one.to_report().to_json_string(), four.to_report().to_json_string());
        assert!(one.reliability().unwrap().counters.total() > 0);
        assert_eq!(one.to_report().kind(), "reliability");
    }

    #[test]
    fn batch_rejects_empty_seed_lists() {
        let err = SimSession::new(&accel(), &zoo::lenet5()).run_batch(&[]).unwrap_err();
        assert!(matches!(err, SimError::InvalidParameter { .. }));
    }

    #[test]
    fn batch_matches_individual_runs() {
        let accel = accel();
        let net = zoo::lenet5();
        let batch = SimSession::new(&accel, &net).run_batch(&[1, 2, 3]).unwrap();
        assert_eq!(batch.images, 3);
        let individual: Vec<u64> = [1u64, 2, 3]
            .iter()
            .map(|&s| {
                SimSession::new(&accel, &net)
                    .seed(s)
                    .run()
                    .unwrap()
                    .report()
                    .total_cycles()
            })
            .collect();
        assert_eq!(batch.min_cycles, *individual.iter().min().unwrap());
        assert_eq!(batch.max_cycles, *individual.iter().max().unwrap());
        let mean = individual.iter().sum::<u64>() as f64 / 3.0;
        assert!((batch.mean_cycles - mean).abs() < 1e-9);
    }

    #[test]
    fn thread_count_never_changes_results() {
        let accel = accel();
        let net = zoo::lenet5();
        let run = || {
            SimSession::new(&accel, &net)
                .seed(9)
                .partitions(Partitions::Auto)
                .run()
                .unwrap()
                .to_report()
                .to_json_string()
        };
        parallel::set_max_threads(1);
        let one = run();
        parallel::set_max_threads(3);
        let three = run();
        parallel::set_max_threads(0);
        assert_eq!(one, three);
    }
}
