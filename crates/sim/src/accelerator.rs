//! The full DRQ accelerator: architecture configuration, per-layer
//! simulation, and network-level reports.

use crate::{EnergyBreakdown, EnergyModel, LayerCycleModel, LayerCycles};
use drq_core::{DrqConfig, RegionSize};
use drq_models::{ConvLayerSpec, FeatureMapSynthesizer, NetworkTopology};
use drq_quant::Precision;
use drq_tensor::XorShiftRng;
use std::collections::BTreeMap;

/// Architecture parameters of the DRQ accelerator (Table II row "DRQ").
///
/// # Examples
///
/// ```
/// use drq_sim::ArchConfig;
///
/// let cfg = ArchConfig::paper_default();
/// assert_eq!(cfg.total_pes(), 3168);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchConfig {
    /// Number of PE pages.
    pub pages: usize,
    /// PE rows per page.
    pub rows: usize,
    /// PE columns per page.
    pub cols: usize,
    /// Clock frequency in MHz (the paper evaluates at 500 MHz).
    pub frequency_mhz: f64,
    /// Global buffer capacity in bytes (5 MB for every accelerator in
    /// Table II).
    pub global_buffer_bytes: usize,
    /// The DRQ algorithm configuration (base region and threshold).
    pub drq: DrqConfig,
}

impl ArchConfig {
    /// The paper's configuration: 16 pages of 18×11 PEs (3168 INT4 MACs),
    /// 500 MHz, 5 MB global buffer, 4×16 regions with threshold 21
    /// (the ResNet-18 operating point of Table III).
    pub fn paper_default() -> Self {
        Self {
            pages: 16,
            rows: 18,
            cols: 11,
            frequency_mhz: 500.0,
            global_buffer_bytes: 5 * 1024 * 1024,
            drq: DrqConfig::new(RegionSize::new(4, 16), 21.0),
        }
    }

    /// Total PE count.
    pub fn total_pes(&self) -> usize {
        self.pages * self.rows * self.cols
    }

    /// Returns a copy with a different DRQ configuration.
    pub fn with_drq(mut self, drq: DrqConfig) -> Self {
        self.drq = drq;
        self
    }

    /// Returns a copy with a different array organization (PE count =
    /// `pages × rows × cols` may differ from the paper's 3168).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn with_geometry(mut self, pages: usize, rows: usize, cols: usize) -> Self {
        assert!(pages > 0 && rows > 0 && cols > 0, "geometry must be positive");
        self.pages = pages;
        self.rows = rows;
        self.cols = cols;
        self
    }
}

/// Per-layer simulation result.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerReport {
    /// Layer name from the topology.
    pub name: String,
    /// Block label (C1/B1/... for ResNet-18).
    pub block: String,
    /// Cycle and MAC breakdown.
    pub cycles: LayerCycles,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Mean sensitive-region fraction of this layer's input.
    pub sensitive_fraction: f64,
}

/// Whole-network simulation result.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSimReport {
    /// The simulated network's name.
    pub network: String,
    /// Per-layer reports in execution order.
    pub layers: Vec<LayerReport>,
    /// Clock frequency used for time conversion (MHz).
    pub frequency_mhz: f64,
}

impl NetworkSimReport {
    /// Total execution cycles.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.cycles.total_cycles()).sum()
    }

    /// Total execution time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_cycles() as f64 / (self.frequency_mhz * 1e3)
    }

    /// Total energy breakdown.
    pub fn total_energy(&self) -> EnergyBreakdown {
        let mut e = EnergyBreakdown::default();
        for l in &self.layers {
            e.merge(&l.energy);
        }
        e
    }

    /// Aggregate cycle counters.
    pub fn total_layer_cycles(&self) -> LayerCycles {
        let mut c = LayerCycles::default();
        for l in &self.layers {
            c.merge(&l.cycles);
        }
        c
    }

    /// Network-wide 4-bit MAC percentage (Fig. 11's bit-mix metric).
    pub fn int4_fraction(&self) -> f64 {
        self.total_layer_cycles().int4_fraction()
    }

    /// Network-wide stall ratio (Fig. 14's metric).
    pub fn stall_ratio(&self) -> f64 {
        self.total_layer_cycles().stall_ratio()
    }

    /// Per-block cycle breakdown for the Fig. 16 utilization plot:
    /// `block → (int4 compute, int8 compute, weight load, fill/data)`.
    pub fn block_breakdown(&self) -> BTreeMap<String, [u64; 4]> {
        let mut map: BTreeMap<String, [u64; 4]> = BTreeMap::new();
        for l in &self.layers {
            let e = map.entry(l.block.clone()).or_default();
            let scale_int4 = l.cycles.int4_steps;
            let scale_int8 = l.cycles.int8_steps * 4;
            e[0] += scale_int4;
            e[1] += scale_int8;
            e[2] += l.cycles.weight_load_cycles;
            e[3] += l.cycles.fill_cycles;
        }
        map
    }
}

/// Cross-image summary from [`DrqAccelerator::simulate_network_batch`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSimSummary {
    /// The simulated network's name.
    pub network: String,
    /// Number of images simulated.
    pub images: usize,
    /// Mean total cycles per image.
    pub mean_cycles: f64,
    /// Standard deviation of total cycles across images.
    pub stddev_cycles: f64,
    /// Fastest image.
    pub min_cycles: u64,
    /// Slowest image.
    pub max_cycles: u64,
    /// Mean 4-bit MAC fraction.
    pub mean_int4_fraction: f64,
}

impl BatchSimSummary {
    /// Coefficient of variation of the per-image cycle counts.
    pub fn cycle_cv(&self) -> f64 {
        if self.mean_cycles == 0.0 {
            0.0
        } else {
            self.stddev_cycles / self.mean_cycles
        }
    }
}

/// The DRQ accelerator simulator.
///
/// For each layer the simulator synthesizes a post-BN+ReLU input feature
/// map (Section II statistics), runs the sensitivity predictor at the
/// layer's effective region/threshold (deep-layer rules included), and
/// evaluates the variable-speed systolic cycle model plus the energy model.
///
/// # Examples
///
/// ```
/// use drq_sim::{ArchConfig, DrqAccelerator};
/// use drq_models::zoo;
///
/// let accel = DrqAccelerator::new(ArchConfig::paper_default());
/// let report = accel.simulate_network(&zoo::lenet5(), 1);
/// assert_eq!(report.layers.len(), zoo::lenet5().layers.len());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DrqAccelerator {
    config: ArchConfig,
    energy: EnergyModel,
    synth: FeatureMapSynthesizer,
}

impl DrqAccelerator {
    /// Creates a simulator with default energy model and feature synthesis.
    pub fn new(config: ArchConfig) -> Self {
        Self {
            config,
            energy: EnergyModel::tsmc45(),
            synth: FeatureMapSynthesizer::default(),
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> ArchConfig {
        self.config
    }

    /// Overrides the energy model (builder style).
    pub fn with_energy_model(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// Overrides the feature-map synthesizer (builder style).
    pub fn with_synthesizer(mut self, synth: FeatureMapSynthesizer) -> Self {
        self.synth = synth;
        self
    }

    /// Simulates one layer given externally produced masks.
    pub fn simulate_layer(
        &self,
        spec: &ConvLayerSpec,
        masks: &[drq_core::MaskMap],
        sensitive_fraction: f64,
    ) -> LayerReport {
        let model = LayerCycleModel::new(self.config.rows, self.config.cols, self.config.pages);
        let cycles = model.simulate_layer(spec, masks);
        let energy = self.layer_energy(spec, &cycles, sensitive_fraction);
        LayerReport {
            name: spec.name.clone(),
            block: spec.block.clone(),
            cycles,
            energy,
            sensitive_fraction,
        }
    }

    /// Simulates a whole network, synthesizing each layer's input feature
    /// map deterministically from `seed`.
    pub fn simulate_network(&self, net: &NetworkTopology, seed: u64) -> NetworkSimReport {
        let mut rng = XorShiftRng::new(seed ^ 0xD5);
        let n_layers = net.layers.len().max(1);
        let layers = net
            .layers
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let depth = i as f64 / n_layers as f64;
                let synth = self.synth.for_depth(depth);
                let (masks, frac) =
                    synth.masks_for_layer(spec, &self.config.drq, depth, &mut rng);
                self.simulate_layer(spec, &masks, frac)
            })
            .collect();
        NetworkSimReport {
            network: net.name.clone(),
            layers,
            frequency_mhz: self.config.frequency_mhz,
        }
    }

    /// Simulates `seeds.len()` independent images and summarizes the
    /// run-to-run spread — feature maps are synthesized per seed, so this
    /// measures how much the dynamic, input-dependent quantization moves
    /// cycle counts between images (a property no static scheme has).
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty.
    pub fn simulate_network_batch(
        &self,
        net: &NetworkTopology,
        seeds: &[u64],
    ) -> BatchSimSummary {
        assert!(!seeds.is_empty(), "need at least one seed");
        let runs: Vec<NetworkSimReport> =
            seeds.iter().map(|&s| self.simulate_network(net, s)).collect();
        let cycles: Vec<u64> = runs.iter().map(NetworkSimReport::total_cycles).collect();
        let n = cycles.len() as f64;
        let mean = cycles.iter().sum::<u64>() as f64 / n;
        let var = cycles
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        let int4 = runs.iter().map(NetworkSimReport::int4_fraction).sum::<f64>() / n;
        BatchSimSummary {
            network: net.name.clone(),
            images: runs.len(),
            mean_cycles: mean,
            stddev_cycles: var.sqrt(),
            min_cycles: *cycles.iter().min().expect("non-empty"),
            max_cycles: *cycles.iter().max().expect("non-empty"),
            mean_int4_fraction: int4,
        }
    }

    /// Energy accounting for one layer (weight-stationary dataflow,
    /// Section VI-A):
    ///
    /// * DRAM: weights always INT8; activations at their packed mixed
    ///   width (4/8 bits by sensitivity) plus the region-mask bits; outputs
    ///   written back packed.
    /// * Global buffer: inputs re-streamed once per pass (row tile ×
    ///   column tile), weights read once per tile, 16-bit partial sums
    ///   spilled once per extra row tile.
    /// * Core: per-MAC energies by precision. The systolic array shifts
    ///   operands between neighbours, so no per-MAC register-file penalty
    ///   applies (unlike the OLAccel baseline).
    fn layer_energy(
        &self,
        spec: &ConvLayerSpec,
        cycles: &LayerCycles,
        sensitive_fraction: f64,
    ) -> EnergyBreakdown {
        let f = sensitive_fraction.clamp(0.0, 1.0);
        let weight_bytes = spec.weight_count() as f64; // INT8 in DRAM
        let input_bytes = spec.input_count() as f64 * (0.5 + 0.5 * f);
        let mask_bytes = spec.input_count() as f64 / 8.0 / 64.0; // ~1 bit / 64 px region
        let output_bytes = spec.output_count() as f64 * (0.5 + 0.5 * f);
        // Weights always come from DRAM; activations only when a map spills
        // the 5 MB global buffer.
        let dram_bytes = weight_bytes
            + mask_bytes
            + crate::dram_activation_bytes(
                input_bytes,
                output_bytes,
                self.config.global_buffer_bytes as f64,
            );

        // Global-buffer traffic: each tap tile re-reads the input stream
        // (filter tiles within a tap tile replay from the cheap line
        // buffer), weights are read once, 16-bit partial sums spill per
        // extra tap tile.
        let taps = (spec.in_c / spec.groups) * spec.kh * spec.kw;
        let row_tiles = taps.div_ceil(self.config.rows) as f64;
        let buffer_bytes = input_bytes * row_tiles.min(4.0)
            + weight_bytes
            + spec.output_count() as f64 * 2.0 * row_tiles.min(4.0);

        // Sensitivity-predictor overhead (Section IV-E claims it is
        // negligible; charging it keeps that claim checkable): with pooling
        // reuse, one accumulate per pooling window plus one compare per
        // region, per output channel, at register-file cost.
        let layer_cfg = self.config.drq.for_feature_map(spec.out_h().max(1), spec.out_w().max(1));
        let predictor_ops = crate::PredictorUnit::new(layer_cfg.region, 2)
            .extra_ops_per_channel(spec.out_h().max(1), spec.out_w().max(1))
            * spec.out_c as u64;
        let predictor_pj = predictor_ops as f64 * self.energy.rf_pj_per_access();

        EnergyBreakdown {
            dram_pj: dram_bytes * self.energy.dram_pj_per_byte(),
            buffer_pj: buffer_bytes * self.energy.buffer_pj_per_byte(),
            core_pj: self
                .energy
                .core_macs_pj(cycles.int4_macs, cycles.int8_macs, 0)
                + predictor_pj,
        }
    }

    /// The fraction of a layer's core energy spent in the sensitivity
    /// predictor — the quantitative form of Section IV-E's "negligible
    /// performance overhead" claim on the energy side.
    pub fn predictor_energy_fraction(&self, spec: &ConvLayerSpec) -> f64 {
        let layer_cfg = self.config.drq.for_feature_map(spec.out_h().max(1), spec.out_w().max(1));
        let predictor_ops = crate::PredictorUnit::new(layer_cfg.region, 2)
            .extra_ops_per_channel(spec.out_h().max(1), spec.out_w().max(1))
            * spec.out_c as u64;
        let predictor_pj = predictor_ops as f64 * self.energy.rf_pj_per_access();
        let mac_pj = self.energy.core_macs_pj(spec.macs(), 0, 0);
        predictor_pj / (predictor_pj + mac_pj).max(f64::MIN_POSITIVE)
    }

    /// Equivalent-INT8 peak throughput in MAC/cycle (for sanity checks):
    /// 3168 INT4 MACs equal 792 INT8 MACs per cycle.
    pub fn peak_macs_per_cycle(&self, precision: Precision) -> f64 {
        self.config.total_pes() as f64 / precision.int4_subops() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drq_models::zoo::{self, InputRes};

    #[test]
    fn paper_config_has_table2_pe_count() {
        let cfg = ArchConfig::paper_default();
        assert_eq!(cfg.total_pes(), 3168);
        assert_eq!(cfg.pages, 16);
        assert_eq!(cfg.rows, 18);
        assert_eq!(cfg.cols, 11);
    }

    #[test]
    fn lenet_simulation_is_mostly_int4() {
        let accel = DrqAccelerator::new(ArchConfig::paper_default());
        let report = accel.simulate_network(&zoo::lenet5(), 7);
        let frac = report.int4_fraction();
        assert!(frac > 0.6, "int4 fraction {frac}");
        assert!(report.total_cycles() > 0);
        assert!(report.total_energy().total_pj() > 0.0);
    }

    #[test]
    fn resnet18_cifar_simulates_quickly_and_sanely() {
        let accel = DrqAccelerator::new(ArchConfig::paper_default());
        let net = zoo::resnet18(InputRes::Cifar);
        let report = accel.simulate_network(&net, 3);
        assert_eq!(report.layers.len(), net.layers.len());
        // Compute must dominate overheads on conv-heavy networks.
        let t = report.total_layer_cycles();
        assert!(t.compute_cycles > t.weight_load_cycles);
        // Blocks of Fig. 16 all present.
        let blocks = report.block_breakdown();
        for b in ["C1", "B1", "B2", "B3", "B4"] {
            assert!(blocks.contains_key(b), "missing block {b}");
        }
    }

    #[test]
    fn lower_threshold_means_more_int8_and_more_cycles() {
        let net = zoo::resnet18(InputRes::Cifar);
        let run = |t: f32| {
            let cfg = ArchConfig::paper_default()
                .with_drq(DrqConfig::new(RegionSize::new(4, 16), t));
            DrqAccelerator::new(cfg).simulate_network(&net, 11)
        };
        let strict = run(2.0); // low threshold: many sensitive regions
        let loose = run(80.0); // high threshold: few sensitive regions
        assert!(strict.int4_fraction() < loose.int4_fraction());
        assert!(strict.total_cycles() > loose.total_cycles());
    }

    #[test]
    fn energy_has_all_components() {
        let accel = DrqAccelerator::new(ArchConfig::paper_default());
        let report = accel.simulate_network(&zoo::alexnet(InputRes::Cifar), 5);
        let e = report.total_energy();
        assert!(e.dram_pj > 0.0 && e.buffer_pj > 0.0 && e.core_pj > 0.0);
    }

    #[test]
    fn peak_throughput_scaling() {
        let accel = DrqAccelerator::new(ArchConfig::paper_default());
        assert_eq!(accel.peak_macs_per_cycle(Precision::Int4), 3168.0);
        assert_eq!(accel.peak_macs_per_cycle(Precision::Int8), 792.0);
    }

    #[test]
    fn geometry_override_reorganizes_the_array() {
        let cfg = ArchConfig::paper_default().with_geometry(8, 18, 22);
        assert_eq!(cfg.total_pes(), 3168);
        let net = zoo::resnet18(InputRes::Cifar);
        let a = DrqAccelerator::new(ArchConfig::paper_default()).simulate_network(&net, 3);
        let b = DrqAccelerator::new(cfg).simulate_network(&net, 3);
        // Same PE count, different tiling: cycle counts differ but stay in
        // the same regime (within 2x).
        let (ca, cb) = (a.total_cycles() as f64, b.total_cycles() as f64);
        assert!(ca / cb < 2.0 && cb / ca < 2.0, "{ca} vs {cb}");
    }

    #[test]
    fn predictor_energy_is_negligible() {
        // Section IV-E: the added prediction step carries negligible
        // overhead. Quantified: < 2% of even the all-INT4 MAC energy for a
        // representative conv layer.
        let accel = DrqAccelerator::new(ArchConfig::paper_default());
        let spec = drq_models::ConvLayerSpec::conv("c", "B1", 64, 56, 56, 64, 3, 3, 1, 1);
        let frac = accel.predictor_energy_fraction(&spec);
        assert!(frac < 0.02, "predictor energy fraction {frac}");
        assert!(frac > 0.0);
    }

    #[test]
    fn batch_summary_reflects_input_variation() {
        let accel = DrqAccelerator::new(ArchConfig::paper_default());
        let net = zoo::lenet5();
        let batch = accel.simulate_network_batch(&net, &[1, 2, 3, 4, 5]);
        assert_eq!(batch.images, 5);
        assert!(batch.min_cycles <= batch.mean_cycles as u64 + 1);
        assert!(batch.max_cycles >= batch.mean_cycles as u64);
        // Dynamic quantization: different images, different cycle counts.
        assert!(batch.stddev_cycles > 0.0);
        assert!(batch.cycle_cv() < 0.5, "spread implausibly large");
        assert!((0.0..=1.0).contains(&batch.mean_int4_fraction));
    }

    #[test]
    fn reports_are_deterministic_per_seed() {
        let accel = DrqAccelerator::new(ArchConfig::paper_default());
        let net = zoo::lenet5();
        let a = accel.simulate_network(&net, 9);
        let b = accel.simulate_network(&net, 9);
        assert_eq!(a, b);
    }
}
