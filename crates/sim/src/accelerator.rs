//! The full DRQ accelerator: architecture configuration, per-layer
//! simulation, and network-level reports.

use crate::faults::{FaultCounters, FaultPlan};
use crate::partition::stream_seed;
use crate::{
    metrics, EnergyBreakdown, EnergyModel, LayerCycleModel, LayerCycles, SimError, SimSession,
};
use drq_core::{DrqConfig, RegionSize};
use drq_models::{ConvLayerSpec, FeatureMapSynthesizer, NetworkTopology};
use drq_quant::Precision;
use drq_telemetry::{counter_add, observe, Json, Report, Tracer};
use drq_tensor::XorShiftRng;
use std::collections::BTreeMap;

/// Architecture parameters of the DRQ accelerator (Table II row "DRQ").
///
/// # Examples
///
/// ```
/// use drq_sim::ArchConfig;
///
/// let cfg = ArchConfig::paper_default();
/// assert_eq!(cfg.total_pes(), 3168);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchConfig {
    /// Number of PE pages.
    pub pages: usize,
    /// PE rows per page.
    pub rows: usize,
    /// PE columns per page.
    pub cols: usize,
    /// Clock frequency in MHz (the paper evaluates at 500 MHz).
    pub frequency_mhz: f64,
    /// Global buffer capacity in bytes (5 MB for every accelerator in
    /// Table II).
    pub global_buffer_bytes: usize,
    /// The DRQ algorithm configuration (base region and threshold).
    pub drq: DrqConfig,
}

impl ArchConfig {
    /// The paper's configuration: 16 pages of 18×11 PEs (3168 INT4 MACs),
    /// 500 MHz, 5 MB global buffer, 4×16 regions with threshold 21
    /// (the ResNet-18 operating point of Table III).
    pub fn paper_default() -> Self {
        Self {
            pages: 16,
            rows: 18,
            cols: 11,
            frequency_mhz: 500.0,
            global_buffer_bytes: 5 * 1024 * 1024,
            drq: DrqConfig::new(RegionSize::new(4, 16), 21.0),
        }
    }

    /// Total PE count.
    pub fn total_pes(&self) -> usize {
        self.pages * self.rows * self.cols
    }

    /// Starts a builder at the paper's configuration. This is the one entry
    /// point for configuring both the architecture *and* the simulator
    /// models (energy, feature-map synthesis); `build()` returns the
    /// accelerator directly.
    ///
    /// # Examples
    ///
    /// ```
    /// use drq_sim::ArchConfig;
    /// use drq_core::{DrqConfig, RegionSize};
    ///
    /// let accel = ArchConfig::builder()
    ///     .drq(DrqConfig::new(RegionSize::new(4, 16), 30.0))
    ///     .geometry(8, 18, 22)
    ///     .build();
    /// assert_eq!(accel.config().total_pes(), 3168);
    /// ```
    pub fn builder() -> ArchBuilder {
        ArchBuilder::new()
    }

    /// Returns a copy with a different DRQ configuration.
    #[deprecated(since = "0.1.0", note = "use `ArchConfig::builder().drq(..)` instead")]
    pub fn with_drq(mut self, drq: DrqConfig) -> Self {
        self.drq = drq;
        self
    }

    /// Returns a copy with a different array organization (PE count =
    /// `pages × rows × cols` may differ from the paper's 3168).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[deprecated(since = "0.1.0", note = "use `ArchConfig::builder().geometry(..)` instead")]
    pub fn with_geometry(mut self, pages: usize, rows: usize, cols: usize) -> Self {
        assert!(pages > 0 && rows > 0 && cols > 0, "geometry must be positive");
        self.pages = pages;
        self.rows = rows;
        self.cols = cols;
        self
    }
}

/// Builder over [`ArchConfig`] plus the simulator's pluggable models.
///
/// Consolidates what used to be two chains
/// (`ArchConfig::paper_default().with_drq(..).with_geometry(..)` and
/// `DrqAccelerator::new(..).with_energy_model(..).with_synthesizer(..)`)
/// into one: every knob is set in one place and [`ArchBuilder::build`]
/// returns the ready [`DrqAccelerator`]. Starts from
/// [`ArchConfig::paper_default`], [`EnergyModel::tsmc45`] and the default
/// [`FeatureMapSynthesizer`].
#[derive(Debug, Clone, PartialEq)]
pub struct ArchBuilder {
    config: ArchConfig,
    energy: EnergyModel,
    synth: FeatureMapSynthesizer,
}

impl ArchBuilder {
    /// Starts at the paper defaults (prefer [`ArchConfig::builder`]).
    pub fn new() -> Self {
        Self {
            config: ArchConfig::paper_default(),
            energy: EnergyModel::tsmc45(),
            synth: FeatureMapSynthesizer::default(),
        }
    }

    /// Sets the DRQ algorithm configuration (region size and threshold).
    pub fn drq(mut self, drq: DrqConfig) -> Self {
        self.config.drq = drq;
        self
    }

    /// Sets the PE-array organization.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn geometry(self, pages: usize, rows: usize, cols: usize) -> Self {
        self.try_geometry(pages, rows, cols).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible counterpart of [`ArchBuilder::geometry`].
    pub fn try_geometry(
        mut self,
        pages: usize,
        rows: usize,
        cols: usize,
    ) -> Result<Self, SimError> {
        if pages == 0 || rows == 0 || cols == 0 {
            return Err(SimError::InvalidGeometry {
                context: "arch builder",
                detail: format!(
                    "geometry must be positive (got {pages} pages of {rows}x{cols})"
                ),
            });
        }
        self.config.pages = pages;
        self.config.rows = rows;
        self.config.cols = cols;
        Ok(self)
    }

    /// Sets the clock frequency in MHz.
    pub fn frequency_mhz(mut self, mhz: f64) -> Self {
        self.config.frequency_mhz = mhz;
        self
    }

    /// Sets the global-buffer capacity in bytes.
    pub fn global_buffer_bytes(mut self, bytes: usize) -> Self {
        self.config.global_buffer_bytes = bytes;
        self
    }

    /// Overrides the energy model.
    pub fn energy_model(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// Overrides the feature-map synthesizer.
    pub fn synthesizer(mut self, synth: FeatureMapSynthesizer) -> Self {
        self.synth = synth;
        self
    }

    /// The architecture configuration accumulated so far (for callers that
    /// only need the config, not a simulator).
    pub fn config(&self) -> ArchConfig {
        self.config
    }

    /// Finishes the builder, returning the configured accelerator.
    pub fn build(self) -> DrqAccelerator {
        DrqAccelerator { config: self.config, energy: self.energy, synth: self.synth }
    }

    /// Like [`ArchBuilder::build`], but re-validates the whole accumulated
    /// configuration (geometry, frequency, buffer capacity) and returns a
    /// typed error instead of deferring to downstream panics.
    pub fn try_build(self) -> Result<DrqAccelerator, SimError> {
        let c = &self.config;
        if c.pages == 0 || c.rows == 0 || c.cols == 0 {
            return Err(SimError::InvalidGeometry {
                context: "arch builder",
                detail: format!(
                    "geometry must be positive (got {} pages of {}x{})",
                    c.pages, c.rows, c.cols
                ),
            });
        }
        if !(c.frequency_mhz.is_finite() && c.frequency_mhz > 0.0) {
            return Err(SimError::InvalidParameter {
                context: "arch builder",
                detail: format!("frequency must be positive (got {} MHz)", c.frequency_mhz),
            });
        }
        if c.global_buffer_bytes == 0 {
            return Err(SimError::InvalidGeometry {
                context: "arch builder",
                detail: "global buffer must have capacity".into(),
            });
        }
        Ok(self.build())
    }
}

impl Default for ArchBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-layer simulation result.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerReport {
    /// Layer name from the topology.
    pub name: String,
    /// Block label (C1/B1/... for ResNet-18).
    pub block: String,
    /// Cycle and MAC breakdown.
    pub cycles: LayerCycles,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Mean sensitive-region fraction of this layer's input.
    pub sensitive_fraction: f64,
}

impl LayerReport {
    /// Serializes the layer under the schema's per-layer object shape (the
    /// same objects that appear in `NetworkSimReport::to_report()`'s
    /// `layers` array).
    pub fn to_json(&self) -> Json {
        metrics::layer_json(self)
    }
}

/// Whole-network simulation result.
///
/// All accessors delegate to the shared aggregation in [`crate::metrics`] —
/// the same code path that serializes [`NetworkSimReport::to_report`] — so
/// the struct's numbers and the schema JSON cannot drift apart.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSimReport {
    /// The simulated network's name.
    pub network: String,
    /// The feature-map synthesis seed this run used.
    pub seed: u64,
    /// Per-layer reports in execution order.
    pub layers: Vec<LayerReport>,
    /// Clock frequency used for time conversion (MHz).
    pub frequency_mhz: f64,
}

impl NetworkSimReport {
    /// Total execution cycles.
    pub fn total_cycles(&self) -> u64 {
        self.total_layer_cycles().total_cycles()
    }

    /// Total execution time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_cycles() as f64 / (self.frequency_mhz * 1e3)
    }

    /// Total energy breakdown.
    pub fn total_energy(&self) -> EnergyBreakdown {
        metrics::total_energy(&self.layers)
    }

    /// Aggregate cycle counters.
    pub fn total_layer_cycles(&self) -> LayerCycles {
        metrics::total_layer_cycles(&self.layers)
    }

    /// Network-wide 4-bit MAC percentage (Fig. 11's bit-mix metric).
    pub fn int4_fraction(&self) -> f64 {
        self.total_layer_cycles().int4_fraction()
    }

    /// Network-wide stall ratio (Fig. 14's metric).
    pub fn stall_ratio(&self) -> f64 {
        self.total_layer_cycles().stall_ratio()
    }

    /// Per-block cycle breakdown for the Fig. 16 utilization plot:
    /// `block → (int4 compute, int8 compute, weight load, fill/data)`.
    pub fn block_breakdown(&self) -> BTreeMap<String, [u64; 4]> {
        metrics::block_breakdown(&self.layers)
    }

    /// Serializes the run under the versioned `network_sim` schema. Byte
    /// stable for a fixed seed and configuration.
    pub fn to_report(&self) -> Report {
        metrics::network_report(self)
    }
}

/// Cross-image summary from [`SimSession::run_batch`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSimSummary {
    /// The simulated network's name.
    pub network: String,
    /// Number of images simulated.
    pub images: usize,
    /// Mean total cycles per image.
    pub mean_cycles: f64,
    /// Standard deviation of total cycles across images.
    pub stddev_cycles: f64,
    /// Fastest image.
    pub min_cycles: u64,
    /// Slowest image.
    pub max_cycles: u64,
    /// Mean 4-bit MAC fraction.
    pub mean_int4_fraction: f64,
}

impl BatchSimSummary {
    /// Coefficient of variation of the per-image cycle counts.
    pub fn cycle_cv(&self) -> f64 {
        if self.mean_cycles == 0.0 {
            0.0
        } else {
            self.stddev_cycles / self.mean_cycles
        }
    }

    /// Serializes the summary under the versioned `batch_sim` schema.
    pub fn to_report(&self) -> Report {
        metrics::batch_report(self)
    }
}

/// Result of a fault-injected network run (a [`SimSession`] with an armed
/// [`FaultPlan`]).
///
/// Carries the ordinary [`NetworkSimReport`] (the baseline behaviour —
/// identical to the un-faulted session for the same seed) plus the
/// reliability view: what the plan injected, how many cycles the spurious
/// stalls added, and how much DRAM energy the dropped/duplicated bursts
/// cost in refetch traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct ReliabilityReport {
    /// The baseline simulation this reliability run perturbed.
    pub report: NetworkSimReport,
    /// The fault plan that drove the injection.
    pub plan: FaultPlan,
    /// Per-site injected-event counts.
    pub counters: FaultCounters,
    /// Total cycles of the fault-free run.
    pub baseline_cycles: u64,
    /// Total cycles including injected stalls.
    pub degraded_cycles: u64,
    /// Extra DRAM energy from burst refetches/duplicates, in pJ.
    pub extra_dram_pj: f64,
}

impl ReliabilityReport {
    /// Degraded-over-baseline cycle ratio (`1.0` = no slowdown).
    pub fn slowdown(&self) -> f64 {
        if self.baseline_cycles == 0 {
            1.0
        } else {
            self.degraded_cycles as f64 / self.baseline_cycles as f64
        }
    }

    /// Serializes the run under the versioned `reliability` schema.
    pub fn to_report(&self) -> Report {
        metrics::reliability_report(self)
    }
}

/// The DRQ accelerator simulator.
///
/// For each layer the simulator synthesizes a post-BN+ReLU input feature
/// map (Section II statistics), runs the sensitivity predictor at the
/// layer's effective region/threshold (deep-layer rules included), and
/// evaluates the variable-speed systolic cycle model plus the energy model.
///
/// # Examples
///
/// ```
/// use drq_sim::{ArchConfig, DrqAccelerator, SimSession};
/// use drq_models::zoo;
///
/// let accel = DrqAccelerator::new(ArchConfig::paper_default());
/// let net = zoo::lenet5();
/// let run = SimSession::new(&accel, &net).seed(1).run().unwrap();
/// assert_eq!(run.report().layers.len(), net.layers.len());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DrqAccelerator {
    config: ArchConfig,
    energy: EnergyModel,
    synth: FeatureMapSynthesizer,
}

/// Output of one partitioned-simulation shard: per-layer reports for its
/// contiguous layer range, the shard-local virtual-clock stamp at which
/// each layer retires, and the shard's total cycles (the amount by which
/// the merge advances the global clock).
pub(crate) struct ShardOutput {
    pub(crate) reports: Vec<LayerReport>,
    pub(crate) retire_cycles: Vec<u64>,
    pub(crate) total_cycles: u64,
}

/// Per-layer memory-traffic summary shared between energy accounting and
/// the `sim/bytes/*` telemetry counters.
struct LayerTraffic {
    dram_bytes: f64,
    buffer_bytes: f64,
    occupancy: f64,
}

impl DrqAccelerator {
    /// Creates a simulator with default energy model and feature synthesis.
    pub fn new(config: ArchConfig) -> Self {
        Self {
            config,
            energy: EnergyModel::tsmc45(),
            synth: FeatureMapSynthesizer::default(),
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> ArchConfig {
        self.config
    }

    /// Overrides the energy model (builder style).
    #[deprecated(since = "0.1.0", note = "use `ArchConfig::builder().energy_model(..)` instead")]
    pub fn with_energy_model(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// Overrides the feature-map synthesizer (builder style).
    #[deprecated(since = "0.1.0", note = "use `ArchConfig::builder().synthesizer(..)` instead")]
    pub fn with_synthesizer(mut self, synth: FeatureMapSynthesizer) -> Self {
        self.synth = synth;
        self
    }

    /// The energy model in use (for the fault post-pass).
    pub(crate) fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// Simulates one layer given externally produced masks.
    ///
    /// When global metrics collection is enabled, records `sim/*` counters
    /// (layers, cycle and MAC mixes, stalls) as a side channel — recording
    /// never influences the returned report.
    pub fn simulate_layer(
        &self,
        spec: &ConvLayerSpec,
        masks: &[drq_core::MaskMap],
        sensitive_fraction: f64,
    ) -> LayerReport {
        let report = self.simulate_layer_quiet(spec, masks, sensitive_fraction);
        self.record_layer_metrics(spec, &report);
        report
    }

    /// The pure layer simulation: no telemetry side channel. Shard workers
    /// call this so recording happens once, on the merging thread, in
    /// execution order ([`DrqAccelerator::record_layer_metrics`]).
    pub(crate) fn simulate_layer_quiet(
        &self,
        spec: &ConvLayerSpec,
        masks: &[drq_core::MaskMap],
        sensitive_fraction: f64,
    ) -> LayerReport {
        let model = LayerCycleModel::new(self.config.rows, self.config.cols, self.config.pages);
        let cycles = model.simulate_layer(spec, masks);
        let energy = self.layer_energy(spec, &cycles, sensitive_fraction);
        LayerReport {
            name: spec.name.clone(),
            block: spec.block.clone(),
            cycles,
            energy,
            sensitive_fraction,
        }
    }

    /// Records the `sim/*` telemetry side channel for one simulated layer.
    /// Pure observation: never influences any report.
    pub(crate) fn record_layer_metrics(&self, spec: &ConvLayerSpec, report: &LayerReport) {
        let cycles = &report.cycles;
        counter_add!("sim/layers", 1);
        counter_add!("sim/cycles/total", cycles.total_cycles());
        counter_add!("sim/cycles/compute", cycles.compute_cycles);
        counter_add!("sim/cycles/weight_load", cycles.weight_load_cycles);
        counter_add!("sim/cycles/fill", cycles.fill_cycles);
        counter_add!("sim/pe_cycles/stall", cycles.stall_pe_cycles);
        counter_add!("sim/macs/int4", cycles.int4_macs);
        counter_add!("sim/macs/int8", cycles.int8_macs);
        observe!("sim/layer/stall_ratio", cycles.stall_ratio());
        observe!("sim/layer/int4_fraction", cycles.int4_fraction());
        observe!("sim/layer/sensitive_fraction", report.sensitive_fraction);
        let traffic = self.layer_traffic(spec, report.sensitive_fraction);
        counter_add!("sim/bytes/dram", traffic.dram_bytes as u64);
        counter_add!("sim/bytes/buffer", traffic.buffer_bytes as u64);
        observe!("sim/buffer/occupancy", traffic.occupancy);
    }

    /// Simulates one contiguous layer range against a shard-local virtual
    /// clock starting at zero. Layer `i` draws from its own RNG substream
    /// (`stream_seed(seed, i)`), so the output depends only on
    /// `(config, net, seed, range)` — never on which shard or thread runs
    /// it. This is the worker body of a partitioned [`SimSession`].
    pub(crate) fn simulate_shard(
        &self,
        net: &NetworkTopology,
        seed: u64,
        range: std::ops::Range<usize>,
    ) -> ShardOutput {
        let n_layers = net.layers.len().max(1);
        let mut reports = Vec::with_capacity(range.len());
        let mut retire_cycles = Vec::with_capacity(range.len());
        let mut clock: u64 = 0;
        for i in range {
            let spec = &net.layers[i];
            let depth = i as f64 / n_layers as f64;
            let synth = self.synth.for_depth(depth);
            let mut rng = XorShiftRng::new(stream_seed(seed, i as u64));
            let (masks, frac) = synth.masks_for_layer(spec, &self.config.drq, depth, &mut rng);
            let report = self.simulate_layer_quiet(spec, &masks, frac);
            clock += report.cycles.total_cycles();
            retire_cycles.push(clock);
            reports.push(report);
        }
        ShardOutput { reports, retire_cycles, total_cycles: clock }
    }

    /// Simulates a whole network, synthesizing each layer's input feature
    /// map deterministically from `seed`.
    #[deprecated(since = "0.2.0", note = "use `SimSession::new(&accel, &net).seed(s).run()`")]
    pub fn simulate_network(&self, net: &NetworkTopology, seed: u64) -> NetworkSimReport {
        SimSession::new(self, net)
            .seed(seed)
            .run()
            .expect("clean simulation cannot fail")
            .into_report()
    }

    /// Like `simulate_network`, additionally recording a span/event trace
    /// into `tracer`. The simulation result is identical to the untraced
    /// run.
    #[deprecated(
        since = "0.2.0",
        note = "use `SimSession::new(&accel, &net).seed(s).trace(t).run()`"
    )]
    pub fn simulate_network_traced(
        &self,
        net: &NetworkTopology,
        seed: u64,
        tracer: &mut Tracer,
    ) -> NetworkSimReport {
        SimSession::new(self, net)
            .seed(seed)
            .trace(tracer)
            .run()
            .expect("clean simulation cannot fail")
            .into_report()
    }

    /// Simulates `seeds.len()` independent images and summarizes the
    /// run-to-run spread.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty.
    #[deprecated(
        since = "0.2.0",
        note = "use `SimSession::new(&accel, &net).run_batch(seeds)`"
    )]
    pub fn simulate_network_batch(
        &self,
        net: &NetworkTopology,
        seeds: &[u64],
    ) -> BatchSimSummary {
        SimSession::new(self, net)
            .run_batch(seeds)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Simulates a whole network under a [`FaultPlan`], producing a
    /// reliability report.
    #[deprecated(
        since = "0.2.0",
        note = "use `SimSession::new(&accel, &net).seed(s).faults(plan).run()`"
    )]
    pub fn simulate_network_faulted(
        &self,
        net: &NetworkTopology,
        seed: u64,
        plan: &FaultPlan,
    ) -> Result<ReliabilityReport, SimError> {
        Ok(SimSession::new(self, net)
            .seed(seed)
            .faults(plan.clone())
            .run()?
            .into_reliability()
            .expect("armed fault plan yields a reliability view"))
    }

    /// Memory-traffic accounting for one layer (weight-stationary
    /// dataflow, Section VI-A). Pure: the single source of the byte counts
    /// feeding both the energy breakdown ([`Self::layer_energy`]) and the
    /// `sim/bytes/*` telemetry ([`Self::record_layer_metrics`]), so the two
    /// cannot drift apart.
    ///
    /// * DRAM: weights always INT8; activations at their packed mixed
    ///   width (4/8 bits by sensitivity) plus the region-mask bits; outputs
    ///   written back packed.
    /// * Global buffer: inputs re-streamed once per pass (row tile ×
    ///   column tile), weights read once per tile, 16-bit partial sums
    ///   spilled once per extra row tile.
    fn layer_traffic(&self, spec: &ConvLayerSpec, sensitive_fraction: f64) -> LayerTraffic {
        let f = sensitive_fraction.clamp(0.0, 1.0);
        let weight_bytes = spec.weight_count() as f64; // INT8 in DRAM
        let input_bytes = spec.input_count() as f64 * (0.5 + 0.5 * f);
        let mask_bytes = spec.input_count() as f64 / 8.0 / 64.0; // ~1 bit / 64 px region
        let output_bytes = spec.output_count() as f64 * (0.5 + 0.5 * f);
        // Weights always come from DRAM; activations only when a map spills
        // the 5 MB global buffer.
        let dram_bytes = weight_bytes
            + mask_bytes
            + crate::dram_activation_bytes(
                input_bytes,
                output_bytes,
                self.config.global_buffer_bytes as f64,
            );

        // Global-buffer traffic: each tap tile re-reads the input stream
        // (filter tiles within a tap tile replay from the cheap line
        // buffer), weights are read once, 16-bit partial sums spill per
        // extra tap tile.
        let taps = (spec.in_c / spec.groups) * spec.kh * spec.kw;
        let row_tiles = taps.div_ceil(self.config.rows) as f64;
        let buffer_bytes = input_bytes * row_tiles.min(4.0)
            + weight_bytes
            + spec.output_count() as f64 * 2.0 * row_tiles.min(4.0);

        let occupancy =
            ((input_bytes + output_bytes) / self.config.global_buffer_bytes as f64).min(1.0);
        LayerTraffic { dram_bytes, buffer_bytes, occupancy }
    }

    /// Energy accounting for one layer, built on [`Self::layer_traffic`]
    /// plus per-MAC core energies by precision. The systolic array shifts
    /// operands between neighbours, so no per-MAC register-file penalty
    /// applies (unlike the OLAccel baseline).
    fn layer_energy(
        &self,
        spec: &ConvLayerSpec,
        cycles: &LayerCycles,
        sensitive_fraction: f64,
    ) -> EnergyBreakdown {
        let traffic = self.layer_traffic(spec, sensitive_fraction);

        // Sensitivity-predictor overhead (Section IV-E claims it is
        // negligible; charging it keeps that claim checkable): with pooling
        // reuse, one accumulate per pooling window plus one compare per
        // region, per output channel, at register-file cost.
        let layer_cfg = self.config.drq.for_feature_map(spec.out_h().max(1), spec.out_w().max(1));
        let predictor_ops = crate::PredictorUnit::new(layer_cfg.region, 2)
            .extra_ops_per_channel(spec.out_h().max(1), spec.out_w().max(1))
            * spec.out_c as u64;
        let predictor_pj = predictor_ops as f64 * self.energy.rf_pj_per_access();

        EnergyBreakdown {
            dram_pj: traffic.dram_bytes * self.energy.dram_pj_per_byte(),
            buffer_pj: traffic.buffer_bytes * self.energy.buffer_pj_per_byte(),
            core_pj: self
                .energy
                .core_macs_pj(cycles.int4_macs, cycles.int8_macs, 0)
                + predictor_pj,
        }
    }

    /// The fraction of a layer's core energy spent in the sensitivity
    /// predictor — the quantitative form of Section IV-E's "negligible
    /// performance overhead" claim on the energy side.
    pub fn predictor_energy_fraction(&self, spec: &ConvLayerSpec) -> f64 {
        let layer_cfg = self.config.drq.for_feature_map(spec.out_h().max(1), spec.out_w().max(1));
        let predictor_ops = crate::PredictorUnit::new(layer_cfg.region, 2)
            .extra_ops_per_channel(spec.out_h().max(1), spec.out_w().max(1))
            * spec.out_c as u64;
        let predictor_pj = predictor_ops as f64 * self.energy.rf_pj_per_access();
        let mac_pj = self.energy.core_macs_pj(spec.macs(), 0, 0);
        predictor_pj / (predictor_pj + mac_pj).max(f64::MIN_POSITIVE)
    }

    /// Equivalent-INT8 peak throughput in MAC/cycle (for sanity checks):
    /// 3168 INT4 MACs equal 792 INT8 MACs per cycle.
    pub fn peak_macs_per_cycle(&self, precision: Precision) -> f64 {
        self.config.total_pes() as f64 / precision.int4_subops() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drq_models::zoo::{self, InputRes};

    fn sim(accel: &DrqAccelerator, net: &NetworkTopology, seed: u64) -> NetworkSimReport {
        accel.session(net).seed(seed).run().expect("clean simulation cannot fail").into_report()
    }

    fn sim_faulted(
        accel: &DrqAccelerator,
        net: &NetworkTopology,
        seed: u64,
        plan: &FaultPlan,
    ) -> Result<ReliabilityReport, SimError> {
        Ok(accel
            .session(net)
            .seed(seed)
            .faults(plan.clone())
            .run()?
            .into_reliability()
            .expect("armed plan yields a reliability view"))
    }

    #[test]
    fn paper_config_has_table2_pe_count() {
        let cfg = ArchConfig::paper_default();
        assert_eq!(cfg.total_pes(), 3168);
        assert_eq!(cfg.pages, 16);
        assert_eq!(cfg.rows, 18);
        assert_eq!(cfg.cols, 11);
    }

    #[test]
    fn lenet_simulation_is_mostly_int4() {
        let accel = DrqAccelerator::new(ArchConfig::paper_default());
        let report = sim(&accel, &zoo::lenet5(), 7);
        let frac = report.int4_fraction();
        assert!(frac > 0.6, "int4 fraction {frac}");
        assert!(report.total_cycles() > 0);
        assert!(report.total_energy().total_pj() > 0.0);
    }

    #[test]
    fn resnet18_cifar_simulates_quickly_and_sanely() {
        let accel = DrqAccelerator::new(ArchConfig::paper_default());
        let net = zoo::resnet18(InputRes::Cifar);
        let report = sim(&accel, &net, 3);
        assert_eq!(report.layers.len(), net.layers.len());
        // Compute must dominate overheads on conv-heavy networks.
        let t = report.total_layer_cycles();
        assert!(t.compute_cycles > t.weight_load_cycles);
        // Blocks of Fig. 16 all present.
        let blocks = report.block_breakdown();
        for b in ["C1", "B1", "B2", "B3", "B4"] {
            assert!(blocks.contains_key(b), "missing block {b}");
        }
    }

    #[test]
    fn lower_threshold_means_more_int8_and_more_cycles() {
        let net = zoo::resnet18(InputRes::Cifar);
        let run = |t: f32| {
            let accel = ArchConfig::builder()
                .drq(DrqConfig::new(RegionSize::new(4, 16), t))
                .build();
            sim(&accel, &net, 11)
        };
        let strict = run(2.0); // low threshold: many sensitive regions
        let loose = run(80.0); // high threshold: few sensitive regions
        assert!(strict.int4_fraction() < loose.int4_fraction());
        assert!(strict.total_cycles() > loose.total_cycles());
    }

    #[test]
    fn energy_has_all_components() {
        let accel = DrqAccelerator::new(ArchConfig::paper_default());
        let report = sim(&accel, &zoo::alexnet(InputRes::Cifar), 5);
        let e = report.total_energy();
        assert!(e.dram_pj > 0.0 && e.buffer_pj > 0.0 && e.core_pj > 0.0);
    }

    #[test]
    fn peak_throughput_scaling() {
        let accel = DrqAccelerator::new(ArchConfig::paper_default());
        assert_eq!(accel.peak_macs_per_cycle(Precision::Int4), 3168.0);
        assert_eq!(accel.peak_macs_per_cycle(Precision::Int8), 792.0);
    }

    #[test]
    fn geometry_override_reorganizes_the_array() {
        let builder = ArchConfig::builder().geometry(8, 18, 22);
        assert_eq!(builder.config().total_pes(), 3168);
        let net = zoo::resnet18(InputRes::Cifar);
        let a = sim(&DrqAccelerator::new(ArchConfig::paper_default()), &net, 3);
        let b = sim(&builder.build(), &net, 3);
        // Same PE count, different tiling: cycle counts differ but stay in
        // the same regime (within 2x).
        let (ca, cb) = (a.total_cycles() as f64, b.total_cycles() as f64);
        assert!(ca / cb < 2.0 && cb / ca < 2.0, "{ca} vs {cb}");
    }

    #[test]
    fn predictor_energy_is_negligible() {
        // Section IV-E: the added prediction step carries negligible
        // overhead. Quantified: < 2% of even the all-INT4 MAC energy for a
        // representative conv layer.
        let accel = DrqAccelerator::new(ArchConfig::paper_default());
        let spec = drq_models::ConvLayerSpec::conv("c", "B1", 64, 56, 56, 64, 3, 3, 1, 1);
        let frac = accel.predictor_energy_fraction(&spec);
        assert!(frac < 0.02, "predictor energy fraction {frac}");
        assert!(frac > 0.0);
    }

    #[test]
    fn batch_summary_reflects_input_variation() {
        let accel = DrqAccelerator::new(ArchConfig::paper_default());
        let net = zoo::lenet5();
        let batch = accel.session(&net).run_batch(&[1, 2, 3, 4, 5]).unwrap();
        assert_eq!(batch.images, 5);
        assert!(batch.min_cycles <= batch.mean_cycles as u64 + 1);
        assert!(batch.max_cycles >= batch.mean_cycles as u64);
        // Dynamic quantization: different images, different cycle counts.
        assert!(batch.stddev_cycles > 0.0);
        assert!(batch.cycle_cv() < 0.5, "spread implausibly large");
        assert!((0.0..=1.0).contains(&batch.mean_int4_fraction));
    }

    #[test]
    fn reports_are_deterministic_per_seed() {
        let accel = DrqAccelerator::new(ArchConfig::paper_default());
        let net = zoo::lenet5();
        let a = sim(&accel, &net, 9);
        let b = sim(&accel, &net, 9);
        assert_eq!(a, b);
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_sim_methods_delegate_to_session() {
        // The four deprecated `simulate_network*` variants are thin shims
        // over SimSession — byte-identical results, so downstream code can
        // migrate at leisure.
        let accel = ArchConfig::builder().build();
        let net = zoo::lenet5();
        assert_eq!(accel.simulate_network(&net, 5), sim(&accel, &net, 5));
        let mut shim_t = drq_telemetry::Tracer::new();
        let mut sess_t = drq_telemetry::Tracer::new();
        let shim = accel.simulate_network_traced(&net, 5, &mut shim_t);
        let sess = accel
            .session(&net)
            .seed(5)
            .trace(&mut sess_t)
            .run()
            .unwrap()
            .into_report();
        assert_eq!(shim, sess);
        assert_eq!(shim_t.to_jsonl(), sess_t.to_jsonl());
        assert_eq!(
            accel.simulate_network_batch(&net, &[1, 2]),
            accel.session(&net).run_batch(&[1, 2]).unwrap()
        );
        let plan = FaultPlan::smoke();
        assert_eq!(
            accel.simulate_network_faulted(&net, 5, &plan).unwrap(),
            sim_faulted(&accel, &net, 5, &plan).unwrap()
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_builder() {
        let drq = DrqConfig::new(RegionSize::new(8, 8), 30.0);
        let shim = DrqAccelerator::new(
            ArchConfig::paper_default().with_drq(drq).with_geometry(8, 18, 22),
        )
        .with_energy_model(EnergyModel::tsmc45());
        let built = ArchConfig::builder()
            .drq(drq)
            .geometry(8, 18, 22)
            .energy_model(EnergyModel::tsmc45())
            .build();
        assert_eq!(shim, built);
    }

    #[test]
    fn traced_run_matches_untraced_and_covers_all_layers() {
        let accel = ArchConfig::builder().build();
        let net = zoo::lenet5();
        let mut tracer = drq_telemetry::Tracer::new();
        let traced = accel
            .session(&net)
            .seed(4)
            .trace(&mut tracer)
            .run()
            .unwrap()
            .into_report();
        let plain = sim(&accel, &net, 4);
        assert_eq!(traced, plain);
        let events = tracer.events();
        let layer_events =
            events.iter().filter(|e| e.name.starts_with("layer/")).count();
        assert_eq!(layer_events, net.layers.len());
        assert_eq!(events.first().map(|e| e.kind.as_str()), Some("span_begin"));
        assert_eq!(events.last().map(|e| e.kind.as_str()), Some("span_end"));
        assert_eq!(events.last().unwrap().cycle, plain.total_cycles());
    }

    #[test]
    fn empty_fault_plan_is_byte_identical_to_plain_run() {
        let accel = ArchConfig::builder().build();
        let net = zoo::lenet5();
        let plain = sim(&accel, &net, 42);
        let faulted =
            sim_faulted(&accel, &net, 42, &FaultPlan::empty()).expect("empty plan is valid");
        assert_eq!(faulted.report, plain);
        assert_eq!(
            faulted.report.to_report().to_json_string(),
            plain.to_report().to_json_string()
        );
        assert_eq!(faulted.counters.total(), 0);
        assert_eq!(faulted.baseline_cycles, faulted.degraded_cycles);
        assert_eq!(faulted.slowdown(), 1.0);
        assert_eq!(faulted.extra_dram_pj, 0.0);
    }

    #[test]
    fn faulted_network_runs_replay_and_degrade_monotonically() {
        use crate::faults::{FaultRule, FaultSite};
        let accel = ArchConfig::builder().build();
        let net = zoo::lenet5();
        let plan = FaultPlan {
            seed: 7,
            rules: vec![
                FaultRule::new(FaultSite::StallCycle, 1e-3),
                FaultRule::new(FaultSite::DramBurstDrop, 1e-2),
                FaultRule::new(FaultSite::PeAccumulator, 1e-6),
            ],
        };
        let a = sim_faulted(&accel, &net, 42, &plan).unwrap();
        let b = sim_faulted(&accel, &net, 42, &plan).unwrap();
        assert_eq!(a, b);
        // The baseline embedded report is untouched by injection.
        assert_eq!(a.report, sim(&accel, &net, 42));
        assert!(a.counters.stall_cycle > 0, "stall rate should fire on lenet5");
        assert_eq!(a.degraded_cycles, a.baseline_cycles + a.counters.stall_cycle);
        assert!(a.slowdown() > 1.0);
        assert!(a.counters.dram_burst_drop > 0);
        assert!(a.extra_dram_pj > 0.0);
    }

    #[test]
    fn reliability_report_schema_carries_fault_fields() {
        let accel = ArchConfig::builder().build();
        let net = zoo::lenet5();
        let r = sim_faulted(&accel, &net, 42, &FaultPlan::smoke()).unwrap();
        let rep = r.to_report();
        assert_eq!(rep.kind(), "reliability");
        assert_eq!(rep.get("baseline_cycles").and_then(Json::as_u64), Some(r.baseline_cycles));
        assert_eq!(rep.get("degraded_cycles").and_then(Json::as_u64), Some(r.degraded_cycles));
        assert_eq!(rep.get("slowdown").and_then(Json::as_f64), Some(r.slowdown()));
        assert_eq!(rep.get("fault_seed").and_then(Json::as_u64), Some(r.plan.seed));
        let faults = rep.get("faults").expect("faults object");
        assert_eq!(faults.get("total").and_then(Json::as_u64), Some(r.counters.total()));
        match rep.get("rules") {
            Some(Json::Array(rules)) => assert_eq!(rules.len(), r.plan.rules.len()),
            other => panic!("rules not an array: {other:?}"),
        }
    }

    #[test]
    fn layer_targeted_rules_only_fire_in_that_layer() {
        use crate::faults::{FaultRule, FaultSite};
        let accel = ArchConfig::builder().build();
        let net = zoo::lenet5();
        let first = net.layers[0].name.clone();
        let rule = || FaultRule::new(FaultSite::StallCycle, 0.05);
        let plan = |r: FaultRule| FaultPlan { seed: 3, rules: vec![r] };
        let all = sim_faulted(&accel, &net, 42, &plan(rule())).unwrap();
        let one = sim_faulted(&accel, &net, 42, &plan(rule().with_layer(&first))).unwrap();
        let none =
            sim_faulted(&accel, &net, 42, &plan(rule().with_layer("no_such_layer"))).unwrap();
        assert!(one.counters.stall_cycle > 0);
        assert!(one.counters.stall_cycle < all.counters.stall_cycle);
        assert_eq!(none.counters.stall_cycle, 0);
        assert_eq!(none.degraded_cycles, none.baseline_cycles);
    }

    #[test]
    fn enabling_metrics_does_not_change_results() {
        let accel = ArchConfig::builder().build();
        let net = zoo::lenet5();
        let baseline = sim(&accel, &net, 21);
        drq_telemetry::enable();
        let recorded = sim(&accel, &net, 21);
        let snap = drq_telemetry::snapshot();
        drq_telemetry::disable();
        drq_telemetry::reset();
        assert_eq!(baseline, recorded);
        // The side channel did observe the run.
        assert!(snap.counter("sim/cycles/total") >= baseline.total_cycles());
        assert!(snap.counter("sim/layers") >= net.layers.len() as u64);
    }
}
