//! Deterministic fault injection for the cycle-accurate simulator.
//!
//! The DRQ story is that trading precision for speed does not corrupt
//! results; a robustness study needs the converse experiment — what happens
//! when the *hardware model* misbehaves. This module provides a seeded,
//! replayable fault layer:
//!
//! * single-bit flips in PE accumulators and weight/activation registers
//!   ([`FaultSite::PeAccumulator`], [`FaultSite::PeWeightRegister`],
//!   [`FaultSite::PeActivationRegister`]),
//! * stuck-at-1 bits in packed line-buffer nibbles
//!   ([`FaultSite::LineBufferStuckAt`]),
//! * dropped / duplicated DRAM bursts ([`FaultSite::DramBurstDrop`],
//!   [`FaultSite::DramBurstDuplicate`]),
//! * spurious stall cycles ([`FaultSite::StallCycle`]).
//!
//! A [`FaultPlan`] (seed + site-targeted rate rules, JSON-serializable)
//! configures a run; a [`FaultInjector`] draws fault events from the plan's
//! own `XorShiftRng` stream — the same generator the testkit uses — so a
//! faulted run is a pure function of `(inputs, plan)` and replays exactly
//! on any thread or shard count. An **empty plan is zero-cost**: the
//! un-faulted code paths never consult the injector, and a
//! [`crate::SimSession`] armed with one short-circuits to the ordinary
//! simulation, byte-identical output included.
//!
//! A plan whose `seed` is `0` does not pin its own stream: the session
//! derives a fault seed from the session seed via a reserved stream index
//! (see [`crate::partition::stream_seed`]), so one seed governs the whole
//! run. Any non-zero plan seed is left untouched, which keeps archived
//! plan files replaying bit-for-bit regardless of the session seed.

use crate::SimError;
use drq_telemetry::Json;
use drq_tensor::XorShiftRng;

/// Where in the modeled hardware a fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Bit flip in a column accumulator (one (column, step) partial sum).
    PeAccumulator,
    /// Bit flip in a PE's weight register for one MAC.
    PeWeightRegister,
    /// Bit flip in a PE's feature register for one MAC.
    PeActivationRegister,
    /// Stuck-at-1 bit in a packed line-buffer nibble.
    LineBufferStuckAt,
    /// A DRAM burst is dropped and must be refetched.
    DramBurstDrop,
    /// A DRAM burst is delivered twice.
    DramBurstDuplicate,
    /// A spurious one-cycle pipeline stall.
    StallCycle,
}

impl FaultSite {
    /// Every site, in schema order.
    pub const ALL: [FaultSite; 7] = [
        FaultSite::PeAccumulator,
        FaultSite::PeWeightRegister,
        FaultSite::PeActivationRegister,
        FaultSite::LineBufferStuckAt,
        FaultSite::DramBurstDrop,
        FaultSite::DramBurstDuplicate,
        FaultSite::StallCycle,
    ];

    /// The snake-case schema name used in fault-plan JSON and reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::PeAccumulator => "pe_accumulator",
            FaultSite::PeWeightRegister => "pe_weight_register",
            FaultSite::PeActivationRegister => "pe_activation_register",
            FaultSite::LineBufferStuckAt => "line_buffer_stuck_at",
            FaultSite::DramBurstDrop => "dram_burst_drop",
            FaultSite::DramBurstDuplicate => "dram_burst_duplicate",
            FaultSite::StallCycle => "stall_cycle",
        }
    }

    /// Parses a schema name back into a site.
    pub fn from_name(name: &str) -> Option<FaultSite> {
        FaultSite::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Width in bits of the word this site corrupts (bit indices in rules
    /// must stay below this).
    pub fn bit_width(self) -> u32 {
        match self {
            FaultSite::PeAccumulator => 64,
            FaultSite::PeWeightRegister | FaultSite::PeActivationRegister => 8,
            FaultSite::LineBufferStuckAt => 4,
            // Burst and stall faults are events, not bit corruptions.
            FaultSite::DramBurstDrop
            | FaultSite::DramBurstDuplicate
            | FaultSite::StallCycle => 1,
        }
    }
}

/// One rule of a fault plan: a site, a per-opportunity rate, and optional
/// targeting (fixed bit, layer-name filter, event cap).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// The hardware site this rule attacks.
    pub site: FaultSite,
    /// Probability that one opportunity (one MAC, one nibble, one burst,
    /// one cycle) faults, in `[0, 1]`.
    pub rate: f64,
    /// Fixed bit index to corrupt; `None` draws a bit uniformly from the
    /// site's word width per event.
    pub bit: Option<u32>,
    /// Restrict the rule to a layer name (network-level simulation only;
    /// the exact array simulator has no layer identity and applies every
    /// rule).
    pub layer: Option<String>,
    /// Stop firing after this many events (`None` = unbounded).
    pub max_events: Option<u64>,
}

impl FaultRule {
    /// A rule attacking `site` at `rate` with no further targeting.
    pub fn new(site: FaultSite, rate: f64) -> Self {
        Self { site, rate, bit: None, layer: None, max_events: None }
    }

    /// Pins the corrupted bit index.
    pub fn with_bit(mut self, bit: u32) -> Self {
        self.bit = Some(bit);
        self
    }

    /// Restricts the rule to one layer name.
    pub fn with_layer(mut self, layer: impl Into<String>) -> Self {
        self.layer = Some(layer.into());
        self
    }

    /// Caps the number of events the rule may fire.
    pub fn with_max_events(mut self, n: u64) -> Self {
        self.max_events = Some(n);
        self
    }

    fn to_json(&self) -> Json {
        let mut entries = vec![
            ("site".to_string(), Json::str(self.site.name())),
            ("rate".to_string(), Json::F64(self.rate)),
        ];
        if let Some(bit) = self.bit {
            entries.push(("bit".to_string(), Json::U64(bit as u64)));
        }
        if let Some(layer) = &self.layer {
            entries.push(("layer".to_string(), Json::str(layer)));
        }
        if let Some(n) = self.max_events {
            entries.push(("max_events".to_string(), Json::U64(n)));
        }
        Json::Object(entries)
    }

    fn from_json(v: &Json) -> Result<FaultRule, SimError> {
        let bad = |detail: String| SimError::FaultPlan { detail };
        let entries = match v {
            Json::Object(entries) => entries,
            _ => return Err(bad("each rule must be an object".into())),
        };
        for (key, _) in entries {
            if !matches!(key.as_str(), "site" | "rate" | "bit" | "layer" | "max_events") {
                return Err(bad(format!("unknown rule key '{key}'")));
            }
        }
        let site_name = v
            .get("site")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("rule is missing a 'site' string".into()))?;
        let site = FaultSite::from_name(site_name)
            .ok_or_else(|| bad(format!("unknown fault site '{site_name}'")))?;
        let rate = v
            .get("rate")
            .and_then(Json::as_f64)
            .ok_or_else(|| bad("rule is missing a numeric 'rate'".into()))?;
        let bit = match v.get("bit") {
            None | Some(Json::Null) => None,
            Some(b) => Some(
                b.as_u64()
                    .and_then(|b| u32::try_from(b).ok())
                    .ok_or_else(|| bad("'bit' must be a small non-negative integer".into()))?,
            ),
        };
        let layer = match v.get("layer") {
            None | Some(Json::Null) => None,
            Some(l) => Some(
                l.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| bad("'layer' must be a string".into()))?,
            ),
        };
        let max_events = match v.get("max_events") {
            None | Some(Json::Null) => None,
            Some(n) => Some(
                n.as_u64()
                    .ok_or_else(|| bad("'max_events' must be a non-negative integer".into()))?,
            ),
        };
        Ok(FaultRule { site, rate, bit, layer, max_events })
    }
}

/// A complete fault-injection configuration: an RNG seed plus rules.
///
/// Serialized as `{"seed": <u64>, "rules": [<rule>, ...]}` where each rule
/// is `{"site": <name>, "rate": <0..1>, "bit"?: <u32>, "layer"?: <string>,
/// "max_events"?: <u64>}`.
///
/// # Examples
///
/// ```
/// use drq_sim::{FaultPlan, FaultRule, FaultSite};
///
/// let plan = FaultPlan::parse(
///     r#"{"seed": 7, "rules": [{"site": "pe_accumulator", "rate": 1.0,
///         "bit": 3, "max_events": 1}]}"#,
/// )
/// .unwrap();
/// assert_eq!(plan.seed, 7);
/// assert_eq!(plan.rules[0].site, FaultSite::PeAccumulator);
/// assert!(FaultPlan::empty().is_empty());
/// # let _ = FaultRule::new(FaultSite::StallCycle, 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault-event RNG stream (independent of the simulation's
    /// feature-map seed).
    pub seed: u64,
    /// The rules, applied independently per opportunity.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// The no-fault plan. Runs configured with it are byte-identical to
    /// unfaulted runs.
    pub fn empty() -> Self {
        Self { seed: 0, rules: Vec::new() }
    }

    /// A small fixed plan for smoke testing (used by `drq faults` and CI):
    /// sparse stall noise plus exactly one accumulator bit flip. Rates are
    /// chosen so each rule fires a handful of times even on a network as
    /// small as LeNet-5 — a smoke run that injects nothing proves nothing.
    pub fn smoke() -> Self {
        Self {
            seed: 0xFA17,
            rules: vec![
                FaultRule::new(FaultSite::StallCycle, 5e-3),
                FaultRule::new(FaultSite::PeAccumulator, 1e-4)
                    .with_bit(17)
                    .with_max_events(1),
                FaultRule::new(FaultSite::DramBurstDrop, 5e-3),
            ],
        }
    }

    /// Whether the plan has no rules (every rule list is consulted lazily,
    /// so an empty plan injects nothing and costs nothing).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Checks every rule: rates must be finite and in `[0, 1]`, fixed bits
    /// must fit the site's word width.
    pub fn validate(&self) -> Result<(), SimError> {
        for (i, r) in self.rules.iter().enumerate() {
            if !r.rate.is_finite() || !(0.0..=1.0).contains(&r.rate) {
                return Err(SimError::FaultPlan {
                    detail: format!(
                        "rule {i} ({}): rate {} outside [0, 1]",
                        r.site.name(),
                        r.rate
                    ),
                });
            }
            if let Some(bit) = r.bit {
                if bit >= r.site.bit_width() {
                    return Err(SimError::FaultPlan {
                        detail: format!(
                            "rule {i} ({}): bit {bit} exceeds the site's {}-bit word",
                            r.site.name(),
                            r.site.bit_width()
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Serializes the plan to its JSON value.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seed", Json::U64(self.seed)),
            ("rules", Json::arr(self.rules.iter().map(FaultRule::to_json))),
        ])
    }

    /// Builds a validated plan from a parsed JSON value.
    pub fn from_json(v: &Json) -> Result<FaultPlan, SimError> {
        let bad = |detail: String| SimError::FaultPlan { detail };
        let entries = match v {
            Json::Object(entries) => entries,
            _ => return Err(bad("fault plan must be a JSON object".into())),
        };
        for (key, _) in entries {
            if !matches!(key.as_str(), "seed" | "rules") {
                return Err(bad(format!("unknown fault-plan key '{key}'")));
            }
        }
        let seed = match v.get("seed") {
            None => 0,
            Some(s) => s
                .as_u64()
                .ok_or_else(|| bad("'seed' must be a non-negative integer".into()))?,
        };
        let rules = match v.get("rules") {
            None => Vec::new(),
            Some(Json::Array(items)) => items
                .iter()
                .map(FaultRule::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err(bad("'rules' must be an array".into())),
        };
        let plan = FaultPlan { seed, rules };
        plan.validate()?;
        Ok(plan)
    }

    /// Parses and validates a plan from JSON text.
    pub fn parse(text: &str) -> Result<FaultPlan, SimError> {
        let v = Json::parse(text).map_err(|e| SimError::FaultPlan { detail: e.to_string() })?;
        FaultPlan::from_json(&v)
    }
}

/// Per-site event counts accumulated by a [`FaultInjector`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Accumulator bit flips.
    pub pe_accumulator: u64,
    /// Weight-register bit flips.
    pub pe_weight_register: u64,
    /// Feature-register bit flips.
    pub pe_activation_register: u64,
    /// Stuck-at line-buffer nibbles.
    pub line_buffer_stuck_at: u64,
    /// Dropped DRAM bursts.
    pub dram_burst_drop: u64,
    /// Duplicated DRAM bursts.
    pub dram_burst_duplicate: u64,
    /// Spurious stall cycles.
    pub stall_cycle: u64,
}

impl FaultCounters {
    fn slot(&mut self, site: FaultSite) -> &mut u64 {
        match site {
            FaultSite::PeAccumulator => &mut self.pe_accumulator,
            FaultSite::PeWeightRegister => &mut self.pe_weight_register,
            FaultSite::PeActivationRegister => &mut self.pe_activation_register,
            FaultSite::LineBufferStuckAt => &mut self.line_buffer_stuck_at,
            FaultSite::DramBurstDrop => &mut self.dram_burst_drop,
            FaultSite::DramBurstDuplicate => &mut self.dram_burst_duplicate,
            FaultSite::StallCycle => &mut self.stall_cycle,
        }
    }

    /// This site's event count.
    pub fn count(&self, site: FaultSite) -> u64 {
        match site {
            FaultSite::PeAccumulator => self.pe_accumulator,
            FaultSite::PeWeightRegister => self.pe_weight_register,
            FaultSite::PeActivationRegister => self.pe_activation_register,
            FaultSite::LineBufferStuckAt => self.line_buffer_stuck_at,
            FaultSite::DramBurstDrop => self.dram_burst_drop,
            FaultSite::DramBurstDuplicate => self.dram_burst_duplicate,
            FaultSite::StallCycle => self.stall_cycle,
        }
    }

    /// Total events across all sites.
    pub fn total(&self) -> u64 {
        FaultSite::ALL.into_iter().map(|s| self.count(s)).sum()
    }

    /// Serializes the counters as a schema object (site name → count).
    pub fn to_json(&self) -> Json {
        let mut entries: Vec<(String, Json)> = FaultSite::ALL
            .into_iter()
            .map(|s| (s.name().to_string(), Json::U64(self.count(s))))
            .collect();
        entries.push(("total".to_string(), Json::U64(self.total())));
        Json::Object(entries)
    }
}

struct RuleState {
    rule: FaultRule,
    fired: u64,
}

impl RuleState {
    fn exhausted(&self) -> bool {
        matches!(self.rule.max_events, Some(cap) if self.fired >= cap)
    }

    fn remaining(&self) -> u64 {
        match self.rule.max_events {
            Some(cap) => cap.saturating_sub(self.fired),
            None => u64::MAX,
        }
    }
}

/// Draws fault events from a [`FaultPlan`]'s seeded RNG stream and counts
/// what fired.
///
/// Determinism contract: event draws depend only on the plan and the
/// (deterministic, sequential) order of injection opportunities, never on
/// wall-clock time or thread count.
pub struct FaultInjector {
    rng: XorShiftRng,
    rules: Vec<RuleState>,
    counters: FaultCounters,
}

impl FaultInjector {
    /// Creates an injector after validating the plan.
    pub fn new(plan: &FaultPlan) -> Result<FaultInjector, SimError> {
        plan.validate()?;
        Ok(FaultInjector {
            rng: XorShiftRng::new(plan.seed),
            rules: plan
                .rules
                .iter()
                .map(|r| RuleState { rule: r.clone(), fired: 0 })
                .collect(),
            counters: FaultCounters::default(),
        })
    }

    /// Whether any rule targets `site` (lets hot paths skip fault plumbing
    /// entirely when a site is unused).
    pub fn targets(&self, site: FaultSite) -> bool {
        self.rules.iter().any(|r| r.rule.site == site && !r.exhausted())
    }

    /// Event counts so far.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// One injection opportunity at `site` (optionally inside layer
    /// `layer`): returns the bit index to corrupt if a rule fires.
    ///
    /// Each matching, non-exhausted rule consumes exactly one RNG draw, so
    /// replaying the same plan over the same opportunity sequence
    /// reproduces the same events bit-for-bit.
    pub fn draw_bit(&mut self, site: FaultSite, layer: Option<&str>) -> Option<u32> {
        let mut hit: Option<Option<u32>> = None;
        let mut fired = false;
        for rs in &mut self.rules {
            if rs.rule.site != site || rs.exhausted() {
                continue;
            }
            if let (Some(want), Some(have)) = (&rs.rule.layer, layer) {
                if want != have {
                    continue;
                }
            } else if rs.rule.layer.is_some() && layer.is_none() {
                continue;
            }
            // Always burn the draw — keeps the stream aligned whether or
            // not this opportunity fires.
            let roll = self.rng.next_f64();
            if roll < rs.rule.rate && hit.is_none() {
                rs.fired += 1;
                hit = Some(rs.rule.bit);
                fired = true;
            }
        }
        if fired {
            *self.counters.slot(site) += 1;
        }
        hit.map(|bit| match bit {
            Some(b) => b,
            None => self.rng.next_below(site.bit_width() as usize) as u32,
        })
    }

    /// Bulk sampling for `opportunities` independent chances at `site`
    /// (network-level simulation, where per-MAC draws would be absurd).
    /// Returns the number of events, using the expected count plus one
    /// Bernoulli draw on the fractional part; caps respect `max_events`.
    pub fn draw_count(
        &mut self,
        site: FaultSite,
        layer: Option<&str>,
        opportunities: u64,
    ) -> u64 {
        let mut events = 0u64;
        for rs in &mut self.rules {
            if rs.rule.site != site || rs.exhausted() || opportunities == 0 {
                continue;
            }
            if let (Some(want), Some(have)) = (&rs.rule.layer, layer) {
                if want != have {
                    continue;
                }
            } else if rs.rule.layer.is_some() && layer.is_none() {
                continue;
            }
            let expected = rs.rule.rate * opportunities as f64;
            let whole = expected.floor();
            let frac = expected - whole;
            // One draw per (rule, bulk opportunity set), always consumed.
            let extra = u64::from(self.rng.next_f64() < frac);
            let n = (whole as u64 + extra)
                .min(opportunities)
                .min(rs.remaining());
            rs.fired += n;
            events += n;
        }
        *self.counters.slot(site) += events;
        events
    }
}

/// Flips `bit` (0..8) of an 8-bit signed value held in an `i32`, staying in
/// the signed 8-bit domain.
pub(crate) fn flip_bit8(v: i32, bit: u32) -> i32 {
    debug_assert!(bit < 8, "bit {bit} outside the 8-bit word");
    ((v as i8) ^ (1i8 << bit)) as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_json_round_trips() {
        let plan = FaultPlan {
            seed: 99,
            rules: vec![
                FaultRule::new(FaultSite::PeAccumulator, 0.25)
                    .with_bit(5)
                    .with_layer("conv1")
                    .with_max_events(3),
                FaultRule::new(FaultSite::StallCycle, 0.001),
            ],
        };
        let text = plan.to_json().to_string();
        assert_eq!(FaultPlan::parse(&text).unwrap(), plan);
    }

    #[test]
    fn plan_validation_rejects_bad_rates_and_bits() {
        for bad in [
            r#"{"rules": [{"site": "stall_cycle", "rate": 1.5}]}"#,
            r#"{"rules": [{"site": "stall_cycle", "rate": -0.1}]}"#,
            r#"{"rules": [{"site": "pe_weight_register", "rate": 0.1, "bit": 8}]}"#,
            r#"{"rules": [{"site": "warp_core_breach", "rate": 0.1}]}"#,
            r#"{"rules": [{"site": "stall_cycle"}]}"#,
            r#"{"rules": [{"site": "stall_cycle", "rate": 0.1, "typo": 1}]}"#,
            r#"{"bogus_key": 1}"#,
            r#"not json"#,
        ] {
            let err = FaultPlan::parse(bad).expect_err(bad);
            assert!(matches!(err, SimError::FaultPlan { .. }), "{bad}");
        }
    }

    #[test]
    fn injector_is_deterministic() {
        let plan = FaultPlan {
            seed: 7,
            rules: vec![FaultRule::new(FaultSite::PeWeightRegister, 0.3)],
        };
        let run = || {
            let mut inj = FaultInjector::new(&plan).unwrap();
            (0..200)
                .map(|_| inj.draw_bit(FaultSite::PeWeightRegister, None))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn max_events_caps_firing() {
        let plan = FaultPlan {
            seed: 1,
            rules: vec![FaultRule::new(FaultSite::PeAccumulator, 1.0).with_max_events(2)],
        };
        let mut inj = FaultInjector::new(&plan).unwrap();
        let fired = (0..10)
            .filter(|_| inj.draw_bit(FaultSite::PeAccumulator, None).is_some())
            .count();
        assert_eq!(fired, 2);
        assert_eq!(inj.counters().pe_accumulator, 2);
        assert!(!inj.targets(FaultSite::PeAccumulator));
    }

    #[test]
    fn layer_filters_apply() {
        let plan = FaultPlan {
            seed: 1,
            rules: vec![FaultRule::new(FaultSite::StallCycle, 1.0).with_layer("conv2")],
        };
        let mut inj = FaultInjector::new(&plan).unwrap();
        assert_eq!(inj.draw_count(FaultSite::StallCycle, Some("conv1"), 100), 0);
        assert_eq!(inj.draw_count(FaultSite::StallCycle, None, 100), 0);
        assert_eq!(inj.draw_count(FaultSite::StallCycle, Some("conv2"), 100), 100);
    }

    #[test]
    fn bulk_count_tracks_expectation() {
        let plan = FaultPlan {
            seed: 3,
            rules: vec![FaultRule::new(FaultSite::DramBurstDrop, 0.01)],
        };
        let mut inj = FaultInjector::new(&plan).unwrap();
        let n = inj.draw_count(FaultSite::DramBurstDrop, None, 1_000_000);
        assert!((9_000..=11_000).contains(&n), "{n}");
        assert_eq!(inj.counters().dram_burst_drop, n);
        assert_eq!(inj.counters().total(), n);
    }

    #[test]
    fn fixed_bit_is_respected_and_random_bits_fit_width() {
        let plan = FaultPlan {
            seed: 5,
            rules: vec![FaultRule::new(FaultSite::PeActivationRegister, 1.0).with_bit(6)],
        };
        let mut inj = FaultInjector::new(&plan).unwrap();
        assert_eq!(inj.draw_bit(FaultSite::PeActivationRegister, None), Some(6));

        let plan = FaultPlan {
            seed: 5,
            rules: vec![FaultRule::new(FaultSite::LineBufferStuckAt, 1.0)],
        };
        let mut inj = FaultInjector::new(&plan).unwrap();
        for _ in 0..50 {
            let bit = inj.draw_bit(FaultSite::LineBufferStuckAt, None).unwrap();
            assert!(bit < 4, "{bit}");
        }
    }

    #[test]
    fn flip_bit8_stays_in_domain() {
        for v in -128..=127 {
            for bit in 0..8 {
                let flipped = flip_bit8(v, bit);
                assert!((-128..=127).contains(&flipped), "v={v} bit={bit}");
                assert_eq!(flip_bit8(flipped, bit), v);
            }
        }
    }

    #[test]
    fn smoke_plan_is_valid_and_nonempty() {
        let plan = FaultPlan::smoke();
        assert!(plan.validate().is_ok());
        assert!(!plan.is_empty());
    }

    #[test]
    fn counters_serialize_every_site() {
        let c = FaultCounters { stall_cycle: 4, ..Default::default() };
        let j = c.to_json();
        for site in FaultSite::ALL {
            assert!(j.get(site.name()).is_some(), "{}", site.name());
        }
        assert_eq!(j.get("total").and_then(Json::as_u64), Some(4));
    }
}
