//! Output buffer and accumulation unit (Section IV-D).
//!
//! The output buffer sits between the convolution array and the predictor.
//! It (1) accumulates partial sums in place across tap tiles and sub-kernels,
//! (2) double-buffers so the "activation–pooling–prediction" pipeline runs
//! in parallel with the next tile's convolution, and (3) realizes large
//! kernels (5×5, 7×7) by splitting them into sub-kernels sized for the
//! array and accumulating their partial results — "a common practice widely
//! used in systolic array based NN accelerators".

use crate::SimError;

/// How a `k×k` kernel splits into array-sized sub-kernels.
///
/// The DRQ array prioritizes 3×3 kernels; a larger kernel of extent `k`
/// splits into `ceil(k/3)²` sub-kernels of extent ≤ 3, each launched
/// separately and accumulated.
///
/// # Examples
///
/// ```
/// use drq_sim::SubKernelPlan;
///
/// let plan = SubKernelPlan::for_kernel(7, 7);
/// assert_eq!(plan.sub_kernel_count(), 9); // 3x3 grid of (3,3,1)-wide tiles
/// assert_eq!(plan.total_taps(), 49);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubKernelPlan {
    kh: usize,
    kw: usize,
    /// Extents of the row splits (e.g. 7 → [3, 3, 1]).
    row_splits: Vec<usize>,
    /// Extents of the column splits.
    col_splits: Vec<usize>,
}

fn split_extent(k: usize, max: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut rest = k;
    while rest > 0 {
        let step = rest.min(max);
        out.push(step);
        rest -= step;
    }
    out
}

impl SubKernelPlan {
    /// The native sub-kernel extent the array prioritizes.
    pub const NATIVE_EXTENT: usize = 3;

    /// Plans the split of a `kh×kw` kernel.
    ///
    /// # Panics
    ///
    /// Panics if either extent is zero.
    pub fn for_kernel(kh: usize, kw: usize) -> Self {
        Self::try_for_kernel(kh, kw).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible counterpart of [`SubKernelPlan::for_kernel`].
    pub fn try_for_kernel(kh: usize, kw: usize) -> Result<Self, SimError> {
        if kh == 0 || kw == 0 {
            return Err(SimError::InvalidGeometry {
                context: "sub-kernel plan",
                detail: format!("kernel extents must be positive (got {kh}x{kw})"),
            });
        }
        Ok(Self {
            kh,
            kw,
            row_splits: split_extent(kh, Self::NATIVE_EXTENT),
            col_splits: split_extent(kw, Self::NATIVE_EXTENT),
        })
    }

    /// Number of sub-kernel launches.
    pub fn sub_kernel_count(&self) -> usize {
        self.row_splits.len() * self.col_splits.len()
    }

    /// Row-axis split extents (e.g. 7 → `[3, 3, 1]`).
    pub fn row_splits(&self) -> &[usize] {
        &self.row_splits
    }

    /// Column-axis split extents.
    pub fn col_splits(&self) -> &[usize] {
        &self.col_splits
    }

    /// Sub-kernel extents in launch order `(rows, cols)`.
    pub fn sub_kernels(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.sub_kernel_count());
        for &r in &self.row_splits {
            for &c in &self.col_splits {
                out.push((r, c));
            }
        }
        out
    }

    /// Total taps across the split (must equal `kh*kw`).
    pub fn total_taps(&self) -> usize {
        self.sub_kernels().iter().map(|&(r, c)| r * c).sum()
    }

    /// Extra accumulation operations per output element: one add per
    /// sub-kernel beyond the first.
    pub fn extra_accumulations(&self) -> usize {
        self.sub_kernel_count().saturating_sub(1)
    }
}

/// The dual-buffered output/accumulation unit.
///
/// One bank accumulates the tile currently being convolved while the other
/// drains through activation → pooling → prediction; [`OutputBuffer::swap`]
/// flips the roles at tile boundaries.
///
/// # Examples
///
/// ```
/// use drq_sim::OutputBuffer;
///
/// let mut ob = OutputBuffer::new(4);
/// ob.accumulate(&[1, 2, 3, 4]);
/// ob.accumulate(&[10, 20, 30, 40]);
/// ob.swap();
/// assert_eq!(ob.drain(), &[11, 22, 33, 44]);
/// // The fresh accumulation bank starts clean.
/// ob.accumulate(&[5, 5, 5, 5]);
/// ob.swap();
/// assert_eq!(ob.drain(), &[5, 5, 5, 5]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputBuffer {
    banks: [Vec<i64>; 2],
    active: usize,
    accumulate_ops: u64,
}

impl OutputBuffer {
    /// Creates a buffer with two banks of `size` partial sums each.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> Self {
        Self::try_new(size).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible counterpart of [`OutputBuffer::new`].
    pub fn try_new(size: usize) -> Result<Self, SimError> {
        if size == 0 {
            return Err(SimError::InvalidGeometry {
                context: "output buffer",
                detail: "output buffer must have capacity".into(),
            });
        }
        Ok(Self { banks: [vec![0; size], vec![0; size]], active: 0, accumulate_ops: 0 })
    }

    /// Bank capacity in partial sums.
    pub fn size(&self) -> usize {
        self.banks[0].len()
    }

    /// In-place accumulation of one partial-sum vector into the active bank.
    ///
    /// # Panics
    ///
    /// Panics if `partial.len()` differs from the bank size.
    pub fn accumulate(&mut self, partial: &[i64]) {
        self.try_accumulate(partial).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible counterpart of [`OutputBuffer::accumulate`].
    pub fn try_accumulate(&mut self, partial: &[i64]) -> Result<(), SimError> {
        if partial.len() != self.size() {
            return Err(SimError::WidthMismatch {
                context: "output buffer partial-sum",
                expected: self.size(),
                actual: partial.len(),
            });
        }
        for (acc, &p) in self.banks[self.active].iter_mut().zip(partial) {
            *acc += p;
        }
        self.accumulate_ops += partial.len() as u64;
        Ok(())
    }

    /// Fault injection: flips `bit` of the partial sum at `index` in the
    /// active accumulation bank.
    ///
    /// # Panics
    ///
    /// Panics if `index` or `bit` is out of range.
    pub fn flip_bit(&mut self, index: usize, bit: u32) {
        assert!(bit < 64, "bit {bit} outside the 64-bit partial sum");
        let bank = &mut self.banks[self.active];
        assert!(index < bank.len(), "partial sum {index} out of range");
        bank[index] ^= 1i64 << bit;
    }

    /// Swaps the accumulation and drain banks, clearing the new
    /// accumulation bank.
    pub fn swap(&mut self) {
        self.active ^= 1;
        for v in &mut self.banks[self.active] {
            *v = 0;
        }
    }

    /// The drain bank's contents (the tile finished before the last swap).
    pub fn drain(&self) -> &[i64] {
        &self.banks[self.active ^ 1]
    }

    /// Total accumulate operations performed (for energy accounting).
    pub fn accumulate_ops(&self) -> u64 {
        self.accumulate_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_splits_match_paper_sizes() {
        // 3x3 native: single launch.
        assert_eq!(SubKernelPlan::for_kernel(3, 3).sub_kernel_count(), 1);
        // 5x5: (3+2)x(3+2) = 4 launches.
        let p5 = SubKernelPlan::for_kernel(5, 5);
        assert_eq!(p5.sub_kernel_count(), 4);
        assert_eq!(p5.total_taps(), 25);
        // 7x7: 9 launches.
        let p7 = SubKernelPlan::for_kernel(7, 7);
        assert_eq!(p7.sub_kernel_count(), 9);
        assert_eq!(p7.total_taps(), 49);
        assert_eq!(p7.extra_accumulations(), 8);
        // 11x11 (AlexNet conv1): 4x4 = 16 launches.
        assert_eq!(SubKernelPlan::for_kernel(11, 11).sub_kernel_count(), 16);
    }

    #[test]
    fn rectangular_kernels_split_each_axis() {
        // Inception's 1x7: one row split, three column splits.
        let p = SubKernelPlan::for_kernel(1, 7);
        assert_eq!(p.sub_kernels(), vec![(1, 3), (1, 3), (1, 1)]);
        assert_eq!(p.total_taps(), 7);
    }

    #[test]
    fn split_preserves_taps_for_all_small_kernels() {
        for kh in 1..=11 {
            for kw in 1..=11 {
                let p = SubKernelPlan::for_kernel(kh, kw);
                assert_eq!(p.total_taps(), kh * kw, "{kh}x{kw}");
                assert!(p
                    .sub_kernels()
                    .iter()
                    .all(|&(r, c)| r <= 3 && c <= 3 && r > 0 && c > 0));
            }
        }
    }

    #[test]
    fn dual_buffer_isolates_tiles() {
        let mut ob = OutputBuffer::new(2);
        ob.accumulate(&[1, 1]);
        ob.swap();
        // New accumulation must not touch the drained tile.
        ob.accumulate(&[7, 7]);
        assert_eq!(ob.drain(), &[1, 1]);
        ob.swap();
        assert_eq!(ob.drain(), &[7, 7]);
        assert_eq!(ob.accumulate_ops(), 4);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_mismatched_partials() {
        let mut ob = OutputBuffer::new(2);
        ob.accumulate(&[1, 2, 3]);
    }

    #[test]
    fn typed_errors_on_bad_construction_and_width() {
        assert!(matches!(
            OutputBuffer::try_new(0),
            Err(SimError::InvalidGeometry { .. })
        ));
        assert!(matches!(
            SubKernelPlan::try_for_kernel(0, 3),
            Err(SimError::InvalidGeometry { .. })
        ));
        let mut ob = OutputBuffer::try_new(2).unwrap();
        let err = ob.try_accumulate(&[1, 2, 3]).unwrap_err();
        assert!(matches!(
            err,
            SimError::WidthMismatch { expected: 2, actual: 3, .. }
        ));
        // A rejected accumulate leaves the bank untouched.
        ob.swap();
        assert_eq!(ob.drain(), &[0, 0]);
    }

    #[test]
    fn fault_bit_flip_hits_the_active_bank_only() {
        let mut ob = OutputBuffer::new(2);
        ob.accumulate(&[1, 1]);
        ob.swap();
        ob.accumulate(&[2, 2]);
        ob.flip_bit(0, 4);
        assert_eq!(ob.drain(), &[1, 1]);
        ob.swap();
        assert_eq!(ob.drain(), &[2 ^ 16, 2]);
    }

    #[test]
    fn split_accumulation_equals_direct_convolution_taps() {
        // Accumulating per-sub-kernel partials reproduces the full kernel's
        // dot product: simulate on a flat weight/input pair.
        let kh = 5;
        let kw = 5;
        let weights: Vec<i64> = (0..(kh * kw) as i64).collect();
        let inputs: Vec<i64> = (0..(kh * kw) as i64).map(|v| v * 3 + 1).collect();
        let direct: i64 = weights.iter().zip(&inputs).map(|(w, x)| w * x).sum();

        let plan = SubKernelPlan::for_kernel(kh, kw);
        let mut ob = OutputBuffer::new(1);
        // Walk the split rectangles over the kernel grid.
        let mut row0 = 0;
        for &rh in &plan.row_splits {
            let mut col0 = 0;
            for &cw in &plan.col_splits {
                let mut partial = 0i64;
                for r in row0..row0 + rh {
                    for c in col0..col0 + cw {
                        let idx = r * kw + c;
                        partial += weights[idx] * inputs[idx];
                    }
                }
                ob.accumulate(&[partial]);
                col0 += cw;
            }
            row0 += rh;
        }
        ob.swap();
        assert_eq!(ob.drain(), &[direct]);
    }
}
