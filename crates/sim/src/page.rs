//! Detailed PE-page simulation: a whole (small) convolution layer executed
//! tile by tile through the real component models.
//!
//! This is the middle tier between the register-exact [`crate::SystolicArray`]
//! (one tile) and the analytic [`crate::LayerCycleModel`] (whole networks).
//! It drives a layer end to end the way one PE page does:
//!
//! 1. the kernel is split into array-sized sub-kernels
//!    ([`crate::SubKernelPlan`], Section IV-D);
//! 2. for each (sub-kernel, tap tile, filter tile), the
//!    [`crate::Im2ColEngine`] builds the staggered row streams with packed
//!    sensitivity bits (Section IV-B);
//! 3. the exact variable-speed array executes the tile (Section IV-C);
//! 4. partial sums accumulate in the dual-buffered [`crate::OutputBuffer`]
//!    (Section IV-D).
//!
//! The result carries both exact cycles and numerically exact outputs, so
//! tests can differentially validate the fast model *and* the
//! mixed-precision convolution against this composition.

use crate::{Im2ColEngine, OutputBuffer, SubKernelPlan, SystolicArray};
use drq_core::MaskMap;
use drq_quant::{Precision, QuantParams};
use drq_tensor::Tensor;

/// Result of a detailed page-level layer execution.
#[derive(Debug, Clone, PartialEq)]
pub struct PageTrace {
    /// Total array cycles summed over all tiles (fills included).
    pub cycles: u64,
    /// Tiles launched (sub-kernel × tap tile × filter tile).
    pub tiles: u64,
    /// INT8 column steps across all tiles.
    pub int8_steps: u64,
    /// INT4 column steps across all tiles.
    pub int4_steps: u64,
    /// Accumulator operations in the output buffer.
    pub accumulate_ops: u64,
    /// The layer's outputs `[out_c][out_h*out_w]` in the INT8×INT8 product
    /// domain (dequantize with the weight × activation scales).
    pub outputs: Vec<Vec<i64>>,
}

/// A single PE page executing layers tile by tile.
///
/// # Examples
///
/// ```
/// use drq_sim::PageSimulator;
///
/// let page = PageSimulator::new(6, 4);
/// assert_eq!(page.rows(), 6);
/// assert_eq!(page.cols(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageSimulator {
    rows: usize,
    cols: usize,
    engine: Im2ColEngine,
}

impl PageSimulator {
    /// Creates a page with a `rows × cols` array.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "page dimensions must be positive");
        Self { rows, cols, engine: Im2ColEngine::default() }
    }

    /// PE rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// PE columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Executes an ungrouped convolution (weights `[out_c, in_c, kh, kw]`)
    /// over image 0 of `x` under per-channel sensitivity masks.
    ///
    /// # Panics
    ///
    /// Panics on shape inconsistencies.
    #[allow(clippy::too_many_arguments)]
    pub fn run_conv(
        &self,
        x: &Tensor<f32>,
        masks: &[MaskMap],
        weights: &Tensor<f32>,
        kh: usize,
        kw: usize,
        stride: usize,
        pad: usize,
    ) -> PageTrace {
        let s = x.shape4().expect("input must be rank 4");
        let ws = weights.shape();
        assert_eq!(ws.len(), 4, "weights must be rank 4");
        let (out_c, in_c) = (ws[0], ws[1]);
        assert_eq!(in_c, s.c, "channel mismatch");
        assert_eq!((ws[2], ws[3]), (kh, kw), "kernel extent mismatch");
        let out_h = (s.h + 2 * pad - kh) / stride + 1;
        let out_w = (s.w + 2 * pad - kw) / stride + 1;
        let positions = out_h * out_w;

        let wq = QuantParams::fit(weights.as_slice(), Precision::Int8);
        let wv = weights.as_slice();
        let w_code = |oc: usize, c: usize, ky: usize, kx: usize| -> i32 {
            wq.quantize_value(wv[((oc * in_c + c) * kh + ky) * kw + kx])
        };

        let plan = SubKernelPlan::for_kernel(kh, kw);
        let mut trace = PageTrace {
            cycles: 0,
            tiles: 0,
            int8_steps: 0,
            int4_steps: 0,
            accumulate_ops: 0,
            outputs: vec![vec![0i64; positions]; out_c],
        };
        let mut out_buf = OutputBuffer::new(positions);

        // Walk sub-kernel rectangles over the kernel grid.
        let mut row0 = 0usize;
        for &sk_h in plan.row_splits().to_vec().iter() {
            let mut col0 = 0usize;
            let row_base = row0;
            for &sk_w in plan.col_splits().to_vec().iter() {
                // Taps of this sub-kernel, channel-major.
                let mut taps: Vec<(usize, usize, usize)> = Vec::new();
                for c in 0..in_c {
                    for ky in row_base..row_base + sk_h {
                        for kx in col0..col0 + sk_w {
                            taps.push((c, ky, kx));
                        }
                    }
                }
                // Tap tiles of `rows`, filter tiles of `cols`.
                for tap_tile in taps.chunks(self.rows) {
                    let (streams, _packed) = self.engine.build_streams(
                        x, 0, masks, tap_tile, out_h, out_w, stride, pad,
                    );
                    for filter_tile in (0..out_c).collect::<Vec<_>>().chunks(self.cols) {
                        let weight_matrix: Vec<Vec<i32>> = tap_tile
                            .iter()
                            .map(|&(c, ky, kx)| {
                                filter_tile
                                    .iter()
                                    .map(|&oc| w_code(oc, c, ky, kx))
                                    .collect()
                            })
                            .collect();
                        let array = SystolicArray::new(weight_matrix);
                        let tile = array.simulate(&streams);
                        trace.cycles += tile.cycles;
                        trace.tiles += 1;
                        trace.int8_steps += tile.int8_steps;
                        trace.int4_steps += tile.int4_steps;
                        for (j, &oc) in filter_tile.iter().enumerate() {
                            // Route this column's per-step sums through the
                            // accumulation unit into the output plane.
                            out_buf.accumulate(&tile.outputs[j]);
                            out_buf.swap();
                            for (p, &v) in out_buf.drain().iter().enumerate() {
                                trace.outputs[oc][p] += v;
                            }
                        }
                    }
                }
                col0 += sk_w;
            }
            row0 += sk_h;
        }
        trace.accumulate_ops = out_buf.accumulate_ops();
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drq_core::{uniform_masks, MixedPrecisionConv, RegionSize, SensitivityPredictor};
    use drq_nn::Conv2d;
    use drq_tensor::XorShiftRng;

    fn blobby_input(c: usize, hw: usize, seed: u64) -> Tensor<f32> {
        let mut rng = XorShiftRng::new(seed);
        Tensor::from_fn(&[1, c, hw, hw], |i| {
            let p = i % (hw * hw);
            if p < hw * hw / 4 {
                0.7 + 0.3 * rng.next_f32()
            } else {
                0.03 * rng.next_f32()
            }
        })
    }

    /// The page simulator's integer outputs must match the reference
    /// mixed-precision convolution exactly (same quantizers, same
    /// high-nibble INT4 semantics), bias excluded.
    #[test]
    fn page_outputs_match_mixed_precision_conv() {
        let (in_c, out_c, hw, k) = (3, 5, 8, 3);
        let conv = Conv2d::new(in_c, out_c, k, 1, 1, 77);
        let x = blobby_input(in_c, hw, 78);
        let predictor = SensitivityPredictor::new(RegionSize::new(4, 4), 12.0);
        let masks = predictor.predict(&x);

        let page = PageSimulator::new(6, 4);
        let trace = page.run_conv(&x, &masks, conv.weight(), k, k, 1, 1);

        // Reference: integer accumulation inside MixedPrecisionConv equals
        // (output - bias) / (scale_w * scale_x).
        let (y, _) = MixedPrecisionConv::forward(&conv, &x, std::slice::from_ref(&masks));
        let aq = QuantParams::fit(x.as_slice(), Precision::Int8);
        let wq = QuantParams::fit(conv.weight().as_slice(), Precision::Int8);
        let dequant = aq.scale() * wq.scale();
        for oc in 0..out_c {
            for oy in 0..hw {
                for ox in 0..hw {
                    let expected =
                        ((y[[0, oc, oy, ox]] - conv.bias().as_slice()[oc]) / dequant).round()
                            as i64;
                    let got = trace.outputs[oc][oy * hw + ox];
                    assert_eq!(got, expected, "oc={oc} ({oy},{ox})");
                }
            }
        }
    }

    #[test]
    fn large_kernels_split_and_still_match() {
        // 5x5 kernel: 4 sub-kernels accumulated in the output buffer.
        let (in_c, out_c, hw, k) = (2, 3, 9, 5);
        let conv = Conv2d::new(in_c, out_c, k, 1, 2, 31);
        let x = blobby_input(in_c, hw, 32);
        let masks = uniform_masks(x.shape4().unwrap(), false)[0].clone();
        let page = PageSimulator::new(6, 3);
        let trace = page.run_conv(&x, &masks, conv.weight(), k, k, 1, 2);
        assert!(trace.tiles >= 4, "5x5 must launch multiple tiles: {}", trace.tiles);

        let (y, _) = MixedPrecisionConv::forward(&conv, &x, &[masks]);
        let aq = QuantParams::fit(x.as_slice(), Precision::Int8);
        let wq = QuantParams::fit(conv.weight().as_slice(), Precision::Int8);
        let dequant = aq.scale() * wq.scale();
        for oc in 0..out_c {
            for p in 0..hw * hw {
                let expected = ((y[[0, oc, p / hw, p % hw]]
                    - conv.bias().as_slice()[oc])
                    / dequant)
                    .round() as i64;
                assert_eq!(trace.outputs[oc][p], expected, "oc={oc} p={p}");
            }
        }
    }

    #[test]
    fn page_cycles_track_fast_model_compute() {
        // For a single-page config, the page trace's cycles must equal the
        // fast model's compute+fill (weight loads excluded: the page model
        // does not charge them).
        use drq_models::ConvLayerSpec;
        let (in_c, out_c, hw, k) = (2, 4, 6, 3);
        let conv = Conv2d::new(in_c, out_c, k, 1, 1, 41);
        let x = blobby_input(in_c, hw, 42);
        let predictor = SensitivityPredictor::new(RegionSize::new(2, 2), 20.0);
        let masks = predictor.predict(&x);

        let rows = 9;
        let cols = 4;
        let page = PageSimulator::new(rows, cols);
        let trace = page.run_conv(&x, &masks, conv.weight(), k, k, 1, 1);

        let model = crate::LayerCycleModel::new(rows, cols, 1);
        let spec = ConvLayerSpec::conv("t", "b", in_c, hw, hw, out_c, k, k, 1, 1);
        let fast = model.simulate_layer(&spec, &masks);
        assert_eq!(trace.int8_steps, fast.int8_steps);
        assert_eq!(trace.int4_steps, fast.int4_steps);
        // The page composition launches tiles back to back (no double
        // buffering), so it pays one full pipeline fill per tile; the fast
        // model overlaps all but the first. Compute cycles must agree
        // exactly once fills are normalized out.
        let fill = (rows + cols - 1) as u64;
        assert_eq!(
            trace.cycles - trace.tiles * fill,
            fast.compute_cycles,
            "page composition diverges from the analytic model"
        );
    }

    #[test]
    fn sensitivity_slows_the_page_down() {
        let (in_c, out_c, hw, k) = (2, 2, 6, 3);
        let conv = Conv2d::new(in_c, out_c, k, 1, 1, 51);
        let x = blobby_input(in_c, hw, 52);
        let page = PageSimulator::new(6, 2);
        let shape = x.shape4().unwrap();
        let fast = page.run_conv(
            &x,
            &uniform_masks(shape, false)[0],
            conv.weight(),
            k,
            k,
            1,
            1,
        );
        let slow = page.run_conv(
            &x,
            &uniform_masks(shape, true)[0],
            conv.weight(),
            k,
            k,
            1,
            1,
        );
        assert!(slow.cycles > 2 * fast.cycles, "{} vs {}", slow.cycles, fast.cycles);
        assert_eq!(fast.int8_steps, 0);
        assert_eq!(slow.int4_steps, 0);
    }
}
