//! Line buffer with dense mixed-precision packing (Section IV-B).
//!
//! The line buffer sits between the global buffer and the convolution array.
//! To raise storage utilization, insensitive values are packed into 4-bit
//! slots and sensitive values into 8-bit slots, with the binary mask (one
//! bit per region, expanded here to one bit per value for the stream)
//! deciding how each slot is decoded.

use crate::{SimError, StreamElement};

/// A densely packed stream of mixed 4/8-bit activation codes.
///
/// # Examples
///
/// ```
/// use drq_sim::{PackedStream, StreamElement};
///
/// let elems = vec![
///     StreamElement::new(48, false),  // 4-bit slot (INT4 code 3)
///     StreamElement::new(-77, true),  // 8-bit slot
/// ];
/// let packed = PackedStream::pack(&elems);
/// assert_eq!(packed.payload_bits(), 4 + 8);
/// // Sensitive values round-trip exactly; insensitive ones keep their
/// // clipped INT4 code (48 = 3 << 4 survives unchanged).
/// assert_eq!(packed.unpack(), elems);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedStream {
    /// Packed payload, nibble-granular.
    nibbles: Vec<u8>,
    /// One sensitivity bit per element (the expanded mask).
    mask: Vec<bool>,
}

impl PackedStream {
    /// Packs elements: insensitive values store their high nibble (their
    /// INT4 code), sensitive values store both nibbles.
    ///
    /// # Panics
    ///
    /// Panics if any value exceeds 8 signed bits.
    pub fn pack(elems: &[StreamElement]) -> Self {
        let mut nibbles = Vec::new();
        let mut mask = Vec::with_capacity(elems.len());
        for e in elems {
            assert!((-128..=127).contains(&e.value), "value {} exceeds 8 bits", e.value);
            mask.push(e.sensitive);
            let byte = e.value as i8 as u8;
            if e.sensitive {
                nibbles.push(byte >> 4);
                nibbles.push(byte & 0xF);
            } else {
                // INT4 storage keeps the high nibble (the clipped code).
                nibbles.push(byte >> 4);
            }
        }
        Self { nibbles, mask }
    }

    /// Number of elements in the stream.
    pub fn len(&self) -> usize {
        self.mask.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.mask.is_empty()
    }

    /// Payload size in bits (excluding the mask).
    pub fn payload_bits(&self) -> usize {
        self.nibbles.len() * 4
    }

    /// Mask size in bits.
    pub fn mask_bits(&self) -> usize {
        self.mask.len()
    }

    /// Total storage in bits (payload + expanded mask).
    pub fn total_bits(&self) -> usize {
        self.payload_bits() + self.mask_bits()
    }

    /// Unpacks back into stream elements. Insensitive values come back with
    /// their low nibble zeroed — exactly the information the INT4 datapath
    /// consumes.
    pub fn unpack(&self) -> Vec<StreamElement> {
        let mut out = Vec::with_capacity(self.mask.len());
        let mut i = 0usize;
        for &sensitive in &self.mask {
            let value = if sensitive {
                let hi = self.nibbles[i];
                let lo = self.nibbles[i + 1];
                i += 2;
                ((hi << 4) | lo) as i8 as i32
            } else {
                let hi = self.nibbles[i];
                i += 1;
                ((hi << 4) as i8 as i32 >> 4) << 4
            };
            out.push(StreamElement::new(value, sensitive));
        }
        out
    }

    /// Number of stored nibbles (the fault-injection opportunity count:
    /// one stuck-at chance per physical 4-bit storage word).
    pub fn nibble_count(&self) -> usize {
        self.nibbles.len()
    }

    /// Fault injection: forces `bit` (0..4) of the nibble at `index` to 1 —
    /// a stuck-at-1 storage cell. Sensitive values see the corruption in
    /// whichever half-byte the nibble holds; insensitive values in their
    /// INT4 code.
    ///
    /// # Panics
    ///
    /// Panics if `index` or `bit` is out of range.
    pub fn stuck_at(&mut self, index: usize, bit: u32) {
        assert!(index < self.nibbles.len(), "nibble {index} out of range");
        assert!(bit < 4, "bit {bit} outside the 4-bit nibble");
        self.nibbles[index] |= 1 << bit;
    }

    /// Storage saving versus an all-INT8 buffer, in `[0, 0.5]`.
    pub fn saving_vs_int8(&self) -> f64 {
        if self.mask.is_empty() {
            return 0.0;
        }
        let int8_bits = self.mask.len() * 8;
        1.0 - self.payload_bits() as f64 / int8_bits as f64
    }
}

/// Capacity model of one PE page's line buffer.
///
/// # Examples
///
/// ```
/// use drq_sim::LineBuffer;
///
/// let lb = LineBuffer::new(32 * 1024);
/// // All-INT4 packing doubles effective capacity vs INT8.
/// assert_eq!(lb.capacity_values(0.0), 2 * lb.capacity_values(1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineBuffer {
    bytes: usize,
}

impl LineBuffer {
    /// Creates a line buffer of the given byte capacity.
    ///
    /// # Panics
    ///
    /// Panics if `bytes == 0`.
    pub fn new(bytes: usize) -> Self {
        Self::try_new(bytes).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible counterpart of [`LineBuffer::new`].
    pub fn try_new(bytes: usize) -> Result<Self, SimError> {
        if bytes == 0 {
            return Err(SimError::InvalidGeometry {
                context: "line buffer",
                detail: "line buffer must have capacity".into(),
            });
        }
        Ok(Self { bytes })
    }

    /// Raw capacity in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of activation values that fit given a sensitive fraction
    /// (sensitive = 8 bits, insensitive = 4 bits).
    pub fn capacity_values(&self, sensitive_fraction: f64) -> usize {
        let f = sensitive_fraction.clamp(0.0, 1.0);
        let bits_per_value = 4.0 + 4.0 * f;
        ((self.bytes * 8) as f64 / bits_per_value) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drq_tensor::XorShiftRng;

    fn random_elems(n: usize, p_sens: f64, seed: u64) -> Vec<StreamElement> {
        let mut rng = XorShiftRng::new(seed);
        (0..n)
            .map(|_| {
                StreamElement::new(
                    rng.next_below(255) as i32 - 127,
                    rng.next_f64() < p_sens,
                )
            })
            .collect()
    }

    #[test]
    fn sensitive_values_round_trip_exactly() {
        let elems = random_elems(100, 1.0, 1);
        let packed = PackedStream::pack(&elems);
        assert_eq!(packed.unpack(), elems);
        assert_eq!(packed.payload_bits(), 800);
    }

    #[test]
    fn insensitive_values_keep_high_nibble() {
        let elems = vec![StreamElement::new(0x5C, false), StreamElement::new(-0x4Ci32, false)];
        let packed = PackedStream::pack(&elems);
        let back = packed.unpack();
        assert_eq!(back[0].value, 0x50);
        // -0x4C = 0b1011_0100 -> high nibble 1011 (as i4: -5) -> -5 << 4.
        assert_eq!(back[1].value, (-0x4Ci32 >> 4) << 4);
        assert_eq!(packed.payload_bits(), 8);
    }

    #[test]
    fn packing_saving_tracks_sensitive_fraction() {
        let all4 = PackedStream::pack(&random_elems(1000, 0.0, 2));
        let half = PackedStream::pack(&random_elems(1000, 0.5, 3));
        let all8 = PackedStream::pack(&random_elems(1000, 1.0, 4));
        assert!((all4.saving_vs_int8() - 0.5).abs() < 1e-9);
        assert!(all8.saving_vs_int8().abs() < 1e-9);
        assert!(half.saving_vs_int8() > 0.2 && half.saving_vs_int8() < 0.3);
    }

    #[test]
    fn unpacked_int4_matches_pe_clipping() {
        // The unpacked insensitive value must agree with the PE's
        // high-nibble semantics: (v >> 4) << 4.
        for v in -128..=127i32 {
            let packed = PackedStream::pack(&[StreamElement::new(v, false)]);
            assert_eq!(packed.unpack()[0].value, (v >> 4) << 4, "v={v}");
        }
    }

    #[test]
    fn empty_stream_is_fine() {
        let packed = PackedStream::pack(&[]);
        assert!(packed.is_empty());
        assert_eq!(packed.total_bits(), 0);
        assert_eq!(packed.saving_vs_int8(), 0.0);
    }

    #[test]
    fn stuck_at_bits_corrupt_exactly_one_nibble() {
        let elems = vec![StreamElement::new(0x21, true), StreamElement::new(0x21, false)];
        let mut packed = PackedStream::pack(&elems);
        assert_eq!(packed.nibble_count(), 3);
        // Nibble 1 is the sensitive value's low nibble (0x1); stick bit 3.
        packed.stuck_at(1, 3);
        let back = packed.unpack();
        assert_eq!(back[0].value, 0x29);
        // The insensitive element's nibble (index 2) is untouched.
        assert_eq!(back[1].value, 0x20);
    }

    #[test]
    fn try_new_rejects_zero_capacity() {
        assert!(matches!(
            LineBuffer::try_new(0),
            Err(crate::SimError::InvalidGeometry { .. })
        ));
        assert_eq!(LineBuffer::try_new(64).unwrap().bytes(), 64);
    }

    #[test]
    fn capacity_interpolates_between_extremes() {
        let lb = LineBuffer::new(1024);
        let c0 = lb.capacity_values(0.0);
        let c50 = lb.capacity_values(0.5);
        let c100 = lb.capacity_values(1.0);
        assert_eq!(c0, 2048);
        assert_eq!(c100, 1024);
        assert!(c50 < c0 && c50 > c100);
    }
}
