//! The hardware sensitivity predictor fused with the pooling unit
//! (Section IV-E, Figs. 9 and 10).
//!
//! Because an x×y prediction window contains several n×n pooling windows,
//! the predictor reuses average-pooling outputs instead of re-summing
//! activations. Pooling scans the feature map pooling-window by
//! pooling-window while the prediction window spans several of them, so
//! pooling results must be staged in a temporal buffer:
//! `w/y` partial prediction results plus `(w/n) · (x/n − 1)` pooling
//! temporaries, where `w` is the feature-map width.

use drq_core::RegionSize;

/// Hardware model of the pooling-fused predictor.
///
/// # Examples
///
/// ```
/// use drq_sim::PredictorUnit;
/// use drq_core::RegionSize;
///
/// // The paper's example: 4x4 prediction window, 2x2 pooling.
/// let p = PredictorUnit::new(RegionSize::new(4, 4), 2);
/// assert_eq!(p.pool_windows_per_region(), 4);
/// // ResNet-18-style 4x16 region on a 56-wide map.
/// let p = PredictorUnit::new(RegionSize::new(4, 16), 2);
/// assert!(p.storage_bytes(56) > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorUnit {
    region: RegionSize,
    pool_n: usize,
    /// Bytes per staged partial result (INT8 activations accumulate into
    /// 16-bit partials).
    entry_bytes: usize,
}

impl PredictorUnit {
    /// Creates a predictor for a region size and pooling window `n`.
    ///
    /// # Panics
    ///
    /// Panics if `pool_n == 0`.
    pub fn new(region: RegionSize, pool_n: usize) -> Self {
        assert!(pool_n > 0, "pooling window must be positive");
        Self { region, pool_n, entry_bytes: 2 }
    }

    /// The prediction window (region) size.
    pub fn region(&self) -> RegionSize {
        self.region
    }

    /// The pooling window edge length.
    pub fn pool_n(&self) -> usize {
        self.pool_n
    }

    /// Pooling windows contained in one prediction window (when aligned).
    pub fn pool_windows_per_region(&self) -> usize {
        (self.region.x / self.pool_n).max(1) * (self.region.y / self.pool_n).max(1)
    }

    /// Number of staged partial-prediction entries for a feature map of
    /// width `w`: the paper's `w / y` term.
    pub fn partial_prediction_entries(&self, w: usize) -> usize {
        w.div_ceil(self.region.y).max(1)
    }

    /// Number of staged pooling temporaries: the paper's
    /// `(w/n) · (x/n − 1)` term.
    pub fn pooling_temp_entries(&self, w: usize) -> usize {
        let per_row = w.div_ceil(self.pool_n);
        let rows_to_hold = (self.region.x / self.pool_n).saturating_sub(1);
        per_row * rows_to_hold
    }

    /// Total staged entries.
    pub fn storage_entries(&self, w: usize) -> usize {
        self.partial_prediction_entries(w) + self.pooling_temp_entries(w)
    }

    /// Total staging storage in bytes.
    pub fn storage_bytes(&self, w: usize) -> usize {
        self.storage_entries(w) * self.entry_bytes
    }

    /// Adder operations the predictor adds per feature-map channel beyond
    /// pooling itself: one accumulate per pooling window plus one compare
    /// per region. With pooling reuse this is all that remains of the mean
    /// filter.
    pub fn extra_ops_per_channel(&self, h: usize, w: usize) -> u64 {
        let pools = (h.div_ceil(self.pool_n) * w.div_ceil(self.pool_n)) as u64;
        let regions = (h.div_ceil(self.region.x) * w.div_ceil(self.region.y)) as u64;
        pools + regions
    }

    /// Ops the mean filter would need *without* pooling reuse (one add per
    /// pixel plus one compare per region) — for quantifying the reuse win.
    pub fn naive_ops_per_channel(&self, h: usize, w: usize) -> u64 {
        (h * w) as u64 + (h.div_ceil(self.region.x) * w.div_ceil(self.region.y)) as u64
    }

    /// Runs the pooling-fused prediction of Figs. 9–10: average-pool the
    /// feature map with an n×n window, then sum pooling outputs inside each
    /// x×y prediction window and apply the step threshold. The produced
    /// mask covers the *pooled* map (the next layer's input) with regions
    /// of `(x/n) × (y/n)` pooled pixels.
    ///
    /// Because averaging is associative, this equals running the plain
    /// [`drq_core::SensitivityPredictor`] directly on the pooled map with
    /// the scaled region — the equivalence the hardware reuse relies on,
    /// asserted by this module's tests.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank 4, the image index is out of range, or the
    /// region is not a multiple of the pooling window.
    pub fn predict_via_pooling(
        &self,
        x: &drq_tensor::Tensor<f32>,
        image: usize,
        threshold: f32,
    ) -> Vec<drq_core::MaskMap> {
        let s = x.shape4().expect("predictor input must be rank 4");
        assert!(image < s.n, "image index out of range");
        let n = self.pool_n;
        assert!(
            self.region.x.is_multiple_of(n) && self.region.y.is_multiple_of(n),
            "prediction window must contain whole pooling windows"
        );
        // Average pooling (floor semantics on ragged edges).
        let (ph, pw) = (s.h / n, s.w / n);
        assert!(ph > 0 && pw > 0, "pooling window larger than the map");
        let mut pooled = drq_tensor::Tensor::<f32>::zeros(&[1, s.c, ph, pw]);
        {
            let xs = x.as_slice();
            let ps = pooled.shape4().expect("pooled rank");
            let pv = pooled.as_mut_slice();
            for c in 0..s.c {
                for py in 0..ph {
                    for px in 0..pw {
                        let mut sum = 0.0;
                        for dy in 0..n {
                            for dx in 0..n {
                                sum += xs[s.offset(image, c, py * n + dy, px * n + dx)];
                            }
                        }
                        pv[ps.offset(0, c, py, px)] = sum / (n * n) as f32;
                    }
                }
            }
        }
        // Prediction on the pooled map with the scaled region: identical
        // region means, hence identical masks.
        let scaled = RegionSize::new(self.region.x / n, self.region.y / n);
        drq_core::SensitivityPredictor::new(scaled, threshold).predict(&pooled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_counts() {
        // x = y = 4, n = 2 (Fig. 9a): 4 pooling windows per prediction
        // window.
        let p = PredictorUnit::new(RegionSize::new(4, 4), 2);
        assert_eq!(p.pool_windows_per_region(), 4);
    }

    #[test]
    fn storage_formula_matches_paper() {
        // w/y partials + (w/n)(x/n - 1) pooling temporaries.
        let p = PredictorUnit::new(RegionSize::new(4, 16), 2);
        let w = 64;
        assert_eq!(p.partial_prediction_entries(w), 4);
        assert_eq!(p.pooling_temp_entries(w), 32);
        assert_eq!(p.storage_entries(w), 36);
    }

    #[test]
    fn stripe_regions_minimize_storage() {
        // Section VI-B2: stripe-shaped regions (large y, small x) are the
        // storage-friendly choice.
        let w = 56;
        let stripe = PredictorUnit::new(RegionSize::stripe(4, w), 2);
        let square = PredictorUnit::new(RegionSize::new(16, 16), 2);
        let tall = PredictorUnit::new(RegionSize::new(32, 32), 2);
        assert!(stripe.storage_bytes(w) < square.storage_bytes(w));
        assert!(square.storage_bytes(w) < tall.storage_bytes(w));
    }

    #[test]
    fn resnet18_region_storage_is_small() {
        // The paper: "the storage overhead of 4x16 region size is only 2KB
        // in ResNet-18". Our per-feature-map staging (56-wide maps, 64
        // channels worst case) lands in the same low-KB range.
        let p = PredictorUnit::new(RegionSize::new(4, 16), 2);
        let per_channel = p.storage_bytes(56);
        let total = per_channel * 64;
        assert!(total < 8 * 1024, "storage {total} B not in the low-KB range");
        assert!(total > 256, "storage {total} B suspiciously small");
    }

    #[test]
    fn pooling_reuse_saves_most_ops() {
        let p = PredictorUnit::new(RegionSize::new(4, 16), 2);
        let reuse = p.extra_ops_per_channel(56, 56);
        let naive = p.naive_ops_per_channel(56, 56);
        assert!(reuse * 3 < naive, "reuse {reuse} vs naive {naive}");
    }

    #[test]
    fn pooling_fused_prediction_matches_direct_prediction() {
        // The Fig. 9 reuse is exact: summing n×n average-pooling outputs
        // inside an x×y window equals mean-filtering the pooled map with an
        // (x/n)×(y/n) window. Verify mask-for-mask on structured inputs
        // where region means sit well away from the threshold (the two
        // paths quantize at slightly different scales, so knife-edge means
        // could legitimately flip).
        use drq_tensor::{Tensor, XorShiftRng};
        let mut rng = XorShiftRng::new(5);
        let x = Tensor::from_fn(&[1, 3, 16, 16], |i| {
            let p = i % 256;
            let (h, w) = (p / 16, p % 16);
            if h < 8 && w < 8 {
                0.9 + 0.1 * rng.next_f32()
            } else {
                0.01 * rng.next_f32()
            }
        });
        let unit = PredictorUnit::new(RegionSize::new(4, 4), 2);
        let fused = unit.predict_via_pooling(&x, 0, 20.0);
        // Direct path: pool by hand, then plain predictor at 2x2 regions.
        let mut pooled = Tensor::<f32>::zeros(&[1, 3, 8, 8]);
        for c in 0..3 {
            for py in 0..8 {
                for px in 0..8 {
                    let mut sum = 0.0;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            sum += x[[0, c, py * 2 + dy, px * 2 + dx]];
                        }
                    }
                    pooled[[0, c, py, px]] = sum / 4.0;
                }
            }
        }
        let direct =
            drq_core::SensitivityPredictor::new(RegionSize::new(2, 2), 20.0).predict(&pooled);
        assert_eq!(fused.len(), direct.len());
        for (a, b) in fused.iter().zip(&direct) {
            assert_eq!(a.bits(), b.bits());
        }
    }

    #[test]
    #[should_panic(expected = "whole pooling windows")]
    fn fused_prediction_requires_aligned_windows() {
        let unit = PredictorUnit::new(RegionSize::new(3, 3), 2);
        let x = drq_tensor::Tensor::<f32>::zeros(&[1, 1, 8, 8]);
        let _ = unit.predict_via_pooling(&x, 0, 10.0);
    }

    #[test]
    fn region_smaller_than_pool_window_degrades_gracefully() {
        let p = PredictorUnit::new(RegionSize::new(1, 1), 2);
        assert_eq!(p.pool_windows_per_region(), 1);
        assert_eq!(p.pooling_temp_entries(32), 0);
    }
}
