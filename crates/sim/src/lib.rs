//! Cycle-accurate simulator of the DRQ accelerator (Section IV of the
//! paper).
//!
//! The architecture under simulation: 16 PE pages, each an 18×11 systolic
//! array of multi-precision PEs (3168 INT4 MACs total, iso-area with the
//! baselines of Table II), fed by line buffers with densely packed 4/8-bit
//! activations, draining into output buffers with an accumulation unit, and
//! closing the loop through an activation/pooling unit fused with the
//! sensitivity predictor.
//!
//! Two models are provided and differentially tested against each other:
//!
//! * [`SystolicArray`] — an **exact** PE-level simulator that executes every
//!   register transfer of the variable-speed array of Fig. 7(b), including
//!   the 4-cycle time-multiplexed INT8 MAC of Fig. 8 and the stall
//!   propagation between columns;
//! * [`LayerCycleModel`] — a **fast** per-layer analytic model (steps ×
//!   per-step cost + pipeline fill + weight loads) used to simulate the full
//!   six-network evaluation in seconds. Its equivalence with the exact
//!   simulator on small layers is asserted by tests.
//!
//! Supporting models: [`AreaModel`] (Table II MAC areas and iso-area PE
//! budgets), [`EnergyModel`] (per-MAC, buffer and DRAM energies with the
//! weight-stationary accounting of Section VI-A), [`PredictorUnit`]
//! (pooling-reuse predictor storage of Section IV-E), and [`LineBuffer`]
//! (dense 4/8-bit packing of Section IV-B).
//!
//! Network-level simulation goes through one entry point: the
//! [`SimSession`] builder. Every session is **statically partitioned**
//! ([`partition`]) into cost-balanced contiguous layer shards that run
//! concurrently on the `drq_tensor::parallel` scoped-thread pool with
//! per-shard virtual clocks; shard event streams merge deterministically,
//! so reports and traces are byte-identical at any shard or thread count.
//!
//! For reliability studies, the [`faults`] module injects seeded,
//! replayable faults (bit flips, stuck-at bits, dropped DRAM bursts,
//! spurious stalls) under a [`FaultPlan`]; arming one on a session
//! (`.faults(plan)`) yields a structured [`ReliabilityReport`].
//! User-reachable construction paths report typed [`SimError`]s via
//! `try_*` counterparts of every panicking constructor.
//!
//! # Examples
//!
//! ```
//! use drq_sim::{ArchConfig, DrqAccelerator, SimSession};
//! use drq_models::zoo::{self, InputRes};
//!
//! let accel = DrqAccelerator::new(ArchConfig::paper_default());
//! let net = zoo::lenet5();
//! let run = SimSession::new(&accel, &net).seed(42).run().unwrap();
//! assert!(run.report().total_cycles() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accelerator;
mod area;
pub mod metrics;
mod dataflow;
mod dram;
mod energy;
mod error;
pub mod faults;
mod im2col_engine;
mod line_buffer;
mod output_buffer;
mod page;
pub mod partition;
mod pe;
mod predictor_unit;
mod session;
mod systolic;
mod timing;

pub use accelerator::{
    ArchBuilder, ArchConfig, BatchSimSummary, DrqAccelerator, LayerReport, NetworkSimReport,
    ReliabilityReport,
};
pub use error::SimError;
pub use partition::{PartitionPlan, Partitions};
pub use session::{SharedSession, SimRun, SimSession};
pub use faults::{FaultCounters, FaultInjector, FaultPlan, FaultRule, FaultSite};
pub use area::AreaModel;
pub use dataflow::{compare_dataflows, estimate_traffic, Dataflow, TrafficReport, OUTPUT_BUFFER_POSITIONS};
pub use dram::{bandwidth_report, BandwidthReport, DramModel};
pub use im2col_engine::Im2ColEngine;
pub use output_buffer::{OutputBuffer, SubKernelPlan};
pub use page::{PageSimulator, PageTrace};
pub use energy::{dram_activation_bytes, EnergyBreakdown, EnergyModel};
pub use line_buffer::{LineBuffer, PackedStream};
pub use pe::MultiPrecisionPe;
pub use predictor_unit::PredictorUnit;
pub use systolic::{SimTrace, StreamElement, SystolicArray};
pub use timing::{LayerCycleModel, LayerCycles};
