//! Area model (Table II of the paper).
//!
//! Unit areas of INT4/INT8/INT16 MACs under TSMC 45 nm, and the iso-area PE
//! budgets that give Eyeriss 224 INT16 MACs, BitFusion/DRQ 3168 INT4 MACs
//! and OLAccel 2448 INT4 + 51 INT16 MACs inside the same 0.32 mm².

use drq_quant::Precision;

/// MAC-unit areas and the shared silicon budget.
///
/// # Examples
///
/// ```
/// use drq_sim::AreaModel;
/// use drq_quant::Precision;
///
/// let area = AreaModel::tsmc45();
/// assert_eq!(area.mac_area_um2(Precision::Int16), 1423.0);
/// // Iso-area budget fits ~224 INT16 MACs (Eyeriss row of Table II).
/// assert_eq!(area.max_units(Precision::Int16), 224);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    int4_um2: f64,
    int8_um2: f64,
    int16_um2: f64,
    budget_um2: f64,
}

impl AreaModel {
    /// The paper's TSMC 45 nm numbers: INT4/INT8/INT16 MAC = 100.5 / 377.5 /
    /// 1423 µm², total budget 0.32 mm².
    pub fn tsmc45() -> Self {
        Self {
            int4_um2: 100.5,
            int8_um2: 377.5,
            int16_um2: 1423.0,
            budget_um2: 0.32e6,
        }
    }

    /// Creates a model with custom areas (µm²) and budget (µm²).
    ///
    /// # Panics
    ///
    /// Panics if any area or the budget is non-positive.
    pub fn new(int4_um2: f64, int8_um2: f64, int16_um2: f64, budget_um2: f64) -> Self {
        assert!(
            int4_um2 > 0.0 && int8_um2 > 0.0 && int16_um2 > 0.0 && budget_um2 > 0.0,
            "areas and budget must be positive"
        );
        Self { int4_um2, int8_um2, int16_um2, budget_um2 }
    }

    /// Area of one MAC at the given precision, in µm².
    pub fn mac_area_um2(&self, precision: Precision) -> f64 {
        match precision {
            Precision::Int4 => self.int4_um2,
            Precision::Int8 => self.int8_um2,
            Precision::Int16 => self.int16_um2,
        }
    }

    /// The shared area budget in µm².
    pub fn budget_um2(&self) -> f64 {
        self.budget_um2
    }

    /// Maximum homogeneous MAC count that fits the budget.
    pub fn max_units(&self, precision: Precision) -> usize {
        (self.budget_um2 / self.mac_area_um2(precision)) as usize
    }

    /// Area consumed by a heterogeneous mix of MACs, in µm².
    pub fn mixed_area_um2(&self, int4: usize, int8: usize, int16: usize) -> f64 {
        int4 as f64 * self.int4_um2 + int8 as f64 * self.int8_um2 + int16 as f64 * self.int16_um2
    }

    /// Whether a heterogeneous mix fits the budget.
    pub fn fits(&self, int4: usize, int8: usize, int16: usize) -> bool {
        self.mixed_area_um2(int4, int8, int16) <= self.budget_um2
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::tsmc45()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_budgets_reproduce() {
        let a = AreaModel::tsmc45();
        // Eyeriss: 224 INT16 MACs.
        assert_eq!(a.max_units(Precision::Int16), 224);
        // BitFusion / DRQ: Table II configures 3168 INT4 MACs, which must
        // fit (the theoretical max is slightly higher, 3184).
        assert!(a.max_units(Precision::Int4) >= 3168);
        assert!(a.fits(3168, 0, 0));
        // OLAccel: 2448 INT4 + 51 INT16.
        assert!(a.fits(2448, 0, 51));
        // But not much more.
        assert!(!a.fits(2448, 0, 80));
    }

    #[test]
    fn int16_mac_about_16x_int4() {
        let a = AreaModel::tsmc45();
        let ratio = a.mac_area_um2(Precision::Int16) / a.mac_area_um2(Precision::Int4);
        // "an INT16 MAC unit is almost 16X larger than an INT4 MAC unit".
        assert!(ratio > 13.0 && ratio < 16.0, "{ratio}");
    }

    #[test]
    fn mixed_area_is_linear() {
        let a = AreaModel::tsmc45();
        let x = a.mixed_area_um2(10, 5, 2);
        assert!((x - (10.0 * 100.5 + 5.0 * 377.5 + 2.0 * 1423.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_budget() {
        let _ = AreaModel::new(1.0, 2.0, 4.0, 0.0);
    }
}
