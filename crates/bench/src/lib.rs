//! Benchmark harness for the DRQ reproduction.
//!
//! Each table and figure of the paper's evaluation has a dedicated binary
//! under `src/bin/` (see `DESIGN.md` for the experiment index), plus
//! Criterion micro-benchmarks under `benches/`. This library hosts the
//! shared harness utilities: table rendering, run configuration and the
//! Table III per-network DRQ operating points.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

pub use harness::{
    network_operating_point, paper_networks, render_table, ObservabilityArgs, RunScale,
};
