//! Diagnostic: per-layer sensitive fraction / int4 fraction / cycles for
//! ResNet-18 (development aid; not part of the paper's tables).
use drq::models::zoo::{self, InputRes};
use drq::sim::ArchConfig;
use drq_bench::network_operating_point;

fn main() {
    let net = zoo::resnet18(InputRes::Imagenet);
    let report = ArchConfig::builder()
        .drq(network_operating_point("ResNet-18"))
        .build()
        .session(&net)
        .seed(88)
        .run()
        .expect("clean simulation cannot fail")
        .into_report();
    println!("{:<16} {:>6} {:>8} {:>8} {:>10} {:>8} {:>8}", "layer", "in_hw", "sens%", "int4%", "cycles", "i4steps", "i8steps");
    for (l, spec) in report.layers.iter().zip(&net.layers) {
        println!(
            "{:<16} {:>6} {:>7.1}% {:>7.1}% {:>10} {:>8} {:>8}",
            l.name,
            format!("{}x{}", spec.in_h, spec.in_w),
            l.sensitive_fraction * 100.0,
            l.cycles.int4_fraction() * 100.0,
            l.cycles.total_cycles(),
            l.cycles.int4_steps,
            l.cycles.int8_steps,
        );
    }
}
