//! Kernel micro-benchmarks for the compute backend hot path.
//!
//! Times the three kernels that dominate DRQ training and calibration —
//! GEMM, im2col and the conv forward/backward pair — with
//! `std::time::Instant`, and prints one line of JSON so the numbers can be
//! tracked across commits (`BENCH_*.json` trajectory files).
//!
//! The GEMM shape (256x1152x196) is a ResNet conv layer lowered through
//! im2col: 256 output channels, 128*3*3 = 1152 reduction, 14x14 spatial.
//! Three variants are measured:
//!
//! - `gemm_naive_ms`    — the seed's reference triple loop
//!   ([`drq::tensor::matmul_reference`]);
//! - `gemm_blocked_1t_ms` — the cache-blocked kernel pinned to one thread
//!   (isolates the blocking/packing win);
//! - `gemm_blocked_ms`  — the same kernel at full `DRQ_THREADS`.
//!
//! Run with `--release`; debug timings are meaningless.

use std::time::Instant;

use drq::nn::Conv2d;
use drq::telemetry::Report;
use drq::tensor::{
    im2col, int4_matmul, int8_matmul, int8_matmul_reference, int_kernel_name, matmul,
    matmul_reference, parallel, Im2ColLayout, Int4Packed, Shape4, Tensor, XorShiftRng,
};
use drq_bench::ObservabilityArgs;

/// Median-of-`reps` wall time in milliseconds for `f`.
fn time_ms<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    // One untimed warm-up to populate caches and spawn nothing lazily.
    f();
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let obs = ObservabilityArgs::from_env_args();
    let reps: usize = std::env::var("DRQ_BENCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let threads = parallel::max_threads();

    let mut rng = XorShiftRng::new(99);
    // GEMM: 256x1152 * 1152x196 (ResNet-ish im2col'd conv layer).
    let (m, k, n) = (256usize, 1152usize, 196usize);
    let a = Tensor::from_fn(&[m, k], |_| rng.next_f32() - 0.5);
    let b = Tensor::from_fn(&[k, n], |_| rng.next_f32() - 0.5);

    let gemm_naive_ms = time_ms(reps, || {
        std::hint::black_box(matmul_reference(&a, &b));
    });
    parallel::set_max_threads(1);
    let gemm_blocked_1t_ms = time_ms(reps, || {
        std::hint::black_box(matmul(&a, &b));
    });
    parallel::set_max_threads(0);
    let gemm_blocked_ms = time_ms(reps, || {
        std::hint::black_box(matmul(&a, &b));
    });

    // Correctness guard: the timed kernel must agree with the oracle up to
    // reassociation error (blocking changes the f32 accumulation order).
    let want = matmul_reference(&a, &b);
    let got = matmul(&a, &b);
    let tol = 1e-4 * (k as f32).sqrt();
    for (w, g) in want.as_slice().iter().zip(got.as_slice()) {
        assert!((w - g).abs() <= tol, "blocked GEMM diverged from reference: {w} vs {g}");
    }

    // Integer tier on the same shape: full-range i8 codes, plus the
    // nibble-packed INT4 left operand the mixed conv's insensitive
    // regions use. 1-thread timings are the tier-vs-tier comparison CI
    // gates on (single-core speedup, no parallel scaling mixed in).
    let ai = Tensor::from_fn(&[m, k], |_| (rng.next_u64() & 0xff) as u8 as i8);
    let bi = Tensor::from_fn(&[k, n], |_| (rng.next_u64() & 0xff) as u8 as i8);
    let a4 = Int4Packed::pack(&Tensor::from_fn(&[m, k], |_| ((rng.next_u64() % 16) as i64 - 8) as i8));
    parallel::set_max_threads(1);
    let int8_gemm_1t_ms = time_ms(reps, || {
        std::hint::black_box(int8_matmul(&ai, &bi));
    });
    let int4_gemm_1t_ms = time_ms(reps, || {
        std::hint::black_box(int4_matmul(&a4, &bi));
    });
    parallel::set_max_threads(0);
    let int8_gemm_ms = time_ms(reps, || {
        std::hint::black_box(int8_matmul(&ai, &bi));
    });

    // Integer guard is exact: blocked tier must match the naive wrapping
    // oracle bit-for-bit.
    assert_eq!(
        int8_matmul(&ai, &bi).as_slice(),
        int8_matmul_reference(&ai, &bi).as_slice(),
        "int8 GEMM tier diverged from the integer oracle"
    );

    // im2col: batch of 8 32-channel 56x56 images, 3x3 stride-1 pad-1.
    let shape = Shape4::new(8, 32, 56, 56);
    let layout = Im2ColLayout::new(shape, 3, 3, 1, 1);
    let x = Tensor::from_fn(&[8, 32, 56, 56], |_| rng.next_f32() - 0.5);
    let im2col_ms = time_ms(reps, || {
        for img in 0..8 {
            std::hint::black_box(im2col(&x, &layout, img));
        }
    });

    // Conv forward/backward: 32->64 3x3 on a batch of 8 28x28 images.
    let mut conv = Conv2d::new(32, 64, 3, 1, 1, 7);
    let cx = Tensor::from_fn(&[8, 32, 28, 28], |_| rng.next_f32() - 0.5);
    let conv_forward_ms = time_ms(reps, || {
        std::hint::black_box(conv.forward(&cx, true));
    });
    // `backward` consumes the cached forward activation, so time the
    // forward+backward pair and report the difference.
    let gy = Tensor::from_fn(&[8, 64, 28, 28], |_| rng.next_f32() - 0.5);
    let pair_ms = time_ms(reps, || {
        conv.forward(&cx, true);
        std::hint::black_box(conv.backward(&gy));
    });
    let conv_backward_ms = (pair_ms - conv_forward_ms).max(0.0);

    let speedup_1t = gemm_naive_ms / gemm_blocked_1t_ms;
    let speedup = gemm_naive_ms / gemm_blocked_ms;
    // Tier comparison: int8 packed GEMM vs the f32 blocked GEMM, both
    // single-threaded on the standard shape (the CI gate and the issue's
    // >= 1.5x acceptance bar).
    let int8_speedup_vs_f32_1t = gemm_blocked_1t_ms / int8_gemm_1t_ms;
    let int8_speedup_vs_f32 = gemm_blocked_ms / int8_gemm_ms;
    let int_kernel = int_kernel_name();
    // The one-line stdout format (keyed on "bench") is what the trajectory
    // tooling greps for; keep it stable independently of --metrics. The
    // "tier" field marks that both compute tiers are covered.
    println!(
        "{{\"bench\":\"kernel_microbench\",\"tier\":\"f32+int\",\"threads\":{threads},\
         \"reps\":{reps},\
         \"gemm_m\":{m},\"gemm_k\":{k},\"gemm_n\":{n},\
         \"gemm_naive_ms\":{gemm_naive_ms:.3},\
         \"gemm_blocked_1t_ms\":{gemm_blocked_1t_ms:.3},\
         \"gemm_blocked_ms\":{gemm_blocked_ms:.3},\
         \"gemm_speedup_1t\":{speedup_1t:.2},\"gemm_speedup\":{speedup:.2},\
         \"int_kernel\":\"{int_kernel}\",\
         \"int8_gemm_1t_ms\":{int8_gemm_1t_ms:.3},\
         \"int8_gemm_ms\":{int8_gemm_ms:.3},\
         \"int4_gemm_1t_ms\":{int4_gemm_1t_ms:.3},\
         \"int8_speedup_vs_f32_1t\":{int8_speedup_vs_f32_1t:.2},\
         \"int8_speedup_vs_f32\":{int8_speedup_vs_f32:.2},\
         \"im2col_ms\":{im2col_ms:.3},\
         \"conv_forward_ms\":{conv_forward_ms:.3},\
         \"conv_backward_ms\":{conv_backward_ms:.3}}}"
    );

    let mut report = Report::new("kernel_microbench");
    report
        .push("tier", "f32+int")
        .push("threads", threads)
        .push("reps", reps)
        .push("gemm_m", m)
        .push("gemm_k", k)
        .push("gemm_n", n)
        .push("gemm_naive_ms", gemm_naive_ms)
        .push("gemm_blocked_1t_ms", gemm_blocked_1t_ms)
        .push("gemm_blocked_ms", gemm_blocked_ms)
        .push("gemm_speedup_1t", speedup_1t)
        .push("gemm_speedup", speedup)
        .push("int_kernel", int_kernel)
        .push("int8_gemm_1t_ms", int8_gemm_1t_ms)
        .push("int8_gemm_ms", int8_gemm_ms)
        .push("int4_gemm_1t_ms", int4_gemm_1t_ms)
        .push("int8_speedup_vs_f32_1t", int8_speedup_vs_f32_1t)
        .push("int8_speedup_vs_f32", int8_speedup_vs_f32)
        .push("im2col_ms", im2col_ms)
        .push("conv_forward_ms", conv_forward_ms)
        .push("conv_backward_ms", conv_backward_ms);
    obs.write_report(report).expect("writing --metrics output");
}
