//! Table III — region size and average threshold chosen per network.
//!
//! Runs the Section III-D trial-and-error loop (start large, evaluate,
//! halve threshold or region alternately until accuracy meets the target)
//! against each of the six topologies, using the trained ResNet-8 stand-in
//! for the accuracy signal and the full-topology simulation for the 4-bit
//! percentage, then prints the chosen operating point next to the paper's.

use drq::baselines::{evaluate_scheme, QuantScheme};
use drq::core::dse::explore;
use drq::core::{DrqConfig, RegionSize};
use drq::models::zoo::InputRes;
use drq::models::{resnet8, train, Dataset, DatasetKind, TrainConfig};
use drq::sim::ArchConfig;
use drq_bench::{network_operating_point, paper_networks, render_table, RunScale};

fn main() {
    let scale = RunScale::from_env();
    println!("Table III reproduction: DSE-chosen region size and threshold\n");

    let train_set = Dataset::generate(DatasetKind::Shapes, scale.train_size(), 601);
    let eval_set = Dataset::generate(DatasetKind::Shapes, scale.eval_size(), 602);
    let mut net = resnet8(10, 19);
    let cfg = TrainConfig { epochs: scale.epochs(), ..TrainConfig::default() };
    let report = train(&mut net, &train_set, &eval_set, &cfg);
    let target = report.eval_accuracy - 0.01;
    println!(
        "accuracy target: FP32 ({:.1}%) - 1% = {:.1}%\n",
        report.eval_accuracy * 100.0,
        target * 100.0
    );

    let mut rows = Vec::new();
    for topology in paper_networks(InputRes::Imagenet) {
        // Start large relative to the stand-in's activation statistics
        // (its threshold knee sits near 2; see EXPERIMENTS.md).
        let outcome = explore(
            RegionSize::new(32, 32),
            16.0,
            target,
            12,
            &mut |region, threshold| {
                let drq_cfg = DrqConfig::new(region, threshold);
                let acc =
                    evaluate_scheme(&mut net, &QuantScheme::Drq(drq_cfg), &eval_set, 20).accuracy;
                let accel = ArchConfig::builder().drq(drq_cfg).build();
                let sim = accel
                    .session(&topology)
                    .seed(66)
                    .run()
                    .expect("clean simulation cannot fail")
                    .into_report();
                (acc, sim.int4_fraction())
            },
        );
        let paper = network_operating_point(&topology.name);
        rows.push(vec![
            topology.name.clone(),
            outcome.region.to_string(),
            format!("{:.1}", outcome.threshold),
            format!("{:.1}%", outcome.int4_fraction * 100.0),
            format!("{}", outcome.iterations),
            format!("{}", outcome.converged),
            format!("{} / {:.0}", paper.base_region(), paper.base_threshold()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "network",
                "region",
                "threshold",
                "4-bit %",
                "iters",
                "converged",
                "paper (region/thr)"
            ],
            &rows
        )
    );
    println!(
        "\nThe paper notes the loop \"can always find the satisfactory values\n\
         within a few iterations\"; the iters column checks that. Absolute\n\
         chosen values differ from Table III because the accuracy signal\n\
         comes from the stand-in network (see DESIGN.md substitutions)."
    );
}
