//! Fig. 14 — impact of the sensitivity threshold on ResNet-18.
//!
//! Sweeps the threshold and reports the three quantities the paper trades
//! off: 4-bit computation percentage (higher is better), stall ratio in the
//! systolic array (lower is better), and NN accuracy (higher is better).
//! The paper finds an optimal point at a mid-range threshold; ours is
//! selected the same way ([`drq::core::dse::best_point`]).
//!
//! 4-bit % and stall ratio come from simulating the full ResNet-18 topology;
//! accuracy comes from the trained ResNet-8 stand-in at the same
//! region/threshold configuration.

use drq::core::dse::{best_point, SweepPoint};
use drq::core::{DrqConfig, RegionSize};
use drq::baselines::{evaluate_scheme, QuantScheme};
use drq::models::zoo::{self, InputRes};
use drq::models::{resnet8, train, Dataset, DatasetKind, TrainConfig};
use drq::sim::ArchConfig;
use drq::tensor::parallel;
use drq_bench::{render_table, ObservabilityArgs, RunScale};

fn main() {
    let scale = RunScale::from_env();
    let obs = ObservabilityArgs::from_env_args();
    println!("Fig. 14 reproduction: threshold sweep on ResNet-18 (region 4x16)\n");

    // Trained accuracy stand-in.
    let train_set = Dataset::generate(DatasetKind::Shapes, scale.train_size(), 401);
    let eval_set = Dataset::generate(DatasetKind::Shapes, scale.eval_size(), 402);
    let mut net = resnet8(10, 13);
    let cfg = TrainConfig { epochs: scale.epochs(), ..TrainConfig::default() };
    let report = train(&mut net, &train_set, &eval_set, &cfg);
    println!("stand-in FP32 accuracy: {:.1}%\n", report.eval_accuracy * 100.0);

    // Full-topology simulation target.
    let topology = zoo::resnet18(InputRes::Imagenet);
    let region = RegionSize::new(4, 16);
    let thresholds = [0.5f32, 1.0, 2.0, 5.0, 10.0, 21.0, 40.0, 80.0, 127.0];

    let mut rows = Vec::new();
    // Threshold candidates are independent, so they evaluate concurrently;
    // each worker clones the trained stand-in (the evaluator must be
    // side-effect free) and results come back in threshold order.
    let evals = parallel::par_map(thresholds.len(), |i| {
        let t = thresholds[i];
        let drq_cfg = DrqConfig::new(region, t);
        let accel = ArchConfig::builder().drq(drq_cfg).build();
        let sim = accel
            .session(&topology)
            .seed(55)
            .run()
            .expect("clean simulation cannot fail")
            .into_report();
        let mut candidate = net.clone();
        let acc = evaluate_scheme(&mut candidate, &QuantScheme::Drq(drq_cfg), &eval_set, 20)
            .accuracy;
        (acc, sim.int4_fraction(), sim.stall_ratio())
    });
    let points: Vec<SweepPoint> = thresholds
        .iter()
        .zip(&evals)
        .map(|(&t, &(accuracy, int4_fraction, _))| SweepPoint {
            threshold: t,
            region,
            accuracy,
            int4_fraction,
        })
        .collect();
    let stall_by_threshold: Vec<f64> = evals.iter().map(|e| e.2).collect();
    for (p, stall) in points.iter().zip(&stall_by_threshold) {
        rows.push(vec![
            format!("{}", p.threshold),
            format!("{:.1}%", p.int4_fraction * 100.0),
            format!("{:.2}%", stall * 100.0),
            format!("{:.1}%", p.accuracy * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(&["threshold", "4-bit %", "stall ratio", "accuracy"], &rows)
    );

    let floor = report.eval_accuracy - 0.01;
    match best_point(&points, floor) {
        Some(best) => println!(
            "optimal point (max 4-bit % with accuracy >= FP32 - 1%): threshold {} \
             (4-bit {:.1}%, accuracy {:.1}%)",
            best.threshold,
            best.int4_fraction * 100.0,
            best.accuracy * 100.0
        ),
        None => println!("no threshold met the accuracy floor {:.1}%", floor * 100.0),
    }
    println!(
        "\nExpected shape (paper): 4-bit % rises and stall ratio falls as the\n\
         threshold grows; accuracy degrades at large thresholds; the optimum\n\
         sits mid-range (paper: 0.025 on its normalized scale ~ tens of INT8\n\
         codes on ours)."
    );

    let mut report = drq::core::dse::sweep_report("threshold", &points);
    report.push("network", topology.name.as_str()).push(
        "stall_ratios",
        drq::telemetry::Json::Array(
            stall_by_threshold.iter().map(|&s| drq::telemetry::Json::from(s)).collect(),
        ),
    );
    obs.write_report(report).expect("writing --metrics output");
}
