//! Fig. 11 — per-network NN accuracy of the four schemes and the 8/4-bit
//! computation split.
//!
//! Accuracy comes from the trained stand-in networks (LeNet-5 / ResNet-8,
//! see DESIGN.md's substitution table): each accelerator's quantization
//! scheme is applied to the same trained weights. The bit-mix percentages
//! come from simulating the six full-scale topologies at their Table III
//! operating points with synthesized feature maps.

use drq::baselines::{evaluate_scheme, QuantScheme};
use drq::core::{calibrate_thresholds, RegionSize};
use drq::models::zoo::InputRes;
use drq::models::{default_standin, train, Dataset, DatasetKind, TrainConfig};
use drq::sim::ArchConfig;
use drq_bench::{network_operating_point, paper_networks, render_table, RunScale};

/// Picks the most INT4-heavy calibration target whose accuracy stays
/// within 1% of the FP32 reference (falling back to the most accurate).
fn select_schedule(
    net: &mut drq::nn::Network,
    calib_x: &drq::tensor::Tensor<f32>,
    eval_set: &Dataset,
    fp32_accuracy: f64,
) -> drq::core::LayerThresholds {
    let mut best: Option<(f64, f64, drq::core::LayerThresholds)> = None;
    for target in [0.1, 0.2, 0.35, 0.5, 0.7, 0.85, 0.95] {
        let schedule = calibrate_thresholds(net, calib_x, RegionSize::new(4, 4), target);
        let r = evaluate_scheme(
            net,
            &QuantScheme::DrqCalibrated(schedule.clone()),
            eval_set,
            20,
        );
        let ok = r.accuracy >= fp32_accuracy - 0.01;
        let better = match &best {
            None => true,
            Some((acc, int4, _)) => {
                if ok && *acc >= fp32_accuracy - 0.01 {
                    r.int4_fraction > *int4
                } else if ok {
                    true
                } else {
                    r.accuracy > *acc
                }
            }
        };
        if better {
            best = Some((r.accuracy, r.int4_fraction, schedule));
        }
    }
    best.expect("at least one target evaluated").2
}

fn accuracy_block(kind: DatasetKind, label: &str, scale: RunScale) {
    let train_set = Dataset::generate(kind, scale.train_size(), 201);
    let eval_set = Dataset::generate(kind, scale.eval_size(), 202);
    let mut net = default_standin(kind, 5);
    let cfg = TrainConfig { epochs: scale.epochs(), ..TrainConfig::default() };
    let report = train(&mut net, &train_set, &eval_set, &cfg);

    println!(
        "\n--- accuracy on {label} (stand-in trained to {:.1}% FP32) ---",
        report.eval_accuracy * 100.0
    );
    // DRQ deploys calibrated per-layer thresholds (Section VI-B2). The
    // sensitive-fraction target is itself chosen DSE-style: try a few
    // targets, keep the most INT4-heavy one whose accuracy stays within 1%
    // of FP32 on a validation slice.
    let (calib_x, _) = train_set.batch(0, train_set.len().min(32));
    let schedule = select_schedule(&mut net, &calib_x, &eval_set, report.eval_accuracy);
    println!(
        "(calibrated per-layer thresholds, avg {:.1} — the Table III quantity)",
        schedule.average()
    );
    let schemes = [
        QuantScheme::Fp32,
        QuantScheme::Eyeriss,
        QuantScheme::BitFusion,
        QuantScheme::OlAccel,
        QuantScheme::DrqCalibrated(schedule),
    ];
    let mut rows = Vec::new();
    for scheme in &schemes {
        let r = evaluate_scheme(&mut net, scheme, &eval_set, 20);
        rows.push(vec![
            scheme.name().to_string(),
            format!("{:.1}%", r.accuracy * 100.0),
            format!("{:+.1}%", (r.accuracy - report.eval_accuracy) * 100.0),
            format!("{:.1}%", r.int4_fraction * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(&["scheme", "accuracy", "vs FP32", "4-bit MACs"], &rows)
    );
}

fn bitmix_block(res: InputRes, label: &str) {
    println!("\n--- 8/4-bit computation split per network ({label}) ---");
    let mut rows = Vec::new();
    for net in paper_networks(res) {
        let accel = ArchConfig::builder().drq(network_operating_point(&net.name)).build();
        let report = accel
            .session(&net)
            .seed(77)
            .run()
            .expect("clean simulation cannot fail")
            .into_report();
        let frac = report.int4_fraction();
        rows.push(vec![
            net.name.clone(),
            format!("{:.1}%", frac * 100.0),
            format!("{:.1}%", (1.0 - frac) * 100.0),
            format!("{:.1}%", report.stall_ratio() * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(&["network", "INT4 MACs", "INT8 MACs", "stall ratio"], &rows)
    );
}

fn main() {
    let scale = RunScale::from_env();
    println!("Fig. 11 reproduction: scheme accuracy + 8/4-bit split");
    accuracy_block(DatasetKind::Shapes, "shapes ~ CIFAR-10", scale);
    accuracy_block(DatasetKind::Textures, "textures ~ ILSVRC-2012 proxy", scale);
    bitmix_block(InputRes::Imagenet, "ILSVRC-2012 input resolution");
    bitmix_block(InputRes::Cifar, "CIFAR-10 input resolution");
    println!(
        "\nExpected shape (paper): Eyeriss/BitFusion accuracy-neutral;\n\
         OLAccel loses several points; DRQ within ~1% of the reference\n\
         while ~85-95% of MACs run INT4."
    );
}
