//! Table II — accelerator configurations under the iso-area budget.
//!
//! Reproduces the PE counts of the four accelerators from the MAC-unit
//! areas (TSMC 45 nm: INT4/INT8/INT16 = 100.5/377.5/1423 µm²) and the
//! shared 0.32 mm² budget.

use drq::quant::Precision;
use drq::sim::{ArchConfig, AreaModel};
use drq_bench::render_table;

fn main() {
    let area = AreaModel::tsmc45();
    println!("Table II reproduction: iso-area accelerator configurations");
    println!(
        "MAC areas (um^2): INT4 = {}, INT8 = {}, INT16 = {}; budget = {:.2} mm^2\n",
        area.mac_area_um2(Precision::Int4),
        area.mac_area_um2(Precision::Int8),
        area.mac_area_um2(Precision::Int16),
        area.budget_um2() / 1e6
    );

    let drq_cfg = ArchConfig::paper_default();
    let rows = vec![
        vec![
            "Eyeriss".to_string(),
            format!("{}", area.max_units(Precision::Int16)),
            "INT16".to_string(),
            format!("{:.3}", area.mixed_area_um2(0, 0, 224) / 1e6),
        ],
        vec![
            "BitFusion".to_string(),
            "3168".to_string(),
            "INT4 (fusable)".to_string(),
            format!("{:.3}", area.mixed_area_um2(3168, 0, 0) / 1e6),
        ],
        vec![
            "OLAccel".to_string(),
            "2499 (2448+51)".to_string(),
            "INT4+INT16".to_string(),
            format!("{:.3}", area.mixed_area_um2(2448, 0, 51) / 1e6),
        ],
        vec![
            "DRQ".to_string(),
            format!(
                "{} ({} pages x {}x{})",
                drq_cfg.total_pes(),
                drq_cfg.pages,
                drq_cfg.rows,
                drq_cfg.cols
            ),
            "INT4 (4/8 dual-mode)".to_string(),
            format!("{:.3}", area.mixed_area_um2(3168, 0, 0) / 1e6),
        ],
    ];
    println!(
        "{}",
        render_table(&["accelerator", "# PEs", "bitwidth", "area (mm^2)"], &rows)
    );
    println!("Global buffer: 5 MB for all accelerators; 500 MHz PE clock.");
    assert!(area.fits(2448, 0, 51), "OLAccel mix must fit the budget");
    assert!(area.fits(3168, 0, 0), "DRQ/BitFusion mix must fit the budget");
}
