//! Fig. 2 — NN accuracy under segment-targeted noise.
//!
//! The paper trains ResNet-32 on CIFAR-10 and ILSVRC-2012, splits every
//! convolution input feature map into three magnitude segments (thresholds
//! at 20 %/80 % of the value distribution), adds noise of magnitude `u` to
//! the segments a pattern selects (e.g. "TFF" = only segment 0), and
//! measures accuracy. Expected shape: TFF collapses first (the large values
//! are sensitive); FFT tolerates the largest `u`; any pattern containing T
//! in position 0 tracks TFF.
//!
//! This reproduction trains the ResNet-8 stand-in on the CIFAR-like
//! `shapes` set and the ILSVRC-proxy `textures` set and injects the same
//! noise at every convolution input via the conv-override path.

use drq::models::{resnet8, train, Dataset, DatasetKind, TrainConfig};
use drq::nn::{accuracy, Network};
use drq::quant::{NoiseInjector, SegmentPattern, SegmentSplit};
use drq::tensor::XorShiftRng;
use drq_bench::{render_table, RunScale};

fn noisy_accuracy(
    net: &mut Network,
    data: &Dataset,
    pattern: &SegmentPattern,
    u: f32,
    seed: u64,
) -> f64 {
    let injector = NoiseInjector::new(pattern.clone(), u);
    let mut rng = XorShiftRng::new(seed);
    let mut correct = 0.0;
    let mut total = 0usize;
    for b in 0..data.batch_count(20) {
        let (x, y) = data.batch(b, 20);
        let logits = net.forward_conv_override(&x, &mut |_idx, conv, input| {
            let split = SegmentSplit::paper_default(input.as_slice());
            let noisy = injector.apply(input, &split, &mut rng);
            conv.forward_with_weights(&noisy, conv.weight())
        });
        correct += accuracy(&logits, &y) * y.len() as f64;
        total += y.len();
    }
    correct / total.max(1) as f64
}

fn run_dataset(kind: DatasetKind, label: &str, scale: RunScale) {
    let classes = kind.classes();
    let train_set = Dataset::generate(kind, scale.train_size(), 101);
    let eval_set = Dataset::generate(kind, scale.eval_size(), 102);
    let mut net = resnet8(classes, 7);
    let cfg = TrainConfig { epochs: scale.epochs(), ..TrainConfig::default() };
    let report = train(&mut net, &train_set, &eval_set, &cfg);
    println!(
        "\n=== Fig. 2 ({label}) — baseline accuracy {:.1}% ===",
        report.eval_accuracy * 100.0
    );

    let patterns = SegmentPattern::figure2_patterns();
    let us = [0.0f32, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 100.0];
    let mut headers: Vec<String> = vec!["u".to_string()];
    headers.extend(patterns.iter().map(|p| p.to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for &u in &us {
        let mut row = vec![format!("{u}")];
        for p in &patterns {
            let acc = noisy_accuracy(&mut net, &eval_set, p, u, 500 + (u * 100.0) as u64);
            row.push(format!("{:.3}", acc));
        }
        rows.push(row);
    }
    println!("{}", render_table(&header_refs, &rows));
}

fn main() {
    let scale = RunScale::from_env();
    println!("Fig. 2 reproduction: accuracy vs segment-noise magnitude u");
    println!("(segments split at the 20%/80% value percentiles; pattern");
    println!(" position 0 = largest values; T = noise injected)");
    run_dataset(DatasetKind::Shapes, "shapes ~ CIFAR-10", scale);
    run_dataset(DatasetKind::Textures, "textures ~ ILSVRC-2012 proxy", scale);
    println!(
        "\nExpected qualitative result (paper): curves with T in position 0\n\
         (TFF/TFT/TTF/TTT) coincide and collapse at the smallest u; FTF\n\
         degrades later; FFT only at very large u."
    );
}
