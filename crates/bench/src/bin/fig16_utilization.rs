//! Fig. 16 — ResNet-18 utilization breakdown per block.
//!
//! Breaks the total execution cycles into INT4 compute, INT8 compute,
//! weight loading and data loading (pipeline fill), per ResNet-18 block
//! (C1, B1–B4). Expected shape (paper): compute dominates everywhere; C1 is
//! the most sensitive block (INT8 share ~12 % of its cycles); weight
//! loading only matters in B4 (~4 %) where feature maps are small.

use drq::models::zoo::{self, InputRes};
use drq::sim::ArchConfig;
use drq_bench::{network_operating_point, render_table};

fn main() {
    println!("Fig. 16 reproduction: ResNet-18 utilization breakdown per block\n");
    let net = zoo::resnet18(InputRes::Imagenet);
    let report = ArchConfig::builder()
        .drq(network_operating_point("ResNet-18"))
        .build()
        .session(&net)
        .seed(88)
        .run()
        .expect("clean simulation cannot fail")
        .into_report();
    let breakdown = report.block_breakdown();
    let grand_total: u64 = breakdown.values().map(|v| v.iter().sum::<u64>()).sum();

    let mut rows = Vec::new();
    for block in ["C1", "B1", "B2", "B3", "B4", "FC"] {
        let Some(v) = breakdown.get(block) else { continue };
        let block_total: u64 = v.iter().sum();
        let pct = |x: u64| format!("{:.1}%", 100.0 * x as f64 / block_total.max(1) as f64);
        rows.push(vec![
            block.to_string(),
            format!("{:.1}%", 100.0 * block_total as f64 / grand_total as f64),
            pct(v[0]),
            pct(v[1]),
            pct(v[2]),
            pct(v[3]),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "block",
                "share of total",
                "INT4 compute",
                "INT8 compute",
                "load W",
                "data load"
            ],
            &rows
        )
    );

    // Quantify the paper's two specific observations.
    let c1 = breakdown.get("C1").copied().unwrap_or_default();
    let c1_total: u64 = c1.iter().sum();
    println!(
        "\nC1 INT8 share of its cycles: {:.1}% (paper: ~12%, C1 is the most sensitive block)",
        100.0 * c1[1] as f64 / c1_total.max(1) as f64
    );
    let b4 = breakdown.get("B4").copied().unwrap_or_default();
    let b4_total: u64 = b4.iter().sum();
    println!(
        "B4 weight-load share of its cycles: {:.1}% exposed after double buffering",
        100.0 * b4[2] as f64 / b4_total.max(1) as f64
    );
    // The paper accounts weight loads unoverlapped; report that view too.
    let b4_raw: u64 = report
        .layers
        .iter()
        .filter(|l| l.block == "B4")
        .map(|l| l.cycles.weight_load_raw_cycles)
        .sum();
    println!(
        "B4 weight-load share before overlap hiding: {:.1}% (paper: ~4%)",
        100.0 * b4_raw as f64 / (b4_total + b4_raw).max(1) as f64
    );
    println!(
        "total: {} cycles = {:.2} ms at {} MHz",
        report.total_cycles(),
        report.total_ms(),
        report.frequency_mhz
    );
}
