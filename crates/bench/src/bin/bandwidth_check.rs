//! Section V-B verification: "the required memory bandwidth is much
//! smaller than the typical memory bandwidth provided by DDR3", so the
//! accelerator sustains a non-blocking convolution at 500 MHz.

use drq::models::zoo::InputRes;
use drq::sim::{bandwidth_report, ArchConfig, DramModel};
use drq_bench::{network_operating_point, paper_networks, render_table};

fn main() {
    let ddr3 = DramModel::ddr3_1600();
    println!(
        "Section V-B check: per-network peak DRAM demand vs DDR3-1600\n\
         (sustainable {:.1} GB/s of {:.1} GB/s peak)\n",
        ddr3.sustainable_bytes_per_sec() / 1e9,
        ddr3.peak_gbps()
    );
    let mut rows = Vec::new();
    for net in paper_networks(InputRes::Imagenet) {
        let report = ArchConfig::builder()
            .drq(network_operating_point(&net.name))
            .build()
            .session(&net)
            .seed(21)
            .run()
            .expect("clean simulation cannot fail")
            .into_report();
        let bw = bandwidth_report(&net, &report, ddr3);
        let (peak_name, peak_bw) = bw.peak_layer().expect("layers");
        rows.push(vec![
            net.name.clone(),
            format!("{:.2}", bw.peak_conv_utilization()),
            format!("{}", bw.non_blocking_convolutions()),
            format!("{peak_name} ({:.1} GB/s)", peak_bw / 1e9),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["network", "peak conv utilization", "non-blocking convs", "hottest layer"],
            &rows
        )
    );
    println!(
        "\nSingle-image FC layers (AlexNet/VGG heads) are weight-bandwidth\n\
         bound on every accelerator and sit outside the paper's claim, which\n\
         is scoped to \"a non-blocking convolution\"."
    );
}
