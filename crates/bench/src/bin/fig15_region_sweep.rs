//! Fig. 15 — impact of the sensitivity region size on ResNet-18.
//!
//! Sweeps the paper's five region shapes {4×w, 4×16, 32×32, 16×16, 4×4} and
//! reports 4-bit percentage, predictor storage overhead (normalized to the
//! 32×32 case, as in the paper) and NN accuracy. Expected shape: stripe
//! regions (4×w) minimize storage; 4×16 balances all three axes; 4×4 and
//! 32×32 both hurt (noise-sensitive vs over-marking).

use drq::baselines::{evaluate_scheme, QuantScheme};
use drq::core::dse::sweep_regions_parallel;
use drq::core::{DrqConfig, RegionSize};
use drq::models::zoo::{self, InputRes};
use drq::models::{resnet8, train, Dataset, DatasetKind, TrainConfig};
use drq::sim::{ArchConfig, PredictorUnit};
use drq_bench::{render_table, ObservabilityArgs, RunScale};

fn main() {
    let scale = RunScale::from_env();
    let obs = ObservabilityArgs::from_env_args();
    println!("Fig. 15 reproduction: region-size sweep on ResNet-18\n");

    let train_set = Dataset::generate(DatasetKind::Shapes, scale.train_size(), 501);
    let eval_set = Dataset::generate(DatasetKind::Shapes, scale.eval_size(), 502);
    let mut net = resnet8(10, 17);
    let cfg = TrainConfig { epochs: scale.epochs(), ..TrainConfig::default() };
    let report = train(&mut net, &train_set, &eval_set, &cfg);
    println!("stand-in FP32 accuracy: {:.1}%\n", report.eval_accuracy * 100.0);

    let topology = zoo::resnet18(InputRes::Imagenet);
    // Representative feature-map width for the predictor storage metric
    // (ResNet-18's dominant 56-wide stage).
    let fm_w = 56;
    let regions = [
        RegionSize::stripe(4, fm_w), // 4 x w
        RegionSize::new(4, 16),
        RegionSize::new(32, 32),
        RegionSize::new(16, 16),
        RegionSize::new(4, 4),
    ];
    // Two threshold domains (see EXPERIMENTS.md): the full-topology
    // simulation runs at the Table III operating point (21); the stand-in
    // accuracy is evaluated at its own calibrated knee (2), since its
    // activation statistics sit lower than the paper's ImageNet models.
    let sim_threshold = 21.0;
    let acc_threshold = 2.0;
    let base_storage = PredictorUnit::new(RegionSize::new(32, 32), 2).storage_bytes(fm_w) as f64;

    // Region candidates are independent: the parallel sweep requires a
    // side-effect-free evaluator, so each worker clones the trained
    // stand-in. Results come back in input order.
    let points = sweep_regions_parallel(sim_threshold, &regions, |r, _t| {
        let accel = ArchConfig::builder().drq(DrqConfig::new(r, sim_threshold)).build();
        let sim = accel
            .session(&topology)
            .seed(56)
            .run()
            .expect("clean simulation cannot fail")
            .into_report();
        let mut candidate = net.clone();
        let acc = evaluate_scheme(
            &mut candidate,
            &QuantScheme::Drq(DrqConfig::new(r, acc_threshold)),
            &eval_set,
            20,
        )
        .accuracy;
        (acc, sim.int4_fraction())
    });

    let mut rows = Vec::new();
    for (p, r) in points.iter().zip(&regions) {
        let storage = PredictorUnit::new(*r, 2).storage_bytes(fm_w) as f64 / base_storage;
        let label = if r.y == fm_w && r.x == 4 {
            "4xw".to_string()
        } else {
            r.to_string()
        };
        rows.push(vec![
            label,
            format!("{:.1}%", p.int4_fraction * 100.0),
            format!("{:.2}", storage),
            format!("{:.1}%", p.accuracy * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["region", "4-bit %", "storage (norm. to 32x32)", "accuracy"],
            &rows
        )
    );
    println!(
        "\nExpected shape (paper): 4xw cheapest storage; 4x16 best overall\n\
         balance; 32x32 over-marks regions as sensitive (lower 4-bit %);\n\
         4x4 needs more INT8 to absorb single-pixel noise."
    );

    let mut report = drq::core::dse::sweep_report("region", &points);
    report.push("network", topology.name.as_str());
    obs.write_report(report).expect("writing --metrics output");
}
