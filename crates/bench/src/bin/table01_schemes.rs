//! Table I — qualitative comparison of quantization methods, with each
//! claimed property checked against this repository's implementations
//! (the table is qualitative in the paper; here every row is backed by an
//! executable witness).

use drq::core::{DrqConfig, DrqNetwork, RegionSize};
use drq::models::{lenet5, Dataset, DatasetKind};
use drq_bench::render_table;

fn main() {
    println!("Table I reproduction: comparison of quantization methods\n");
    let rows = vec![
        vec!["dynamic quantization".into(), "yes".into(), "no".into(), "no".into(), "no".into()],
        vec!["network-wise".into(), "yes".into(), "yes".into(), "yes".into(), "yes".into()],
        vec!["layer-wise".into(), "yes".into(), "yes".into(), "yes".into(), "no".into()],
        vec!["region-wise".into(), "yes".into(), "no".into(), "no".into(), "no".into()],
        vec!["value-wise".into(), "yes".into(), "yes".into(), "no".into(), "no".into()],
        vec!["bit-width".into(), "4/8".into(), "4/16".into(), "1/2/4/8".into(), "16".into()],
    ];
    println!(
        "{}",
        render_table(
            &["property", "DRQ", "OLAccel", "BitFusion", "Eyeriss"],
            &rows
        )
    );

    // Executable witness for the row that distinguishes DRQ: dynamic,
    // region-wise quantization — two different input images produce two
    // different INT4/INT8 splits through the same network, something no
    // static scheme can do.
    let net = lenet5(1);
    let cfg = DrqConfig::new(RegionSize::new(4, 4), 25.0);
    let mut drq = DrqNetwork::new(net, cfg);
    let data = Dataset::generate(DatasetKind::Digits, 8, 7);
    let mut splits = Vec::new();
    for i in 0..4 {
        let (x, _) = data.batch(i, 1);
        let (_, stats) = drq.forward(&x);
        splits.push(stats.totals());
    }
    println!("witness (dynamic, per-image bit mixes on four inputs):");
    for (i, s) in splits.iter().enumerate() {
        println!(
            "  image {i}: {:6} INT8 MACs, {:7} INT4 MACs ({:.1}% INT4)",
            s.int8_macs,
            s.int4_macs,
            s.int4_fraction() * 100.0
        );
    }
    let distinct: std::collections::BTreeSet<u64> =
        splits.iter().map(|s| s.int8_macs).collect();
    assert!(
        distinct.len() > 1,
        "bit mix did not vary across inputs — dynamic claim would be false"
    );
    println!("\nbit mix varies across inputs: dynamic region-wise quantization confirmed.");
}
