//! Fig. 13 — averages across the six networks: (a) accuracy loss,
//! (b) normalized performance and energy.
//!
//! Expected shape (paper): average accuracy loss — DRQ 0.3 % (CIFAR) /
//! 0.8 % (ILSVRC) vs OLAccel 1.6 % / 4.3 %; DRQ ~92 % faster than Eyeriss,
//! ~83 % than BitFusion, ~21 % than OLAccel; energy down 72 % / 49 % / 33 %.

use drq::baselines::{evaluate_scheme, Accelerator, BitFusion, Eyeriss, OlAccel, QuantScheme};
use drq::core::{calibrate_thresholds, RegionSize};
use drq::models::zoo::InputRes;
use drq::models::{default_standin, train, Dataset, DatasetKind, TrainConfig};
use drq::sim::ArchConfig;
use drq_bench::{network_operating_point, paper_networks, render_table, RunScale};

fn accuracy_loss(kind: DatasetKind, scale: RunScale) -> Vec<(String, f64)> {
    let train_set = Dataset::generate(kind, scale.train_size(), 301);
    let eval_set = Dataset::generate(kind, scale.eval_size(), 302);
    let mut net = default_standin(kind, 9);
    let cfg = TrainConfig { epochs: scale.epochs(), ..TrainConfig::default() };
    let _ = train(&mut net, &train_set, &eval_set, &cfg);
    let reference = evaluate_scheme(&mut net, &QuantScheme::Eyeriss, &eval_set, 20).accuracy;
    let (calib_x, _) = train_set.batch(0, train_set.len().min(32));
    // DSE-style target selection (see fig11): most INT4 subject to the
    // accuracy floor.
    let mut schedule = calibrate_thresholds(&mut net, &calib_x, RegionSize::new(4, 4), 0.5);
    let mut best = (0.0f64, -1.0f64);
    for target in [0.1, 0.2, 0.35, 0.5, 0.7, 0.85, 0.95] {
        let cand = calibrate_thresholds(&mut net, &calib_x, RegionSize::new(4, 4), target);
        let r = evaluate_scheme(&mut net, &QuantScheme::DrqCalibrated(cand.clone()), &eval_set, 20);
        let ok = r.accuracy >= reference - 0.01;
        let best_ok = best.0 >= reference - 0.01;
        // Prefer meeting the accuracy floor; among floor-meeting candidates
        // maximize the INT4 share; otherwise chase accuracy.
        let better = if ok && best_ok {
            r.int4_fraction > best.1
        } else if ok != best_ok {
            ok
        } else {
            r.accuracy > best.0
        };
        if better {
            best = (r.accuracy, r.int4_fraction);
            schedule = cand;
        }
    }
    [
        QuantScheme::Eyeriss,
        QuantScheme::BitFusion,
        QuantScheme::OlAccel,
        QuantScheme::DrqCalibrated(schedule),
    ]
    .iter()
    .map(|s| {
        let r = evaluate_scheme(&mut net, s, &eval_set, 20);
        (s.name().to_string(), (reference - r.accuracy).max(0.0))
    })
    .collect()
}

fn main() {
    let scale = RunScale::from_env();
    println!("Fig. 13 reproduction: cross-network averages\n");

    // (a) accuracy loss, lower is better.
    println!("--- (a) average accuracy loss (percentage points, lower is better) ---");
    let cifar = accuracy_loss(DatasetKind::Shapes, scale);
    let ilsvrc = accuracy_loss(DatasetKind::Textures, scale);
    let rows: Vec<Vec<String>> = cifar
        .iter()
        .zip(&ilsvrc)
        .map(|((name, c), (_, i))| {
            vec![
                name.clone(),
                format!("{:.1}", c * 100.0),
                format!("{:.1}", i * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["scheme", "shapes (~CIFAR)", "textures (~ILSVRC)"], &rows)
    );

    // (b) normalized performance and energy.
    println!("--- (b) average normalized cycles and energy (Eyeriss = 1.0) ---");
    let mut cyc = [0.0f64; 4];
    let mut en = [0.0f64; 4];
    let nets = paper_networks(InputRes::Imagenet);
    for net in &nets {
        let reports = [
            Eyeriss::new().simulate(net, 1),
            BitFusion::new().simulate(net, 1),
            OlAccel::new().simulate(net, 1),
            ArchConfig::builder()
                .drq(network_operating_point(&net.name))
                .build()
                .simulate(net, 1),
        ];
        let base_c = reports[0].total_cycles as f64;
        let base_e = reports[0].energy.total_pj();
        for (i, r) in reports.iter().enumerate() {
            cyc[i] += r.total_cycles as f64 / base_c;
            en[i] += r.energy.total_pj() / base_e;
        }
    }
    let n = nets.len() as f64;
    let rows: Vec<Vec<String>> = ["Eyeriss", "BitFusion", "OLAccel", "DRQ"]
        .iter()
        .enumerate()
        .map(|(i, name)| {
            vec![
                name.to_string(),
                format!("{:.3}", cyc[i] / n),
                format!("{:.3}", en[i] / n),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["accelerator", "norm. cycles", "norm. energy"], &rows)
    );

    let drq_vs = |i: usize| (1.0 - (cyc[3] / n) / (cyc[i] / n)) * 100.0;
    let drq_en = |i: usize| (1.0 - (en[3] / n) / (en[i] / n)) * 100.0;
    println!(
        "DRQ performance gain: {:.0}% vs Eyeriss, {:.0}% vs BitFusion, {:.0}% vs OLAccel",
        drq_vs(0),
        drq_vs(1),
        drq_vs(2)
    );
    println!(
        "DRQ energy reduction: {:.0}% vs Eyeriss, {:.0}% vs BitFusion, {:.0}% vs OLAccel",
        drq_en(0),
        drq_en(1),
        drq_en(2)
    );
    println!("(paper: 92%/83%/21% performance; 72%/49%/33% energy)");
}
