//! Fig. 12(a) — execution cycles of the four accelerators on the six
//! networks, normalized to Eyeriss.
//!
//! Expected shape (paper): DRQ fastest everywhere; ~92 % average gain over
//! Eyeriss, ~83 % over BitFusion, ~21 % over OLAccel.

use drq::baselines::{Accelerator, BitFusion, Eyeriss, OlAccel};
use drq::models::zoo::InputRes;
use drq::sim::ArchConfig;
use drq_bench::{network_operating_point, paper_networks, render_table};

fn main() {
    println!("Fig. 12(a) reproduction: normalized execution cycles (lower is better)\n");
    for res in [InputRes::Imagenet, InputRes::Cifar] {
        println!(
            "--- {} ---",
            match res {
                InputRes::Imagenet => "ILSVRC-2012 input resolution",
                InputRes::Cifar => "CIFAR-10 input resolution",
            }
        );
        let mut rows = Vec::new();
        let mut geo: [f64; 3] = [0.0; 3]; // log-sum of speedups over Eyeriss per accel
        let mut n = 0usize;
        for net in paper_networks(res) {
            let eyeriss = Eyeriss::new().simulate(&net, 1);
            let bitfusion = BitFusion::new().simulate(&net, 1);
            let olaccel = OlAccel::new().simulate(&net, 1);
            let drq = ArchConfig::builder()
                .drq(network_operating_point(&net.name))
                .build()
                .simulate(&net, 1);
            let base = eyeriss.total_cycles as f64;
            rows.push(vec![
                net.name.clone(),
                "1.000".to_string(),
                format!("{:.3}", bitfusion.total_cycles as f64 / base),
                format!("{:.3}", olaccel.total_cycles as f64 / base),
                format!("{:.3}", drq.total_cycles as f64 / base),
            ]);
            geo[0] += (bitfusion.total_cycles as f64 / base).ln();
            geo[1] += (olaccel.total_cycles as f64 / base).ln();
            geo[2] += (drq.total_cycles as f64 / base).ln();
            n += 1;
        }
        rows.push(vec![
            "geomean".to_string(),
            "1.000".to_string(),
            format!("{:.3}", (geo[0] / n as f64).exp()),
            format!("{:.3}", (geo[1] / n as f64).exp()),
            format!("{:.3}", (geo[2] / n as f64).exp()),
        ]);
        println!(
            "{}",
            render_table(
                &["network", "Eyeriss", "BitFusion", "OLAccel", "DRQ"],
                &rows
            )
        );
    }
    println!(
        "Expected ordering per row: DRQ < OLAccel < BitFusion < Eyeriss\n\
         (smaller = faster; the paper reports DRQ ~0.08x Eyeriss on average)."
    );
}
