//! Ablations of the DRQ design choices (beyond the paper's figures):
//!
//! 1. deep-layer rule (Section VI-B2) on vs off;
//! 2. stripe vs square regions at equal area (storage + cycles);
//! 3. pooling-reuse in the predictor vs a naive mean filter (op counts);
//! 4. dual-mode PEs vs a hypothetical all-INT8 array of equal area;
//! 5. WS vs OS vs IS dataflows (Section VII-A2's weight-stationary pick).

use drq::core::{DrqConfig, RegionSize};
use drq::models::zoo::{self, InputRes};
use drq::quant::Precision;
use drq::sim::{
    compare_dataflows, ArchConfig, AreaModel, Dataflow, PredictorUnit,
};
use drq_bench::render_table;

fn main() {
    let net = zoo::resnet18(InputRes::Imagenet);
    println!("DRQ design-choice ablations on ResNet-18 (ILSVRC resolution)\n");

    // 1. Deep-layer rule: the 2x2-region + threshold/5 behaviour for the
    //    last small-map layers.
    println!("--- ablation 1: deep-layer scaling rule ---");
    let with_rule = ArchConfig::builder()
        .drq(DrqConfig::new(RegionSize::new(4, 16), 21.0))
        .build()
        .session(&net)
        .seed(1)
        .run()
        .expect("clean simulation cannot fail")
        .into_report();
    let without_rule = ArchConfig::builder()
        .drq(DrqConfig::new(RegionSize::new(4, 16), 21.0).deep_layer_extent(0))
        .build()
        .session(&net)
        .seed(1)
        .run()
        .expect("clean simulation cannot fail")
        .into_report();
    println!(
        "{}",
        render_table(
            &["variant", "cycles", "INT4 %", "stall %"],
            &[
                vec![
                    "with deep rule".into(),
                    with_rule.total_cycles().to_string(),
                    format!("{:.1}", with_rule.int4_fraction() * 100.0),
                    format!("{:.2}", with_rule.stall_ratio() * 100.0),
                ],
                vec![
                    "without".into(),
                    without_rule.total_cycles().to_string(),
                    format!("{:.1}", without_rule.int4_fraction() * 100.0),
                    format!("{:.2}", without_rule.stall_ratio() * 100.0),
                ],
            ]
        )
    );

    // 2. Region shape at fixed area 64: stripe 4x16 vs square 8x8.
    println!("--- ablation 2: stripe vs square regions (equal 64-px area) ---");
    let mut rows = Vec::new();
    for region in [RegionSize::new(4, 16), RegionSize::new(8, 8), RegionSize::new(2, 32)] {
        let report = ArchConfig::builder()
            .drq(DrqConfig::new(region, 21.0))
            .build()
            .session(&net)
            .seed(1)
            .run()
            .expect("clean simulation cannot fail")
            .into_report();
        let storage = PredictorUnit::new(region, 2).storage_bytes(56);
        rows.push(vec![
            region.to_string(),
            report.total_cycles().to_string(),
            format!("{:.1}", report.int4_fraction() * 100.0),
            format!("{storage} B"),
        ]);
    }
    println!(
        "{}",
        render_table(&["region", "cycles", "INT4 %", "predictor staging"], &rows)
    );

    // 3. Predictor with pooling reuse vs naive mean filter.
    println!("--- ablation 3: pooling-reuse predictor vs naive mean filter ---");
    let p = PredictorUnit::new(RegionSize::new(4, 16), 2);
    let mut rows = Vec::new();
    for (h, w) in [(56usize, 56usize), (28, 28), (14, 14)] {
        let reuse = p.extra_ops_per_channel(h, w);
        let naive = p.naive_ops_per_channel(h, w);
        rows.push(vec![
            format!("{h}x{w}"),
            naive.to_string(),
            reuse.to_string(),
            format!("{:.1}x", naive as f64 / reuse.max(1) as f64),
        ]);
    }
    println!(
        "{}",
        render_table(&["feature map", "naive adds", "with pooling reuse", "saving"], &rows)
    );

    // 4. Dual-mode INT4 PEs vs an equal-area all-INT8 array (what giving up
    //    the INT4 fast path costs): 0.32 mm^2 fits 847 INT8 MACs.
    println!("--- ablation 4: dual-mode array vs iso-area all-INT8 array ---");
    let area = AreaModel::tsmc45();
    let int8_macs = area.max_units(Precision::Int8) as u64;
    let drq_cycles = with_rule.total_cycles();
    let all_int8_cycles = (net.total_macs() as f64 / (int8_macs as f64 * 0.9)).ceil() as u64;
    println!(
        "iso-area all-INT8 array: {int8_macs} MACs -> ~{all_int8_cycles} cycles\n\
         DRQ dual-mode array:     3168 PEs  -> {drq_cycles} cycles ({:.2}x faster)\n",
        all_int8_cycles as f64 / drq_cycles as f64
    );
    println!(
        "Reading: the INT4 fast path (plus the predictor steering it) is\n\
         what converts region sparsity into wall-clock speedup; a static\n\
         all-INT8 array of the same silicon cannot exploit it.\n"
    );

    // 5. Dataflow choice (Section VII-A2: WS applied in priority).
    println!("--- ablation 5: dataflow choice (global-buffer element accesses) ---");
    let mut rows = Vec::new();
    let mut ws_wins = 0usize;
    let mut total_convs = 0usize;
    for layer in net
        .layers
        .iter()
        .filter(|l| l.op == drq::models::LayerOp::Conv)
    {
        total_convs += 1;
        let ranked = compare_dataflows(layer, 16, 11, 16);
        if ranked[0].dataflow == Dataflow::WeightStationary {
            ws_wins += 1;
        }
    }
    for sample in ["conv1", "B3_b1_conv1", "B4_b2_conv2"] {
        if let Some(layer) = net.layers.iter().find(|l| l.name == sample) {
            let ranked = compare_dataflows(layer, 18, 11, 16);
            let fmt = |d: Dataflow| {
                ranked
                    .iter()
                    .find(|r| r.dataflow == d)
                    .map(|r| format!("{:.2}M", r.weighted_total() / 1e6))
                    .unwrap_or_default()
            };
            rows.push(vec![
                sample.to_string(),
                fmt(Dataflow::WeightStationary),
                fmt(Dataflow::OutputStationary),
                fmt(Dataflow::InputStationary),
                ranked[0].dataflow.short_name().to_string(),
            ]);
        }
    }
    println!("{}", render_table(&["layer", "WS", "OS", "IS", "best"], &rows));
    println!(
        "WS is the cheapest dataflow on {ws_wins}/{total_convs} of ResNet-18's conv\n\
         layers — the paper's \"applies WS in priority because the storage\n\
         overhead of weights is larger than input values\".\n"
    );

    // 6. Array organization at fixed PE count (is 16 pages of 18x11 the
    //    right shape for 3168 PEs?).
    println!("--- ablation 6: array organization (3168 PEs each) ---");
    let mut rows = Vec::new();
    for (pages, r, c) in [(16usize, 18usize, 11usize), (8, 18, 22), (32, 9, 11), (16, 9, 22), (4, 36, 22)] {
        let report = ArchConfig::builder()
            .geometry(pages, r, c)
            .drq(DrqConfig::new(RegionSize::new(4, 16), 21.0))
            .build()
            .session(&net)
            .seed(1)
            .run()
            .expect("clean simulation cannot fail")
            .into_report();
        rows.push(vec![
            format!("{pages} x {r}x{c}"),
            report.total_cycles().to_string(),
            format!("{:.2}%", report.stall_ratio() * 100.0),
        ]);
    }
    println!("{}", render_table(&["organization", "cycles", "stall %"], &rows));
    println!(
        "Reading: fewer rows per column shrink the any-sensitive-row window\n\
         that flips a whole column into the 4-cycle INT8 mode — our model\n\
         finds 9-row pages ~10% faster than the paper's 18-row pages at\n\
         equal PE count (stall ratio halves), at the cost of more tap tiles\n\
         and accumulator traffic, which this cycle model does not charge.\n\
         A finding to weigh, not a refutation: the paper's 18x11 keeps\n\
         3x3x(2 channels) tap tiles resident, simplifying control."
    );
}
