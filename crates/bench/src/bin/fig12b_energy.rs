//! Fig. 12(b) — energy breakdown (DRAM / global buffer / core) of the four
//! accelerators on the six networks, normalized to Eyeriss.
//!
//! Expected shape (paper): DRQ lowest total; DRQ spends *more* DRAM energy
//! than OLAccel (INT8 weights in DRAM vs INT4) but wins it back on the core
//! (systolic neighbour-shifting vs register-file fetches).

use drq::baselines::{Accelerator, BitFusion, Eyeriss, OlAccel};
use drq::models::zoo::InputRes;
use drq::sim::{ArchConfig, EnergyBreakdown};
use drq_bench::{network_operating_point, paper_networks, render_table};

fn fmt(e: &EnergyBreakdown, base: f64) -> Vec<String> {
    vec![
        format!("{:.3}", e.dram_pj / base),
        format!("{:.3}", e.buffer_pj / base),
        format!("{:.3}", e.core_pj / base),
        format!("{:.3}", e.total_pj() / base),
    ]
}

fn main() {
    println!("Fig. 12(b) reproduction: energy breakdown normalized to Eyeriss total\n");
    let res = InputRes::Imagenet;
    let mut totals = [0.0f64; 4];
    let mut n = 0;
    for net in paper_networks(res) {
        let eyeriss = Eyeriss::new().simulate(&net, 1);
        let bitfusion = BitFusion::new().simulate(&net, 1);
        let olaccel = OlAccel::new().simulate(&net, 1);
        let drq = ArchConfig::builder()
            .drq(network_operating_point(&net.name))
            .build()
            .simulate(&net, 1);
        let base = eyeriss.energy.total_pj();

        println!("--- {} ---", net.name);
        let mut rows = Vec::new();
        for (name, r) in [
            ("Eyeriss", &eyeriss),
            ("BitFusion", &bitfusion),
            ("OLAccel", &olaccel),
            ("DRQ", &drq),
        ] {
            let mut row = vec![name.to_string()];
            row.extend(fmt(&r.energy, base));
            rows.push(row);
        }
        println!(
            "{}",
            render_table(&["accelerator", "DRAM", "buffer", "core", "total"], &rows)
        );
        totals[0] += 1.0;
        totals[1] += bitfusion.energy.total_pj() / base;
        totals[2] += olaccel.energy.total_pj() / base;
        totals[3] += drq.energy.total_pj() / base;
        n += 1;

        // The component-level diversification the paper highlights for
        // ResNet-50: DRQ DRAM > OLAccel DRAM, DRQ core < OLAccel core.
        if net.name == "ResNet-50" {
            println!(
                "check: DRQ DRAM {:.3} vs OLAccel DRAM {:.3} (DRQ higher: {}), \
                 DRQ core {:.3} vs OLAccel core {:.3} (DRQ lower: {})\n",
                drq.energy.dram_pj / base,
                olaccel.energy.dram_pj / base,
                drq.energy.dram_pj > olaccel.energy.dram_pj,
                drq.energy.core_pj / base,
                olaccel.energy.core_pj / base,
                drq.energy.core_pj < olaccel.energy.core_pj,
            );
        }
    }
    println!(
        "average normalized total energy: Eyeriss 1.000, BitFusion {:.3}, \
         OLAccel {:.3}, DRQ {:.3}",
        totals[1] / n as f64,
        totals[2] / n as f64,
        totals[3] / n as f64
    );
    println!(
        "Expected (paper, ResNet-50): DRQ saves ~72%/43%/32% vs \
         Eyeriss/BitFusion/OLAccel."
    );
}
