//! Fig. 3 — visualizing sensitive regions across LeNet-5 layers.
//!
//! The paper trains LeNet-5 on MNIST, runs one image (a "3"), and colours
//! each layer's input feature map by magnitude segment, showing that
//! segment-0 (sensitive) values aggregate spatially. This binary trains the
//! LeNet-5 stand-in on the `digits` set, renders the segment maps of the
//! first convolution inputs as ASCII art, and quantifies the aggregation.

use drq::core::segments::{aggregation_score, render_ascii, segment_map};
use drq::models::{lenet5, train, Dataset, DatasetKind, TrainConfig};
use drq::quant::SegmentSplit;
use drq_bench::RunScale;

fn main() {
    let scale = RunScale::from_env();
    let train_set = Dataset::generate(DatasetKind::Digits, scale.train_size(), 11);
    let eval_set = Dataset::generate(DatasetKind::Digits, scale.eval_size(), 12);
    let mut net = lenet5(3);
    let cfg = TrainConfig { epochs: scale.epochs(), ..TrainConfig::default() };
    let report = train(&mut net, &train_set, &eval_set, &cfg);
    println!(
        "Fig. 3 reproduction: LeNet-5 trained to {:.1}% on digits",
        report.eval_accuracy * 100.0
    );
    println!("Legend: '#' = segment 0 (largest 20% of values, sensitive),");
    println!("        '+' = segment 1 (middle 60%), '.' = segment 2 (smallest 20%)\n");

    // One image of class "3".
    let (x, y) = train_set.batch(0, 10);
    let idx = y.iter().position(|&t| t == 3).expect("a '3' in the first batch");
    let image = {
        let per = 16 * 16;
        let data = x.as_slice()[idx * per..(idx + 1) * per].to_vec();
        drq::tensor::Tensor::from_vec(data, &[1, 1, 16, 16]).expect("image shape")
    };

    // Tap every convolution input during inference of this image.
    let mut maps: Vec<(usize, Vec<Vec<Vec<usize>>>)> = Vec::new();
    let _ = net.forward_tapped(&image, &mut |tap| {
        let split = SegmentSplit::paper_default(tap.input.as_slice());
        let channels = tap.input.shape()[1].min(3);
        let mut per_channel = Vec::new();
        for c in 0..channels {
            per_channel.push(segment_map(tap.input, 0, c, &split));
        }
        maps.push((tap.conv_index, per_channel));
    });

    for (layer, per_channel) in &maps {
        println!("--- conv layer {layer} input feature map ---");
        for (c, map) in per_channel.iter().enumerate() {
            let score = aggregation_score(map);
            println!("channel {c} (aggregation score {score:.2}):");
            println!("{}", render_ascii(map));
        }
    }

    // The quantitative claim behind the figure.
    let mut scores = Vec::new();
    for (_, per_channel) in &maps {
        for map in per_channel {
            scores.push(aggregation_score(map));
        }
    }
    let mean = scores.iter().sum::<f64>() / scores.len().max(1) as f64;
    println!(
        "Mean aggregation score of segment-0 values across layers: {mean:.2}\n\
         (1.0 = every sensitive value has a sensitive neighbour; random\n\
         scatter of the same density scores far lower — the paper's\n\
         'sensitive values tend to aggregate in space')."
    );
}
