//! Shared utilities for the figure/table binaries.

use drq::core::{DrqConfig, RegionSize};
use drq::models::zoo::{self, InputRes};
use drq::models::NetworkTopology;
use drq::telemetry::{Report, Tracer};

/// The `--metrics <path>` / `--trace <path>` flags shared by every harness
/// binary (the same global options the `drq` CLI accepts). Parsing is
/// lenient: unknown arguments are ignored so binaries stay zero-config.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObservabilityArgs {
    /// Where to write the schema-versioned metrics JSON, if requested.
    pub metrics: Option<String>,
    /// Where to write the JSON-lines event trace, if requested.
    pub trace: Option<String>,
}

impl ObservabilityArgs {
    /// Parses the process arguments and enables telemetry recording when
    /// either flag is present.
    pub fn from_env_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses `--metrics`/`--trace` out of an argument stream.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--metrics" => out.metrics = it.next(),
                "--trace" => out.trace = it.next(),
                _ => {}
            }
        }
        if out.metrics.is_some() || out.trace.is_some() {
            drq::telemetry::reset();
            drq::telemetry::enable();
        }
        out
    }

    /// Writes `report` to the `--metrics` path (no-op when the flag is
    /// absent). The global registry snapshot rides along under `"metrics"`.
    pub fn write_report(&self, mut report: Report) -> std::io::Result<()> {
        if let Some(path) = &self.metrics {
            let registry = drq::telemetry::snapshot();
            if !registry.is_empty() {
                report.push("metrics", registry.to_json());
            }
            report.write_to_file(path)?;
            eprintln!("metrics written to {path}");
        }
        Ok(())
    }

    /// Writes the tracer's JSON-lines to the `--trace` path (no-op when the
    /// flag is absent).
    pub fn write_trace(&self, tracer: &Tracer) -> std::io::Result<()> {
        if let Some(path) = &self.trace {
            std::fs::write(path, tracer.to_jsonl())?;
            eprintln!("trace written to {path}");
        }
        Ok(())
    }
}

/// How much work a harness binary should do. Controlled by the
/// `DRQ_SCALE` environment variable (`quick` or `full`, default `quick`).
/// `quick` keeps every binary under a couple of minutes; `full` uses larger
/// datasets and more training epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunScale {
    /// Small datasets, few epochs; CI-friendly.
    Quick,
    /// Paper-scale sweeps.
    Full,
}

impl RunScale {
    /// Reads the scale from the environment.
    pub fn from_env() -> Self {
        match std::env::var("DRQ_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => RunScale::Full,
            _ => RunScale::Quick,
        }
    }

    /// Training-set size for stand-in training.
    pub fn train_size(self) -> usize {
        match self {
            RunScale::Quick => 300,
            RunScale::Full => 1200,
        }
    }

    /// Evaluation-set size.
    pub fn eval_size(self) -> usize {
        match self {
            RunScale::Quick => 60,
            RunScale::Full => 240,
        }
    }

    /// Training epochs.
    pub fn epochs(self) -> usize {
        match self {
            RunScale::Quick => 5,
            RunScale::Full => 12,
        }
    }
}

/// The per-network DRQ operating points of Table III (region size and
/// average integer threshold).
///
/// # Examples
///
/// ```
/// use drq_bench::network_operating_point;
///
/// let cfg = network_operating_point("ResNet-18");
/// assert_eq!(cfg.base_region().to_string(), "4x16");
/// ```
pub fn network_operating_point(name: &str) -> DrqConfig {
    let (region, threshold) = match name {
        "AlexNet" => (RegionSize::new(2, 4), 18.0),
        "VGG16" => (RegionSize::new(2, 4), 17.0),
        "ResNet-18" => (RegionSize::new(4, 16), 21.0),
        "ResNet-50" => (RegionSize::new(4, 8), 19.0),
        "Inception-v3" => (RegionSize::new(4, 8), 23.0),
        "MobileNet-v2" | "MobileNet" => (RegionSize::new(2, 4), 25.0),
        // Anything else (LeNet-5, ResNet-32, custom nets) gets the
        // ResNet-18 defaults.
        _ => (RegionSize::new(4, 16), 21.0),
    };
    DrqConfig::new(region, threshold)
}

/// The six evaluated networks at the given resolution, in paper order.
pub fn paper_networks(res: InputRes) -> Vec<NetworkTopology> {
    zoo::paper_six(res)
}

/// Renders an aligned plain-text table (the harness output format recorded
/// in `EXPERIMENTS.md`).
///
/// # Examples
///
/// ```
/// use drq_bench::render_table;
///
/// let t = render_table(&["net", "cycles"], &[vec!["LeNet".into(), "123".into()]]);
/// assert!(t.contains("LeNet"));
/// assert!(t.lines().count() >= 3);
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: Vec<String>| {
        let mut parts = Vec::with_capacity(cols);
        for (i, c) in cells.iter().enumerate() {
            parts.push(format!("{:>width$}", c, width = widths[i]));
        }
        out.push_str(&parts.join("  "));
        out.push('\n');
    };
    line(&mut out, headers.iter().map(|s| s.to_string()).collect());
    line(
        &mut out,
        widths.iter().map(|w| "-".repeat(*w)).collect(),
    );
    for row in rows {
        line(&mut out, row.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_operating_points_match_paper() {
        assert_eq!(network_operating_point("AlexNet").base_threshold(), 18.0);
        assert_eq!(network_operating_point("VGG16").base_threshold(), 17.0);
        assert_eq!(
            network_operating_point("ResNet-50").base_region(),
            RegionSize::new(4, 8)
        );
        assert_eq!(network_operating_point("MobileNet-v2").base_threshold(), 25.0);
    }

    #[test]
    fn unknown_network_gets_defaults() {
        let cfg = network_operating_point("LeNet-5");
        assert_eq!(cfg.base_region(), RegionSize::new(4, 16));
    }

    #[test]
    fn six_networks_in_paper_order() {
        let nets = paper_networks(InputRes::Cifar);
        let names: Vec<&str> = nets.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(
            names,
            ["AlexNet", "VGG16", "ResNet-18", "ResNet-50", "Inception-v3", "MobileNet-v2"]
        );
    }

    #[test]
    fn render_table_aligns_columns() {
        let t = render_table(
            &["a", "bbbb"],
            &[vec!["xx".into(), "1".into()], vec!["y".into(), "22".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        let width = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == width));
    }

    #[test]
    fn scale_defaults_to_quick() {
        // Without the env var set, from_env is quick (tests run without it).
        if std::env::var("DRQ_SCALE").is_err() {
            assert_eq!(RunScale::from_env(), RunScale::Quick);
        }
        assert!(RunScale::Full.train_size() > RunScale::Quick.train_size());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn render_table_validates_rows() {
        let _ = render_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn observability_args_parse_and_ignore_unknown() {
        let args = ["--foo", "1", "--metrics", "m.json", "--trace", "t.jsonl"];
        let o = ObservabilityArgs::parse(args.iter().map(|s| s.to_string()));
        assert_eq!(o.metrics.as_deref(), Some("m.json"));
        assert_eq!(o.trace.as_deref(), Some("t.jsonl"));
        let none = ObservabilityArgs::parse(std::iter::empty());
        assert_eq!(none, ObservabilityArgs::default());
        // Absent flags make the writers no-ops.
        none.write_report(Report::new("session")).unwrap();
        none.write_trace(&Tracer::new()).unwrap();
    }
}
