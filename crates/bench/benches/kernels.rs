//! Criterion micro-benchmarks over the reproduction's hot kernels:
//! quantizers, im2col, the sensitivity predictor, the mixed-precision
//! convolution against its uniform-precision extremes, and the two
//! simulator tiers (exact systolic vs fast layer model).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drq::core::{
    uniform_masks, MixedPrecisionConv, RegionSize, SensitivityPredictor,
};
use drq::models::{zoo, ConvLayerSpec, FeatureMapSynthesizer};
use drq::nn::Conv2d;
use drq::quant::{fake_quantize, Precision, QuantParams};
use drq::sim::{
    ArchConfig, DrqAccelerator, LayerCycleModel, MultiPrecisionPe, PackedStream, PageSimulator,
    StreamElement, SystolicArray,
};
use drq::tensor::{im2col, Im2ColLayout, Shape4, Tensor, XorShiftRng};

fn sparse_activation(c: usize, h: usize, w: usize, seed: u64) -> Tensor<f32> {
    let synth = FeatureMapSynthesizer::default();
    let mut rng = XorShiftRng::new(seed);
    synth.synthesize(c, h, w, &mut rng)
}

fn bench_quantizer(c: &mut Criterion) {
    let x = sparse_activation(16, 32, 32, 1);
    let params = QuantParams::fit(x.as_slice(), Precision::Int8);
    c.bench_function("quant/fake_quantize_16x32x32", |b| {
        b.iter(|| fake_quantize(std::hint::black_box(&x), &params))
    });
}

fn bench_im2col(c: &mut Criterion) {
    let x = sparse_activation(16, 32, 32, 2);
    let layout = Im2ColLayout::new(Shape4::new(1, 16, 32, 32), 3, 3, 1, 1);
    c.bench_function("tensor/im2col_16x32x32_k3", |b| {
        b.iter(|| im2col(std::hint::black_box(&x), &layout, 0))
    });
}

fn bench_predictor(c: &mut Criterion) {
    let x = sparse_activation(16, 32, 32, 3);
    let mut group = c.benchmark_group("predictor");
    for region in [RegionSize::new(4, 4), RegionSize::new(4, 16), RegionSize::new(16, 16)] {
        let p = SensitivityPredictor::new(region, 20.0);
        group.bench_with_input(BenchmarkId::from_parameter(region), &p, |b, p| {
            b.iter(|| p.predict(std::hint::black_box(&x)))
        });
    }
    group.finish();
}

fn bench_mixed_conv(c: &mut Criterion) {
    let conv = Conv2d::new(8, 16, 3, 1, 1, 4);
    let x = sparse_activation(8, 16, 16, 5);
    let predictor = SensitivityPredictor::new(RegionSize::new(4, 4), 20.0);
    let dynamic = vec![predictor.predict(&x)];
    let all8 = uniform_masks(x.shape4().unwrap(), true);
    let all4 = uniform_masks(x.shape4().unwrap(), false);
    let mut group = c.benchmark_group("mixed_conv_8x16x16");
    group.bench_function("dynamic_masks", |b| {
        b.iter(|| MixedPrecisionConv::forward(&conv, std::hint::black_box(&x), &dynamic))
    });
    group.bench_function("all_int8", |b| {
        b.iter(|| MixedPrecisionConv::forward(&conv, std::hint::black_box(&x), &all8))
    });
    group.bench_function("all_int4", |b| {
        b.iter(|| MixedPrecisionConv::forward(&conv, std::hint::black_box(&x), &all4))
    });
    group.finish();
}

fn bench_systolic_exact(c: &mut Criterion) {
    let mut rng = XorShiftRng::new(6);
    let weights: Vec<Vec<i32>> = (0..18)
        .map(|_| (0..11).map(|_| rng.next_below(255) as i32 - 127).collect())
        .collect();
    let array = SystolicArray::new(weights);
    let streams: Vec<Vec<StreamElement>> = (0..18)
        .map(|_| {
            (0..256)
                .map(|_| {
                    StreamElement::new(
                        rng.next_below(255) as i32 - 127,
                        rng.next_f64() < 0.1,
                    )
                })
                .collect()
        })
        .collect();
    c.bench_function("sim/exact_systolic_18x11_256steps", |b| {
        b.iter(|| array.simulate(std::hint::black_box(&streams)))
    });
}

fn bench_layer_model(c: &mut Criterion) {
    let model = LayerCycleModel::new(18, 11, 16);
    let spec = ConvLayerSpec::conv("bench", "B1", 64, 56, 56, 64, 3, 3, 1, 1);
    let synth = FeatureMapSynthesizer::default();
    let mut rng = XorShiftRng::new(7);
    let cfg = drq::core::DrqConfig::new(RegionSize::new(4, 16), 21.0);
    let (masks, _) = synth.masks_for_layer(&spec, &cfg, 0.3, &mut rng);
    c.bench_function("sim/layer_cycle_model_resnet_block", |b| {
        b.iter(|| model.simulate_layer(std::hint::black_box(&spec), &masks))
    });
}

fn bench_full_network_sim(c: &mut Criterion) {
    let accel = DrqAccelerator::new(ArchConfig::paper_default());
    let net = zoo::resnet18(zoo::InputRes::Cifar);
    let mut group = c.benchmark_group("sim/full_network");
    group.sample_size(10);
    group.bench_function("resnet18_cifar", |b| {
        b.iter(|| accel.simulate_network(std::hint::black_box(&net), 42))
    });
    group.finish();
}

fn bench_pe(c: &mut Criterion) {
    // The innermost hardware primitive: one INT8 MAC through the 4-cycle
    // decomposition (per-call overheads dominate; this tracks regressions
    // of the decomposition logic itself).
    c.bench_function("sim/pe_int8_mac", |b| {
        let mut pe = MultiPrecisionPe::new();
        pe.load_weight(-77);
        b.iter(|| {
            pe.start_mac(std::hint::black_box(53), Precision::Int8);
            while !pe.is_done() {
                pe.tick();
            }
            pe.product()
        })
    });
}

fn bench_pack(c: &mut Criterion) {
    let mut rng = XorShiftRng::new(8);
    let elems: Vec<StreamElement> = (0..4096)
        .map(|_| StreamElement::new(rng.next_below(255) as i32 - 127, rng.next_f64() < 0.1))
        .collect();
    c.bench_function("sim/line_buffer_pack_4k", |b| {
        b.iter(|| PackedStream::pack(std::hint::black_box(&elems)))
    });
}

fn bench_page_simulator(c: &mut Criterion) {
    let x = sparse_activation(3, 10, 10, 9);
    let predictor = SensitivityPredictor::new(RegionSize::new(4, 4), 15.0);
    let masks = predictor.predict(&x);
    let conv = Conv2d::new(3, 4, 3, 1, 1, 10);
    let page = PageSimulator::new(9, 4);
    let mut group = c.benchmark_group("sim/page_simulator");
    group.sample_size(20);
    group.bench_function("3x10x10_conv3x3", |b| {
        b.iter(|| page.run_conv(std::hint::black_box(&x), &masks, conv.weight(), 3, 3, 1, 1))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_quantizer,
    bench_im2col,
    bench_predictor,
    bench_mixed_conv,
    bench_systolic_exact,
    bench_layer_model,
    bench_full_network_sim,
    bench_pe,
    bench_pack,
    bench_page_simulator
);
criterion_main!(benches);
