//! Criterion benchmarks over the NN substrate: forward/backward passes,
//! a full SGD step, and the quantization-scheme evaluators — the costs
//! behind the accuracy experiments.

use criterion::{criterion_group, criterion_main, Criterion};
use drq::baselines::{evaluate_scheme, QuantScheme};
use drq::core::{DrqConfig, RegionSize};
use drq::models::{lenet5, Dataset, DatasetKind};
use drq::nn::{Conv2d, CrossEntropyLoss, Sgd};
use drq::tensor::{Tensor, XorShiftRng};

fn bench_conv_forward_backward(c: &mut Criterion) {
    let mut conv = Conv2d::new(16, 32, 3, 1, 1, 1);
    let mut rng = XorShiftRng::new(2);
    let x = Tensor::from_fn(&[4, 16, 16, 16], |_| rng.next_f32() - 0.5);
    let mut group = c.benchmark_group("nn/conv_16to32_16x16_b4");
    group.bench_function("forward", |b| {
        b.iter(|| conv.forward(std::hint::black_box(&x), false))
    });
    group.bench_function("forward_backward", |b| {
        b.iter(|| {
            let y = conv.forward(std::hint::black_box(&x), true);
            let g = Tensor::full(y.shape(), 1.0);
            conv.backward(&g)
        })
    });
    group.finish();
}

fn bench_training_step(c: &mut Criterion) {
    let data = Dataset::generate(DatasetKind::Digits, 64, 3);
    let mut net = lenet5(4);
    let mut opt = Sgd::new(0.05).momentum(0.9);
    let (x, y) = data.batch(0, 16);
    c.bench_function("nn/lenet5_sgd_step_b16", |b| {
        b.iter(|| {
            let logits = net.forward(std::hint::black_box(&x), true);
            let (_, grad) = CrossEntropyLoss::evaluate(&logits, &y);
            net.backward(&grad);
            opt.step(&mut net);
        })
    });
}

fn bench_scheme_evaluation(c: &mut Criterion) {
    let data = Dataset::generate(DatasetKind::Digits, 20, 5);
    let mut net = lenet5(6);
    let mut group = c.benchmark_group("schemes/lenet5_20_images");
    group.sample_size(10);
    group.bench_function("fp32", |b| {
        b.iter(|| evaluate_scheme(&mut net, &QuantScheme::Fp32, &data, 20))
    });
    group.bench_function("bitfusion_int8", |b| {
        b.iter(|| evaluate_scheme(&mut net, &QuantScheme::BitFusion, &data, 20))
    });
    group.bench_function("olaccel", |b| {
        b.iter(|| evaluate_scheme(&mut net, &QuantScheme::OlAccel, &data, 20))
    });
    group.bench_function("drq_dynamic", |b| {
        let cfg = DrqConfig::new(RegionSize::new(4, 4), 25.0);
        b.iter(|| evaluate_scheme(&mut net, &QuantScheme::Drq(cfg), &data, 20))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_conv_forward_backward,
    bench_training_step,
    bench_scheme_evaluation
);
criterion_main!(benches);
