#!/bin/sh
# Offline CI gate: release build, full test suite, kernel microbench.
#
# Fails (non-zero exit) if the build or any test fails. The microbench
# line is printed to stdout so callers can append it to a BENCH_*.json
# trajectory file.
set -eu

cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== test (offline) =="
cargo test -q --offline --workspace

echo "== kernel microbench =="
./target/release/kernel_microbench
