#!/bin/sh
# Offline CI gate: release build, full test suite, kernel microbench.
#
# Fails (non-zero exit) if the build or any test fails. The microbench
# line is printed to stdout so callers can append it to a BENCH_*.json
# trajectory file, and structured metrics files land in
# target/ci-artifacts/ for archiving.
set -eu

cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== test (offline) =="
cargo test -q --offline --workspace

echo "== golden metrics schema (offline) =="
cargo test -q --offline --test metrics_golden

ARTIFACTS=target/ci-artifacts
mkdir -p "$ARTIFACTS"

echo "== kernel microbench =="
./target/release/kernel_microbench --metrics "$ARTIFACTS/kernel_microbench.json"

echo "== simulate_network metrics artifact =="
./target/release/drq sim --network lenet5 --accel drq \
    --metrics "$ARTIFACTS/sim_metrics.json" \
    --trace "$ARTIFACTS/sim_trace.jsonl"

echo "== artifacts =="
ls -l "$ARTIFACTS"
