#!/bin/sh
# Offline CI gate: release build, full test suite (warnings-as-errors),
# differential property suite, kernel microbench.
#
# Fails (non-zero exit) if the build or any test fails. The microbench
# line is printed to stdout so callers can append it to a BENCH_*.json
# trajectory file, and structured metrics files land in
# target/ci-artifacts/ for archiving.
set -eu

cd "$(dirname "$0")/.."

# Property-based differential tests run harder in CI than in local dev
# (64 cases by default). Override by exporting DRQ_TESTKIT_CASES.
DRQ_TESTKIT_CASES="${DRQ_TESTKIT_CASES:-256}"
export DRQ_TESTKIT_CASES

# Any warning in the workspace fails the test build. Setting RUSTFLAGS in
# the environment replaces .cargo/config.toml's flags, so re-state
# target-cpu=native to keep CI binaries identical to dev builds.
CI_RUSTFLAGS="-Dwarnings -C target-cpu=native"

on_test_failure() {
    status=$?
    if [ "$status" -ne 0 ]; then
        echo "" >&2
        echo "CI test failure. Property-based failures print a shrunk" >&2
        echo "counterexample and a replay prefix; re-run one case with:" >&2
        echo "  DRQ_TESTKIT_SEED=<seed> DRQ_TESTKIT_CASES=1 cargo test --test differential" >&2
    fi
    exit "$status"
}
trap on_test_failure EXIT

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== test (offline, -Dwarnings, DRQ_TESTKIT_CASES=$DRQ_TESTKIT_CASES) =="
RUSTFLAGS="$CI_RUSTFLAGS" cargo test -q --offline --workspace

echo "== differential property suite (offline) =="
RUSTFLAGS="$CI_RUSTFLAGS" cargo test -q --offline --test differential

echo "== integer differential suite (DRQ_THREADS=1/2/auto) =="
# The integer-tier families assert bit-exactness against the exact-i64
# oracle; running the whole sweep under each DRQ_THREADS setting also pins
# the tests that don't iterate thread counts internally.
for t in 1 2 auto; do
    echo "-- DRQ_THREADS=$t --"
    if [ "$t" = auto ]; then
        RUSTFLAGS="$CI_RUSTFLAGS" \
            cargo test -q --offline --test differential int
    else
        RUSTFLAGS="$CI_RUSTFLAGS" DRQ_THREADS="$t" \
            cargo test -q --offline --test differential int
    fi
done

echo "== golden metrics schema (offline) =="
RUSTFLAGS="$CI_RUSTFLAGS" cargo test -q --offline --test metrics_golden

trap - EXIT

ARTIFACTS=target/ci-artifacts
mkdir -p "$ARTIFACTS"

echo "== kernel microbench =="
./target/release/kernel_microbench --metrics "$ARTIFACTS/kernel_microbench.json" \
    | tee "$ARTIFACTS/tier_comparison.json"

echo "== compute-tier perf gate (int8 vs f32, 1 thread) =="
# The archived one-line JSON doubles as the tier-comparison artifact; fail
# the build if the int8 packed GEMM is not faster than the f32 blocked GEMM
# on the standard (256,1152,196) shape, single-threaded.
F32_MS=$(sed -n 's/.*"gemm_blocked_1t_ms":\([0-9.]*\).*/\1/p' "$ARTIFACTS/tier_comparison.json")
INT8_MS=$(sed -n 's/.*"int8_gemm_1t_ms":\([0-9.]*\).*/\1/p' "$ARTIFACTS/tier_comparison.json")
[ -n "$F32_MS" ] && [ -n "$INT8_MS" ] || {
    echo "tier comparison artifact missing timing fields:" >&2
    cat "$ARTIFACTS/tier_comparison.json" >&2
    exit 1
}
awk -v f32="$F32_MS" -v int8="$INT8_MS" 'BEGIN { exit !(int8 < f32) }' || {
    echo "int8 GEMM ($INT8_MS ms) is not faster than f32 ($F32_MS ms)" >&2
    exit 1
}
echo "int8 $INT8_MS ms vs f32 $F32_MS ms (1 thread): ok"

echo "== SimSession metrics artifact =="
./target/release/drq sim --network lenet5 --accel drq \
    --metrics "$ARTIFACTS/sim_metrics.json" \
    --trace "$ARTIFACTS/sim_trace.jsonl"

echo "== fault injection (empty plan must be byte-identical) =="
printf '{"seed":0,"rules":[]}\n' > "$ARTIFACTS/empty_fault_plan.json"
./target/release/drq sim --network lenet5 --accel drq \
    --fault-plan "$ARTIFACTS/empty_fault_plan.json" \
    --metrics "$ARTIFACTS/sim_metrics_empty_plan.json"
cmp "$ARTIFACTS/sim_metrics.json" "$ARTIFACTS/sim_metrics_empty_plan.json" || {
    echo "empty fault plan perturbed the metrics report" >&2
    exit 1
}

echo "== partitioned simulator (byte-identity + wall-clock gate) =="
# The partitioned SimSession must be a pure wall-clock optimization: the
# full-network report at 1, 2 and auto shards must be byte-identical.
# `--accel none` skips the paper lineup so the timing below measures only
# the partitioned session itself.
PART_NET=resnet50
for p in 1 2 auto; do
    START_NS=$(date +%s%N)
    ./target/release/drq sim --network "$PART_NET" --res imagenet --accel none \
        --partitions "$p" --seed 42 \
        --metrics "$ARTIFACTS/sim_partition_$p.json"
    END_NS=$(date +%s%N)
    eval "PART_MS_$p=$(( (END_NS - START_NS) / 1000000 ))"
done
for p in 2 auto; do
    cmp "$ARTIFACTS/sim_partition_1.json" "$ARTIFACTS/sim_partition_$p.json" || {
        echo "partitions=$p report drifted from the single-shard bytes" >&2
        exit 1
    }
done
CPUS=$(nproc 2>/dev/null || echo 1)
SPEEDUP=$(awk -v a="$PART_MS_1" -v b="$PART_MS_auto" \
    'BEGIN { x = b > 0 ? a / b : 0; printf "%.2f", x }')
# The speedup gate only means something when the machine has cores to
# parallelize over; on a single-CPU runner we record the measurement and
# skip the enforcement honestly instead of rubber-stamping it.
if [ "$CPUS" -ge 2 ]; then PART_GATE=enforced; else PART_GATE=skipped_single_cpu; fi
printf '{"kind":"sim_partition_speedup","network":"%s","cpus":%s,"single_ms":%s,"two_ms":%s,"auto_ms":%s,"speedup":%s,"gate":"%s"}\n' \
    "$PART_NET" "$CPUS" "$PART_MS_1" "$PART_MS_2" "$PART_MS_auto" "$SPEEDUP" "$PART_GATE" \
    > "$ARTIFACTS/sim_partition_speedup.json"
cat "$ARTIFACTS/sim_partition_speedup.json"
if [ "$PART_GATE" = enforced ]; then
    awk -v a="$PART_MS_1" -v b="$PART_MS_auto" 'BEGIN { exit !(b > 0 && a > b) }' || {
        echo "partitioned sim (auto=${PART_MS_auto}ms) not faster than single-shard (${PART_MS_1}ms) on $CPUS CPUs" >&2
        exit 1
    }
fi

echo "== fault injection (fixed-seed smoke plan) =="
./target/release/drq faults --network lenet5 \
    --metrics "$ARTIFACTS/reliability.json"

echo "== serve soak (loopback, fixed seed) =="
# Ephemeral port: the server prints "listening on 127.0.0.1:PORT" once
# bound; scrape the port from its stdout.
rm -f "$ARTIFACTS/serve_stdout.txt"
./target/release/drq serve --port 0 --workers 2 --capacity 64 \
    --metrics "$ARTIFACTS/serve_metrics.json" \
    > "$ARTIFACTS/serve_stdout.txt" &
SERVE_PID=$!
PORT=""
tries=0
while [ -z "$PORT" ] && [ "$tries" -lt 100 ]; do
    PORT=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
        "$ARTIFACTS/serve_stdout.txt" 2>/dev/null || true)
    [ -n "$PORT" ] || { tries=$((tries + 1)); sleep 0.1; }
done
[ -n "$PORT" ] || { echo "serve never reported its port" >&2; kill "$SERVE_PID"; exit 1; }

# Fixed-seed soak with an adversarial mix of malformed, oversized and
# deadline-expired lines (no poison here: a clean run must end with zero
# worker restarts), then a graceful shutdown. The client exits non-zero
# if any response is lost or duplicated.
./target/release/drq client --addr "127.0.0.1:$PORT" \
    --clients 4 --requests 16 --seed 20260807 \
    --malformed 2 --oversized 1 --expired 1 \
    --shutdown true --drain-ms 10000 \
    --metrics "$ARTIFACTS/serve_client_metrics.json"

# Clean shutdown: the server process must exit 0 on its own.
wait "$SERVE_PID" || { echo "serve exited non-zero" >&2; exit 1; }
grep -q '"worker_restarts":0' "$ARTIFACTS/serve_metrics.json" || {
    echo "clean soak restarted a worker:" >&2
    cat "$ARTIFACTS/serve_metrics.json" >&2
    exit 1
}
grep -q '"kind":"serve"' "$ARTIFACTS/serve_metrics.json" || {
    echo "serve metrics artifact malformed" >&2
    exit 1
}

echo "== serve scale-out soak (seeded kills, cross-config byte-gate) =="
# The same seeded request stream at 1 worker / no kills / no coalescing
# and at 4 workers with 2 mid-stream worker kills and aggressive
# continuous batching must produce byte-identical canonical transcripts.
# `drq soak` itself exits non-zero (with a replay hint) if any request is
# dropped, duplicated, or errored.
SOAK_SEED=20260809
SOAK_REQS=96
START_NS=$(date +%s%N)
./target/release/drq soak --workers 1 --kills 0 --coalesce 1 \
    --requests "$SOAK_REQS" --seed "$SOAK_SEED" \
    --canonical "$ARTIFACTS/soak_canonical_1w.jsonl" \
    --metrics "$ARTIFACTS/soak_1w.json"
END_NS=$(date +%s%N)
SOAK_MS_1=$(( (END_NS - START_NS) / 1000000 ))
START_NS=$(date +%s%N)
./target/release/drq soak --workers 4 --kills 2 --coalesce 8 \
    --requests "$SOAK_REQS" --seed "$SOAK_SEED" \
    --canonical "$ARTIFACTS/soak_canonical_4w.jsonl" \
    --metrics "$ARTIFACTS/soak_4w.json"
END_NS=$(date +%s%N)
SOAK_MS_4=$(( (END_NS - START_NS) / 1000000 ))
cmp "$ARTIFACTS/soak_canonical_1w.jsonl" "$ARTIFACTS/soak_canonical_4w.jsonl" || {
    echo "scale-out transcript drifted from the single-worker bytes" >&2
    echo "replay: drq soak --workers 4 --requests $SOAK_REQS --seed $SOAK_SEED --kills 2 --coalesce 8" >&2
    exit 1
}
# Continuous batching must actually engage at 4 workers / coalesce 8.
SOAK_COALESCED=$(sed -n 's/.*"batch_coalesced":\([0-9]*\).*/\1/p' "$ARTIFACTS/soak_4w.json")
SOAK_RATE=$(sed -n 's/.*"coalesce_rate":\([0-9.]*\).*/\1/p' "$ARTIFACTS/soak_4w.json")
SOAK_HIT_RATE=$(sed -n 's/.*"plan_hit_rate":\([0-9.]*\).*/\1/p' "$ARTIFACTS/soak_4w.json")
[ -n "$SOAK_COALESCED" ] && [ "$SOAK_COALESCED" -gt 0 ] || {
    echo "soak at coalesce 8 never coalesced a batch:" >&2
    cat "$ARTIFACTS/soak_4w.json" >&2
    exit 1
}
SOAK_TPS_1=$(sed -n 's/.*"throughput_rps":\([0-9.]*\).*/\1/p' "$ARTIFACTS/soak_1w.json")
SOAK_TPS_4=$(sed -n 's/.*"throughput_rps":\([0-9.]*\).*/\1/p' "$ARTIFACTS/soak_4w.json")
SOAK_SPEEDUP=$(awk -v a="$SOAK_TPS_1" -v b="$SOAK_TPS_4" \
    'BEGIN { x = a > 0 ? b / a : 0; printf "%.2f", x }')
# The 1.5x throughput gate only means something with cores to scale over;
# on small runners record the measurement and skip the enforcement
# honestly instead of rubber-stamping it.
if [ "$CPUS" -ge 4 ]; then SOAK_GATE=enforced; else SOAK_GATE=skipped_single_cpu; fi
printf '{"kind":"serve_scaleout","cpus":%s,"requests":%s,"seed":%s,"one_worker_ms":%s,"four_worker_ms":%s,"throughput_rps_1w":%s,"throughput_rps_4w":%s,"speedup":%s,"batch_coalesced":%s,"coalesce_rate":%s,"plan_hit_rate":%s,"gate":"%s"}\n' \
    "$CPUS" "$SOAK_REQS" "$SOAK_SEED" "$SOAK_MS_1" "$SOAK_MS_4" \
    "${SOAK_TPS_1:-0}" "${SOAK_TPS_4:-0}" "$SOAK_SPEEDUP" \
    "$SOAK_COALESCED" "${SOAK_RATE:-0}" "${SOAK_HIT_RATE:-0}" "$SOAK_GATE" \
    > "$ARTIFACTS/serve_scaleout.json"
cat "$ARTIFACTS/serve_scaleout.json"
if [ "$SOAK_GATE" = enforced ]; then
    awk -v s="$SOAK_SPEEDUP" 'BEGIN { exit !(s >= 1.5) }' || {
        echo "4-worker soak throughput (${SOAK_TPS_4} rps) below 1.5x single-worker (${SOAK_TPS_1} rps) on $CPUS CPUs" >&2
        exit 1
    }
fi

echo "== pareto search (kill-and-resume byte-gate) =="
# A full seeded search and a budget-interrupted-then-resumed search must
# converge to byte-identical checkpoint artifacts; the front must be a
# real trade-off curve (more than one member) with real pruning.
PARETO_SEED=20260810
./target/release/drq pareto --network lenet5 --seed "$PARETO_SEED" \
    --out "$ARTIFACTS/pareto_front.json"
./target/release/drq pareto --network lenet5 --seed "$PARETO_SEED" \
    --budget 40 --out "$ARTIFACTS/pareto_resume.json"
grep -q '"status":"paused"' "$ARTIFACTS/pareto_resume.json" || {
    echo "budgeted pareto search did not pause:" >&2
    cat "$ARTIFACTS/pareto_resume.json" >&2
    exit 1
}
./target/release/drq pareto --resume "$ARTIFACTS/pareto_resume.json" \
    --out "$ARTIFACTS/pareto_resume.json"
cmp "$ARTIFACTS/pareto_front.json" "$ARTIFACTS/pareto_resume.json" || {
    echo "resumed pareto artifact drifted from the one-shot bytes" >&2
    echo "replay: drq pareto --network lenet5 --seed $PARETO_SEED --budget 40, then --resume" >&2
    exit 1
}
PARETO_FRONT=$(sed -n 's/.*"front_size":\([0-9]*\).*/\1/p' "$ARTIFACTS/pareto_front.json")
PARETO_PRUNED=$(sed -n 's/.*"pruned":\([0-9]*\).*/\1/p' "$ARTIFACTS/pareto_front.json")
[ -n "$PARETO_FRONT" ] && [ "$PARETO_FRONT" -gt 1 ] || {
    echo "pareto front degenerated to ${PARETO_FRONT:-?} member(s)" >&2
    exit 1
}
[ -n "$PARETO_PRUNED" ] && [ "$PARETO_PRUNED" -gt 0 ] || {
    echo "pareto search pruned nothing (pruned=${PARETO_PRUNED:-?})" >&2
    exit 1
}
echo "pareto: front $PARETO_FRONT members, $PARETO_PRUNED pruned, resume bytes ok"

echo "== artifacts =="
ls -l "$ARTIFACTS"
